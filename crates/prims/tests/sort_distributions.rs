//! Distribution torture battery for the parallel sorting subsystem.
//!
//! Every distribution is run through both new sorts — the prims-level LSD
//! radix sort ([`sort_by_key_parallel`] / [`par_radix_sort_by_key`]) and the
//! rayon shim's sample sort (`par_sort_by_key` / `par_sort_unstable`) — and
//! checked against `std`'s sorts for exact value equality. Both sorts promise
//! stability, so for keyed records the expectation is `std`'s *stable*
//! `sort_by_key`, payloads included; any reordering of equal keys is a
//! failure. Each case runs at several pinned pool sizes so the parallel code
//! paths (not just the sequential fallbacks) face every distribution.

use greedy_prims::random::hash64;
use greedy_prims::sort::{par_radix_sort_by_key, sort_by_key_parallel};
use rayon::prelude::*;

/// Records: (key, payload). The payload is the original index, which makes
/// stability violations visible as payload mismatches.
type Rec = (u64, u32);

fn with_payloads(keys: impl IntoIterator<Item = u64>) -> Vec<Rec> {
    keys.into_iter()
        .enumerate()
        .map(|(i, k)| (k, i as u32))
        .collect()
}

/// The torture distributions. `N` is large enough to clear every sequential
/// cutoff in the subsystem (prims radix: 32768; shim sample sort: ≥4096).
fn distributions() -> Vec<(&'static str, Vec<Rec>)> {
    const N: u64 = 60_000;
    vec![
        ("empty", with_payloads([])),
        ("single", with_payloads([42])),
        ("all_equal", with_payloads((0..N).map(|_| 7))),
        ("already_sorted", with_payloads(0..N)),
        ("reverse_sorted", with_payloads((0..N).rev())),
        ("duplicate_heavy", with_payloads((0..N).map(|i| i % 7))),
        (
            "u64_max_boundary",
            with_payloads((0..N).map(|i| match i % 5 {
                0 => u64::MAX,
                1 => u64::MAX - 1,
                2 => 0,
                3 => 1 << 63,
                _ => hash64(3, i),
            })),
        ),
        ("random_wide", with_payloads((0..N).map(|i| hash64(1, i)))),
    ]
}

fn in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build pool")
        .install(f)
}

fn pool_sizes() -> Vec<usize> {
    vec![1, 2, 3, 7]
}

#[test]
fn radix_sort_matches_std_stable_sort_on_all_distributions() {
    for (name, input) in distributions() {
        let mut expected = input.clone();
        expected.sort_by_key(|&(k, _)| k); // std stable sort: the oracle
        for threads in pool_sizes() {
            let mut got = input.clone();
            in_pool(threads, || sort_by_key_parallel(&mut got, |&(k, _)| k));
            assert_eq!(
                got, expected,
                "radix vs std diverged: {name}, {threads} threads"
            );
        }
    }
}

#[test]
fn radix_sort_direct_entry_point_agrees() {
    // `par_radix_sort_by_key` is the engine behind `sort_by_key_parallel`;
    // exercise the public entry point on the nastiest two distributions.
    for (name, input) in distributions() {
        if name != "u64_max_boundary" && name != "duplicate_heavy" {
            continue;
        }
        let mut expected = input.clone();
        expected.sort_by_key(|&(k, _)| k);
        let mut got = input.clone();
        in_pool(4, || par_radix_sort_by_key(&mut got, |&(k, _)| k));
        assert_eq!(got, expected, "direct radix diverged: {name}");
    }
}

#[test]
fn sample_sort_by_key_matches_std_stable_sort_on_all_distributions() {
    for (name, input) in distributions() {
        let mut expected = input.clone();
        expected.sort_by_key(|&(k, _)| k);
        for threads in pool_sizes() {
            let mut got = input.clone();
            in_pool(threads, || got.par_sort_by_key(|&(k, _)| k));
            assert_eq!(
                got, expected,
                "sample sort vs std diverged: {name}, {threads} threads"
            );
        }
    }
}

#[test]
fn sample_sort_unstable_matches_std_on_all_distributions() {
    // Full-record Ord: records are distinct, so sorted order is unique and
    // "unstable" must still match std exactly.
    for (name, input) in distributions() {
        let mut expected = input.clone();
        expected.sort_unstable();
        for threads in pool_sizes() {
            let mut got = input.clone();
            in_pool(threads, || got.par_sort_unstable());
            assert_eq!(
                got, expected,
                "par_sort_unstable vs std diverged: {name}, {threads} threads"
            );
        }
    }
}

#[test]
fn sorts_preserve_multiset_even_under_adversarial_payloads() {
    // Same key everywhere but payloads arranged to catch lost/duplicated
    // writes in the scatter phases: the payload sum and count must survive.
    let input: Vec<Rec> = (0..50_000u32).map(|i| (5, i ^ 0xAAAA)).collect();
    let expect_sum: u64 = input.iter().map(|&(_, p)| p as u64).sum();
    let mut got = input;
    in_pool(4, || sort_by_key_parallel(&mut got, |&(k, _)| k));
    assert_eq!(got.len(), 50_000);
    assert_eq!(got.iter().map(|&(_, p)| p as u64).sum::<u64>(), expect_sum);
}
