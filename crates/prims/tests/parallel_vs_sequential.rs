//! Every parallel primitive must return exactly what its sequential flavor
//! returns — the determinism contract the crate-level docs promise. Each
//! primitive is exercised on the four canonical shapes: empty input, a single
//! element, all-equal elements, and a ~100k-element pseudorandom input (large
//! enough to clear `SEQUENTIAL_CUTOFF` and split across real worker threads).

use greedy_prims::pack::{pack, pack_index, par_filter, par_pack, par_pack_index};
use greedy_prims::permutation::{par_random_permutation, random_permutation};
use greedy_prims::random::hash64;
use greedy_prims::reduce::{par_count, par_max, par_min, par_sum};
use greedy_prims::scan::{
    exclusive_scan, exclusive_scan_in_place, inclusive_scan, par_exclusive_scan,
    par_exclusive_scan_in_place,
};
use greedy_prims::sort::{counting_sort_by_key, is_sorted_by_key, sort_by_key_parallel};

const BIG: usize = 100_000;

/// The four canonical input shapes for a `u64` primitive.
fn shapes_u64() -> Vec<Vec<u64>> {
    vec![
        vec![],
        vec![17],
        vec![3; 1000],
        (0..BIG as u64).map(|i| hash64(1, i) % 1_000).collect(),
    ]
}

#[test]
fn par_scan_equals_sequential_scan() {
    for data in shapes_u64() {
        let (seq, seq_total) = exclusive_scan(&data);
        let (par, par_total) = par_exclusive_scan(&data);
        assert_eq!(seq, par, "exclusive scan diverged on len {}", data.len());
        assert_eq!(seq_total, par_total);

        let mut in_place_seq = data.clone();
        let mut in_place_par = data.clone();
        let t1 = exclusive_scan_in_place(&mut in_place_seq);
        let t2 = par_exclusive_scan_in_place(&mut in_place_par);
        assert_eq!(in_place_seq, in_place_par);
        assert_eq!(t1, t2);

        // Inclusive scan is the exclusive scan shifted by one element.
        let incl = inclusive_scan(&data);
        assert_eq!(incl.len(), data.len());
        if let (Some(&last_incl), true) = (incl.last(), !data.is_empty()) {
            assert_eq!(last_incl, seq_total);
        }
    }
}

#[test]
fn par_pack_equals_pack() {
    for data in shapes_u64() {
        // Flags derived deterministically from values and position.
        let flags: Vec<bool> = data
            .iter()
            .enumerate()
            .map(|(i, &x)| (x + i as u64).is_multiple_of(3))
            .collect();
        assert_eq!(pack(&data, &flags), par_pack(&data, &flags));
        assert_eq!(pack_index(&flags), par_pack_index(&flags));
        let seq_filter: Vec<u64> = data.iter().copied().filter(|&x| x % 2 == 0).collect();
        assert_eq!(seq_filter, par_filter(&data, |&x| x % 2 == 0));
    }
}

#[test]
fn par_sort_equals_sequential_sort() {
    for data in shapes_u64() {
        let mut seq = data.clone();
        let mut par = data.clone();
        seq.sort_unstable();
        sort_by_key_parallel(&mut par, |&x| x);
        assert_eq!(
            seq,
            par,
            "sort_by_key_parallel diverged on len {}",
            data.len()
        );
        assert!(is_sorted_by_key(&par, |&x| x));
    }
}

#[test]
fn counting_sort_equals_comparison_sort() {
    for data in shapes_u64() {
        let keys: Vec<u32> = data.iter().map(|&x| (x % 512) as u32).collect();
        let sorted = counting_sort_by_key(&keys, 512, |&k| k);
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(sorted, expected);
    }
}

#[test]
fn par_reductions_equal_sequential_reductions() {
    for data in shapes_u64() {
        assert_eq!(par_sum(&data), data.iter().sum::<u64>());
        assert_eq!(par_max(&data), data.iter().copied().max());
        assert_eq!(par_min(&data), data.iter().copied().min());
        assert_eq!(
            par_count(&data, |&x| x % 7 == 0),
            data.iter().filter(|&&x| x % 7 == 0).count()
        );
    }
}

#[test]
fn permutations_valid_on_all_shapes() {
    // The sequential (Fisher–Yates) and parallel (sort-by-hash) constructions
    // intentionally produce different permutations; the shared contract is
    // validity, determinism per seed, and seed sensitivity.
    for n in [0usize, 1, 1000, BIG] {
        let seq = random_permutation(n, 11);
        let par = par_random_permutation(n, 11);
        assert!(seq.validate(), "sequential permutation invalid for n={n}");
        assert!(par.validate(), "parallel permutation invalid for n={n}");
        assert_eq!(seq.len(), n);
        assert_eq!(par.len(), n);
        assert_eq!(seq, random_permutation(n, 11));
        assert_eq!(par, par_random_permutation(n, 11));
        if n > 100 {
            assert_ne!(seq, random_permutation(n, 12));
            assert_ne!(par, par_random_permutation(n, 12));
        }
    }
}
