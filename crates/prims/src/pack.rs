//! Packing (filtering) primitives.
//!
//! The prefix-based MIS implementation (Theorem 4.5 of the paper) repeatedly
//! densely packs surviving prefix vertices into new arrays; root-set
//! maintenance packs newly discovered roots. Packing a slice under a predicate
//! is a scan over 0/1 flags followed by a scatter, which is what
//! [`par_pack`] implements. Order is preserved and the output matches the
//! sequential filter exactly.

use rayon::prelude::*;

use crate::scan::exclusive_scan_in_place;
use crate::util::{blocks, default_num_blocks, SEQUENTIAL_CUTOFF};

/// Sequential pack: the elements of `input` whose flag is `true`, in order.
///
/// ```
/// use greedy_prims::pack::pack;
/// let out = pack(&[10, 20, 30, 40], &[true, false, true, false]);
/// assert_eq!(out, vec![10, 30]);
/// ```
pub fn pack<T: Copy>(input: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(
        input.len(),
        flags.len(),
        "pack: input/flags length mismatch"
    );
    input
        .iter()
        .zip(flags.iter())
        .filter_map(|(&x, &keep)| keep.then_some(x))
        .collect()
}

/// Sequential pack of the *indices* whose flag is `true`.
///
/// ```
/// use greedy_prims::pack::pack_index;
/// assert_eq!(pack_index(&[false, true, true, false, true]), vec![1, 2, 4]);
/// ```
pub fn pack_index(flags: &[bool]) -> Vec<usize> {
    flags
        .iter()
        .enumerate()
        .filter_map(|(i, &keep)| keep.then_some(i))
        .collect()
}

/// Parallel pack: identical output to [`pack`], computed with a blocked
/// count–scan–scatter pass.
pub fn par_pack<T: Copy + Send + Sync>(input: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(
        input.len(),
        flags.len(),
        "par_pack: input/flags length mismatch"
    );
    let n = input.len();
    if n < SEQUENTIAL_CUTOFF {
        return pack(input, flags);
    }
    let ranges = blocks(n, SEQUENTIAL_CUTOFF / 2, default_num_blocks());

    // Count survivors per block.
    let mut counts: Vec<usize> = ranges
        .par_iter()
        .map(|r| flags[r.clone()].iter().filter(|&&b| b).count())
        .collect();
    let total = exclusive_scan_in_place(&mut counts);

    // Scatter each block into its slot range of the output.
    let mut out: Vec<T> = Vec::with_capacity(total);
    // Fill with the first element as a placeholder; overwritten below. Using
    // resize keeps this safe (no uninitialized memory) at the cost of one
    // extra pass, which is cheap relative to the filter itself.
    if total == 0 {
        return out;
    }
    out.resize(total, input[0]);

    // Disjoint output slices per block.
    let mut out_slices: Vec<&mut [T]> = Vec::with_capacity(ranges.len());
    {
        let mut rest = out.as_mut_slice();
        for (i, r) in ranges.iter().enumerate() {
            let cnt = if i + 1 < counts.len() {
                counts[i + 1] - counts[i]
            } else {
                total - counts[i]
            };
            let _ = r;
            let (head, tail) = rest.split_at_mut(cnt);
            out_slices.push(head);
            rest = tail;
        }
    }

    ranges
        .par_iter()
        .zip(out_slices.into_par_iter())
        .for_each(|(r, dst)| {
            let mut k = 0;
            for i in r.clone() {
                if flags[i] {
                    dst[k] = input[i];
                    k += 1;
                }
            }
            debug_assert_eq!(k, dst.len());
        });
    out
}

/// Parallel pack of indices with `flags[i] == true`; identical output to
/// [`pack_index`].
pub fn par_pack_index(flags: &[bool]) -> Vec<usize> {
    let n = flags.len();
    if n < SEQUENTIAL_CUTOFF {
        return pack_index(flags);
    }
    // Reuse par_pack over the index range.
    let indices: Vec<usize> = (0..n).collect();
    par_pack(&indices, flags)
}

/// Parallel adjacent-duplicate removal: identical output to [`Vec::dedup`],
/// computed as a parallel keep-flag pass (`keep[i] = i == 0 || v[i] != v[i-1]`)
/// followed by [`par_pack`].
///
/// On sorted input this removes all duplicates, which is how the CSR build
/// and edge-list canonicalization use it after their radix sorts — the serial
/// `Vec::dedup` there was the last O(n) sequential tail on those paths.
///
/// ```
/// use greedy_prims::pack::par_dedup_adjacent;
/// assert_eq!(par_dedup_adjacent(vec![1, 1, 2, 3, 3, 3]), vec![1, 2, 3]);
/// ```
pub fn par_dedup_adjacent<T: PartialEq + Copy + Send + Sync>(mut v: Vec<T>) -> Vec<T> {
    if v.len() < SEQUENTIAL_CUTOFF {
        v.dedup();
        return v;
    }
    let slice = &v[..];
    let flags: Vec<bool> = (0..slice.len())
        .into_par_iter()
        .map(|i| i == 0 || slice[i] != slice[i - 1])
        .collect();
    par_pack(&v, &flags)
}

/// Splits `input` into (elements with `flags[i] == true`, elements with
/// `flags[i] == false`), both preserving order.
///
/// ```
/// use greedy_prims::pack::split_by;
/// let (yes, no) = split_by(&[1, 2, 3, 4], &[true, false, false, true]);
/// assert_eq!(yes, vec![1, 4]);
/// assert_eq!(no, vec![2, 3]);
/// ```
pub fn split_by<T: Copy>(input: &[T], flags: &[bool]) -> (Vec<T>, Vec<T>) {
    assert_eq!(input.len(), flags.len(), "split_by: length mismatch");
    let mut yes = Vec::new();
    let mut no = Vec::new();
    for (&x, &keep) in input.iter().zip(flags) {
        if keep {
            yes.push(x);
        } else {
            no.push(x);
        }
    }
    (yes, no)
}

/// Parallel filter by predicate; preserves order and matches
/// `input.iter().filter(...)` exactly.
pub fn par_filter<T, F>(input: &[T], pred: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    let flags: Vec<bool> = input.par_iter().map(&pred).collect();
    par_pack(input, &flags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_empty() {
        assert!(pack::<u32>(&[], &[]).is_empty());
        assert!(par_pack::<u32>(&[], &[]).is_empty());
    }

    #[test]
    fn pack_all_true_and_all_false() {
        let data: Vec<u32> = (0..10).collect();
        assert_eq!(pack(&data, &[true; 10]), data);
        assert!(pack(&data, &[false; 10]).is_empty());
    }

    #[test]
    fn par_pack_matches_sequential_large() {
        let data: Vec<u64> = (0..50_000).collect();
        let flags: Vec<bool> = data.iter().map(|&x| x % 3 == 0).collect();
        assert_eq!(par_pack(&data, &flags), pack(&data, &flags));
    }

    #[test]
    fn par_pack_all_false_large() {
        let data: Vec<u64> = (0..10_000).collect();
        let flags = vec![false; data.len()];
        assert!(par_pack(&data, &flags).is_empty());
    }

    #[test]
    fn par_pack_index_matches() {
        let flags: Vec<bool> = (0..30_000).map(|i| i % 7 == 0).collect();
        assert_eq!(par_pack_index(&flags), pack_index(&flags));
    }

    #[test]
    fn split_by_partitions_everything() {
        let data: Vec<u32> = (0..100).collect();
        let flags: Vec<bool> = data.iter().map(|&x| x % 2 == 0).collect();
        let (yes, no) = split_by(&data, &flags);
        assert_eq!(yes.len() + no.len(), data.len());
        assert!(yes.iter().all(|x| x % 2 == 0));
        assert!(no.iter().all(|x| x % 2 == 1));
    }

    #[test]
    fn par_filter_matches_std_filter() {
        let data: Vec<u64> = (0..20_000).map(|i| i * 17 % 1000).collect();
        let expected: Vec<u64> = data.iter().copied().filter(|&x| x < 500).collect();
        assert_eq!(par_filter(&data, |&x| x < 500), expected);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pack_length_mismatch_panics() {
        pack(&[1, 2, 3], &[true]);
    }

    #[test]
    fn par_dedup_matches_vec_dedup_large() {
        // Duplicate-heavy sorted input well above the sequential cutoff.
        let v: Vec<u64> = (0..60_000u64).map(|i| i / 7).collect();
        let mut expected = v.clone();
        expected.dedup();
        assert_eq!(par_dedup_adjacent(v), expected);
    }

    #[test]
    fn par_dedup_unsorted_removes_only_adjacent_runs() {
        // Same contract as Vec::dedup: non-adjacent duplicates survive.
        let v: Vec<u32> = (0..30_000u32).map(|i| i % 3).collect();
        let mut expected = v.clone();
        expected.dedup();
        assert_eq!(par_dedup_adjacent(v), expected);
    }

    #[test]
    fn par_dedup_edge_cases() {
        assert_eq!(par_dedup_adjacent(Vec::<u32>::new()), Vec::<u32>::new());
        assert_eq!(par_dedup_adjacent(vec![5u32]), vec![5]);
        assert_eq!(par_dedup_adjacent(vec![9u32; 50_000]), vec![9]);
    }

    proptest! {
        #[test]
        fn prop_par_pack_equals_pack(
            data in proptest::collection::vec(any::<u32>(), 0..4000),
            seed in any::<u64>(),
        ) {
            let flags: Vec<bool> = data
                .iter()
                .enumerate()
                .map(|(i, _)| (seed.wrapping_mul(i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)) & 1 == 0)
                .collect();
            prop_assert_eq!(par_pack(&data, &flags), pack(&data, &flags));
        }

        #[test]
        fn prop_par_dedup_equals_vec_dedup(data in proptest::collection::vec(0u32..60, 0..4000)) {
            let mut sorted = data;
            sorted.sort_unstable();
            let mut expected = sorted.clone();
            expected.dedup();
            prop_assert_eq!(par_dedup_adjacent(sorted), expected);
        }

        #[test]
        fn prop_pack_index_count(flags in proptest::collection::vec(any::<bool>(), 0..4000)) {
            let idx = pack_index(&flags);
            prop_assert_eq!(idx.len(), flags.iter().filter(|&&b| b).count());
            for i in idx {
                prop_assert!(flags[i]);
            }
        }
    }
}
