//! Sorting subsystem: parallel LSD radix sort, counting sort, bucket sort,
//! and the stable parallel sort-by-key entry point.
//!
//! The maximal-matching implementation keeps each vertex's incidence list
//! sorted by edge priority (Section 5 of the paper: "we maintain for each
//! vertex an array of its incident edges sorted by priority"); since the
//! priorities are a random permutation of `0..m`, a counting/bucket sort does
//! this in linear work, which is what Lemma 5.3 requires. Graph construction
//! (edge list → CSR) bucket-sorts arcs by source vertex, and the random
//! priority permutation itself is a sort of `(hash, element)` pairs.
//!
//! All of those hot paths funnel through [`sort_by_key_parallel`], which
//! dispatches to the parallel LSD radix sort in [`radix`] — linear work per
//! digit pass, stable, and thread-count independent. The small-universe
//! helpers ([`counting_sort_by_key`], [`bucket_by_key`]) remain for callers
//! that already know their key range.

use crate::scan::exclusive_scan_in_place;

pub mod radix;

pub use radix::par_radix_sort_by_key;

/// Stable parallel sort of `items` by a `u64` key.
///
/// This is the workhorse behind permutation construction, edge-list → CSR
/// bucketing, and incidence-list ordering. It dispatches to the parallel LSD
/// radix sort ([`par_radix_sort_by_key`]) above the sequential cutoff and to
/// `std`'s stable sort below it. Guarantees, at every size and thread count:
///
/// * **stable** — records with equal keys keep their input order;
/// * **deterministic** — the output is the unique stable order by `key`, so
///   it is byte-identical across thread counts.
pub fn sort_by_key_parallel<T, F>(items: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Send + Sync,
{
    par_radix_sort_by_key(items, key);
}

/// Stable counting sort of `items` by `key(item) ∈ 0..num_keys`.
///
/// Runs in `O(items.len() + num_keys)` time. Returns the sorted vector.
///
/// # Panics
/// Panics if any `key(item) >= num_keys`; the key range is part of the
/// contract, and a silent clamp or skip would corrupt downstream offset
/// arithmetic.
///
/// ```
/// use greedy_prims::sort::counting_sort_by_key;
/// let sorted = counting_sort_by_key(&[(2u32, 'a'), (0, 'b'), (2, 'c')], 3, |&(k, _)| k);
/// assert_eq!(sorted, vec![(0, 'b'), (2, 'a'), (2, 'c')]);
/// ```
pub fn counting_sort_by_key<T, F>(items: &[T], num_keys: usize, key: F) -> Vec<T>
where
    T: Copy,
    F: Fn(&T) -> u32,
{
    let mut counts = vec![0usize; num_keys];
    for item in items {
        let k = key(item) as usize;
        assert!(
            k < num_keys,
            "counting_sort_by_key: key {k} >= num_keys {num_keys}"
        );
        counts[k] += 1;
    }
    exclusive_scan_in_place(&mut counts);
    let mut out: Vec<T> = Vec::with_capacity(items.len());
    if items.is_empty() {
        return out;
    }
    out.resize(items.len(), items[0]);
    for item in items {
        let k = key(item) as usize;
        out[counts[k]] = *item;
        counts[k] += 1;
    }
    out
}

/// Groups `items` into `num_buckets` buckets by `key`, preserving input order
/// inside each bucket (stable). Returns `(bucketed_items, offsets)` where
/// bucket `b` occupies `bucketed_items[offsets[b]..offsets[b+1]]`.
///
/// # Panics
/// Panics if any `key(item) >= num_buckets` (same contract as
/// [`counting_sort_by_key`]).
///
/// ```
/// use greedy_prims::sort::bucket_by_key;
/// let (items, offsets) = bucket_by_key(&[5u32, 11, 7, 12], 2, |&x| if x < 10 { 0 } else { 1 });
/// assert_eq!(items, vec![5, 7, 11, 12]);
/// assert_eq!(offsets, vec![0, 2, 4]);
/// ```
pub fn bucket_by_key<T, F>(items: &[T], num_buckets: usize, key: F) -> (Vec<T>, Vec<usize>)
where
    T: Copy,
    F: Fn(&T) -> u32,
{
    let mut counts = vec![0usize; num_buckets + 1];
    for item in items {
        let k = key(item) as usize;
        assert!(
            k < num_buckets,
            "bucket_by_key: key {k} >= num_buckets {num_buckets}"
        );
        counts[k + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut out: Vec<T> = Vec::with_capacity(items.len());
    if !items.is_empty() {
        out.resize(items.len(), items[0]);
        for item in items {
            let k = key(item) as usize;
            out[cursor[k]] = *item;
            cursor[k] += 1;
        }
    }
    (out, offsets)
}

/// Checks whether `items` is sorted according to `key` (non-decreasing).
pub fn is_sorted_by_key<T, K: Ord, F: Fn(&T) -> K>(items: &[T], key: F) -> bool {
    items.windows(2).all(|w| key(&w[0]) <= key(&w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counting_sort_empty() {
        let out = counting_sort_by_key::<u32, _>(&[], 10, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn counting_sort_is_stable() {
        // Pairs with equal keys must keep their relative order.
        let items = vec![(1u32, 0usize), (0, 1), (1, 2), (0, 3), (1, 4)];
        let out = counting_sort_by_key(&items, 2, |&(k, _)| k);
        assert_eq!(out, vec![(0, 1), (0, 3), (1, 0), (1, 2), (1, 4)]);
    }

    #[test]
    fn counting_sort_matches_std_sort() {
        let items: Vec<u32> = (0..10_000)
            .map(|i| (i * 2654435761u64 % 997) as u32)
            .collect();
        let sorted = counting_sort_by_key(&items, 997, |&x| x);
        let mut expected = items.clone();
        expected.sort();
        assert_eq!(sorted, expected);
    }

    #[test]
    #[should_panic(expected = "counting_sort_by_key: key 5 >= num_keys 5")]
    fn counting_sort_rejects_out_of_range_key() {
        counting_sort_by_key(&[0u32, 5, 1], 5, |&x| x);
    }

    #[test]
    #[should_panic(expected = "bucket_by_key: key 9 >= num_buckets 4")]
    fn bucket_by_key_rejects_out_of_range_key() {
        bucket_by_key(&[1u32, 9], 4, |&x| x);
    }

    #[test]
    fn bucket_by_key_offsets_consistent() {
        let items: Vec<u32> = (0..1000).map(|i| (i * 7 % 50) as u32).collect();
        let (bucketed, offsets) = bucket_by_key(&items, 50, |&x| x);
        assert_eq!(offsets.len(), 51);
        assert_eq!(offsets[0], 0);
        assert_eq!(*offsets.last().unwrap(), items.len());
        for b in 0..50u32 {
            for &item in &bucketed[offsets[b as usize]..offsets[b as usize + 1]] {
                assert_eq!(item % 50, b, "bucket contents keyed correctly");
            }
        }
    }

    #[test]
    fn bucket_by_key_empty() {
        let (items, offsets) = bucket_by_key::<u32, _>(&[], 4, |&x| x);
        assert!(items.is_empty());
        assert_eq!(offsets, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn sort_by_key_parallel_matches_sequential() {
        let mut a: Vec<u64> = (0..60_000).map(|i| i * 2654435761 % 100_000).collect();
        let mut b = a.clone();
        a.sort();
        sort_by_key_parallel(&mut b, |&x| x);
        assert_eq!(a, b);
    }

    #[test]
    fn sort_by_key_parallel_agrees_with_counting_sort_at_boundary_key() {
        // Every key equal to num_keys - 1: the counting sort's last bucket.
        let items: Vec<(u32, u32)> = (0..5_000u32).map(|i| (99, i)).collect();
        let counted = counting_sort_by_key(&items, 100, |&(k, _)| k);
        let mut parallel = items.clone();
        sort_by_key_parallel(&mut parallel, |&(k, _)| k as u64);
        assert_eq!(counted, parallel);
    }

    #[test]
    fn is_sorted_detects_order() {
        assert!(is_sorted_by_key(&[1, 2, 2, 3], |&x| x));
        assert!(!is_sorted_by_key(&[3, 1], |&x| x));
        assert!(is_sorted_by_key::<u32, _, _>(&[], |&x| x));
    }

    proptest! {
        #[test]
        fn prop_counting_sort_sorted_and_permutation(
            items in proptest::collection::vec(0u32..200, 0..2000)
        ) {
            let sorted = counting_sort_by_key(&items, 200, |&x| x);
            prop_assert!(is_sorted_by_key(&sorted, |&x| x));
            let mut a = items.clone();
            let mut b = sorted.clone();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_bucket_sizes_sum(items in proptest::collection::vec(0u32..32, 0..2000)) {
            let (bucketed, offsets) = bucket_by_key(&items, 32, |&x| x);
            prop_assert_eq!(bucketed.len(), items.len());
            prop_assert_eq!(*offsets.last().unwrap(), items.len());
        }

        // Both sorts are stable, so on any in-range input they must agree
        // exactly — including keys at the top of the range (num_keys - 1,
        // here 199, which the half-open strategy bound 0..200 does generate).
        #[test]
        fn prop_parallel_sort_agrees_with_counting_sort(
            items in proptest::collection::vec((0u32..200, any::<u32>()), 0..3000)
        ) {
            let counted = counting_sort_by_key(&items, 200, |&(k, _)| k);
            let mut parallel = items.clone();
            sort_by_key_parallel(&mut parallel, |&(k, _)| k as u64);
            prop_assert_eq!(counted, parallel);
        }

        #[test]
        fn prop_parallel_sort_agrees_with_counting_sort_tiny_range(
            items in proptest::collection::vec((0u32..2, any::<u32>()), 0..2500)
        ) {
            let counted = counting_sort_by_key(&items, 2, |&(k, _)| k);
            let mut parallel = items.clone();
            sort_by_key_parallel(&mut parallel, |&(k, _)| k as u64);
            prop_assert_eq!(counted, parallel);
        }
    }
}
