//! Parallel LSD radix sort for `u64`-keyed records.
//!
//! This is the sorting engine behind the two setup phases that dominate the
//! paper's experiment harness: building the random priority permutation
//! (records are `(hash, element)` pairs keyed by the 64-bit hash) and turning
//! edge lists into CSR adjacency (records are arcs keyed by
//! `source << 32 | target`). Both only need a *stable* sort by a `u64` key,
//! which lets a least-significant-digit radix sort replace the comparison
//! sort: `O(n)` work per digit pass instead of `O(n log n)` total, and every
//! pass is a blocked histogram + scatter that parallelizes flat.
//!
//! Each pass works in three phases, mirroring the classic PRAM formulation:
//!
//! 1. **histogram** — the input is split into contiguous blocks (a small
//!    multiple of the thread count) and each block counts its keys' digit
//!    values in parallel;
//! 2. **scan** — an exclusive scan over the `blocks × buckets` count matrix
//!    (digit-major, block-minor) assigns every (digit, block) pair a disjoint
//!    output segment;
//! 3. **scatter** — each block replays its input in order, appending every
//!    record to its digit's segment. Segments are handed out as disjoint
//!    sub-slices, so the parallel scatter needs no synchronization and no
//!    `unsafe`.
//!
//! Because the scatter preserves input order within every digit (block
//! segments are laid out in block order), each pass is stable, and the final
//! output is the unique stable order — **independent of the block layout and
//! therefore of the thread count**. Digit positions where all keys agree are
//! detected up front (one AND/OR reduction) and their passes skipped, so
//! small-universe keys like CSR arcs pay only for the digits they use.

use std::ops::Range;

use crate::util::{blocks, par_map_blocks};

/// Digit width in bits. 11 bits → 2048 buckets: six passes cover a full
/// 64-bit key, and a per-block histogram is 16 KiB — small enough to live in
/// L1/L2 while counting.
const RADIX_BITS: u32 = 11;
/// Number of buckets per pass (`2^RADIX_BITS`).
const NUM_BUCKETS: usize = 1 << RADIX_BITS;
/// Smallest block a pass hands to one task; below this, per-pass setup
/// (histograms, segment splitting) dominates.
const RADIX_BLOCK: usize = 1 << 14;
/// Below this input size the whole sort falls back to `std`'s stable sort:
/// under `2 × RADIX_BLOCK` there are at most two blocks (so little
/// parallelism to win), and the measured single-thread crossover where the
/// multi-pass 2048-bucket radix starts beating `std` sits just above 16k
/// elements.
const RADIX_SEQUENTIAL_CUTOFF: usize = 2 * RADIX_BLOCK;

/// Stable parallel LSD radix sort of `items` by a `u64` key.
///
/// Records with equal keys keep their input order (stability), which makes
/// the output the unique stable order by `key` — identical to
/// `items.sort_by_key(key)` and independent of the number of threads. Inputs
/// below the sequential cutoff fall back to `std`'s stable sort.
pub fn par_radix_sort_by_key<T, F>(items: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Send + Sync,
{
    let n = items.len();
    if n < RADIX_SEQUENTIAL_CUTOFF {
        items.sort_by_key(|x| key(x));
        return;
    }
    let ranges = blocks(
        n,
        RADIX_BLOCK,
        rayon::current_num_threads().saturating_mul(4),
    );

    // One reduction pass finds the digit positions where keys actually
    // differ; constant digits permute nothing under a stable scatter, so
    // their passes are skipped outright.
    let (all_and, all_or) = par_map_blocks(ranges.clone(), &|r: Range<usize>| {
        let mut conj = u64::MAX;
        let mut disj = 0u64;
        for item in &items[r] {
            let k = key(item);
            conj &= k;
            disj |= k;
        }
        (conj, disj)
    })
    .into_iter()
    .fold((u64::MAX, 0u64), |(a, o), (ba, bo)| (a & ba, o | bo));
    let varying = all_and ^ all_or;

    let mut scratch: Vec<T> = items.to_vec();
    let mut in_items = true;
    let mut shift = 0u32;
    while shift < u64::BITS {
        let digit_mask = ((NUM_BUCKETS - 1) as u64) << shift;
        if varying & digit_mask != 0 {
            if in_items {
                radix_pass(items, &mut scratch, &ranges, &key, shift);
            } else {
                radix_pass(&scratch, items, &ranges, &key, shift);
            }
            in_items = !in_items;
        }
        shift += RADIX_BITS;
    }
    if !in_items {
        items.copy_from_slice(&scratch);
    }
}

/// One stable counting pass: scatters `src` into `dst` by the digit at
/// `shift`, preserving input order within each digit value.
fn radix_pass<T, F>(src: &[T], dst: &mut [T], ranges: &[Range<usize>], key: &F, shift: u32)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Send + Sync,
{
    let digit = |item: &T| ((key(item) >> shift) as usize) & (NUM_BUCKETS - 1);

    // Phase 1: per-block digit histograms, in parallel.
    let counts: Vec<Vec<usize>> = par_map_blocks(ranges.to_vec(), &|r: Range<usize>| {
        let mut c = vec![0usize; NUM_BUCKETS];
        for item in &src[r] {
            c[digit(item)] += 1;
        }
        c
    });

    // Phase 2: carve `dst` into one segment per (digit, block) pair,
    // digit-major and block-minor — exactly the exclusive scan of the count
    // matrix, realized as sub-slices so phase 3 stays safe.
    let mut segments: Vec<Vec<&mut [T]>> = (0..ranges.len())
        .map(|_| Vec::with_capacity(NUM_BUCKETS))
        .collect();
    let mut rest = dst;
    for bucket in 0..NUM_BUCKETS {
        for (block, c) in counts.iter().enumerate() {
            let (segment, tail) = rest.split_at_mut(c[bucket]);
            segments[block].push(segment);
            rest = tail;
        }
    }
    debug_assert!(rest.is_empty());

    // Phase 3: every block replays its input range in order, appending each
    // record to its digit's segment. Segments are disjoint, so no task ever
    // touches another task's output.
    let tasks: Vec<(Range<usize>, Vec<&mut [T]>)> = ranges.iter().cloned().zip(segments).collect();
    par_map_blocks(tasks, &|(r, mut segs): (Range<usize>, Vec<&mut [T]>)| {
        let mut cursor = vec![0usize; NUM_BUCKETS];
        for item in &src[r] {
            let d = digit(item);
            segs[d][cursor[d]] = *item;
            cursor[d] += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::hash64;

    fn in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(f)
    }

    #[test]
    fn radix_matches_std_stable_sort() {
        let items: Vec<(u64, u32)> = (0..100_000u32).map(|i| (hash64(1, i as u64), i)).collect();
        let mut expected = items.clone();
        expected.sort_by_key(|&(k, _)| k);
        for threads in [1, 4] {
            let mut got = items.clone();
            in_pool(threads, || par_radix_sort_by_key(&mut got, |&(k, _)| k));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn radix_is_stable_on_narrow_keys() {
        // Many collisions: stability must keep payload order per key.
        let items: Vec<(u64, u32)> = (0..50_000u32).map(|i| ((i % 13) as u64, i)).collect();
        let mut expected = items.clone();
        expected.sort_by_key(|&(k, _)| k);
        let mut got = items;
        in_pool(4, || par_radix_sort_by_key(&mut got, |&(k, _)| k));
        assert_eq!(got, expected);
    }

    #[test]
    fn radix_skips_constant_digits_correctly() {
        // Keys differ only in one low digit; all other passes are skipped.
        let items: Vec<(u64, u32)> = (0..80_000u32)
            .map(|i| (0xDEAD_0000_0000_0000 | (i % 7) as u64, i))
            .collect();
        let mut expected = items.clone();
        expected.sort_by_key(|&(k, _)| k);
        let mut got = items;
        in_pool(3, || par_radix_sort_by_key(&mut got, |&(k, _)| k));
        assert_eq!(got, expected);
    }

    #[test]
    fn radix_handles_all_equal_and_tiny() {
        let mut all_equal: Vec<(u64, u32)> = (0..50_000u32).map(|i| (42, i)).collect();
        let expected = all_equal.clone();
        in_pool(4, || par_radix_sort_by_key(&mut all_equal, |&(k, _)| k));
        assert_eq!(all_equal, expected, "all-equal keys must not move");

        let mut empty: Vec<(u64, u32)> = Vec::new();
        par_radix_sort_by_key(&mut empty, |&(k, _)| k);
        assert!(empty.is_empty());

        let mut one = vec![(9u64, 1u32)];
        par_radix_sort_by_key(&mut one, |&(k, _)| k);
        assert_eq!(one, vec![(9, 1)]);
    }

    #[test]
    fn radix_handles_extreme_keys() {
        let mut items: Vec<(u64, u32)> = (0..80_000u32)
            .map(|i| {
                let k = match i % 5 {
                    0 => u64::MAX,
                    1 => u64::MAX - 1,
                    2 => 0,
                    3 => 1 << 63,
                    _ => hash64(9, i as u64),
                };
                (k, i)
            })
            .collect();
        let mut expected = items.clone();
        expected.sort_by_key(|&(k, _)| k);
        in_pool(2, || par_radix_sort_by_key(&mut items, |&(k, _)| k));
        assert_eq!(items, expected);
    }
}
