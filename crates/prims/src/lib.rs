//! # greedy-prims
//!
//! Parallel primitives used throughout the `greedy-parallel` workspace.
//!
//! The SPAA 2012 paper ("Greedy Sequential Maximal Independent Set and Matching
//! are Parallel on Average", Blelloch, Fineman, Shun) expresses its algorithms in
//! the CRCW PRAM work–depth model, assuming standard primitives: prefix sums
//! (scan), packing (filtering by flags), bucket/counting sorts, and random
//! permutations. This crate provides shared-memory realizations of those
//! primitives on top of [`rayon`], plus a few utilities (deterministic hashing,
//! chunking helpers) used by the core algorithms and the benchmark harness.
//!
//! All primitives come in a sequential and a parallel flavor; the parallel
//! flavors fall back to the sequential code below a grain size so that small
//! inputs do not pay scheduling overhead. Every parallel primitive is
//! deterministic: it returns exactly the same result as its sequential
//! counterpart.
//!
//! ## Quick example
//!
//! ```
//! use greedy_prims::scan::exclusive_scan_in_place;
//!
//! let mut counts = vec![3u64, 1, 4, 1, 5];
//! let total = exclusive_scan_in_place(&mut counts);
//! assert_eq!(counts, vec![0, 3, 4, 8, 9]);
//! assert_eq!(total, 14);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

pub mod pack;
pub mod permutation;
pub mod random;
pub mod reduce;
pub mod scan;
pub mod sort;
pub mod util;

/// Convenient re-exports of the most commonly used primitives.
pub mod prelude {
    pub use crate::pack::{pack, pack_index};
    pub use crate::permutation::{random_permutation, Permutation};
    pub use crate::random::SplitMix64;
    pub use crate::reduce::{par_max, par_min, par_sum};
    pub use crate::scan::{exclusive_scan, exclusive_scan_in_place, inclusive_scan};
    pub use crate::sort::{counting_sort_by_key, sort_by_key_parallel};
    pub use crate::util::DEFAULT_GRAIN;
}
