//! Parallel reductions and histograms.
//!
//! Thin wrappers over rayon reductions with sequential fallbacks, plus a
//! blocked histogram used when bucketing edges by endpoint (graph building)
//! and when computing degree distributions for the experiment harness.

use rayon::prelude::*;

use crate::util::SEQUENTIAL_CUTOFF;

/// Parallel sum of a slice of `u64`.
pub fn par_sum(data: &[u64]) -> u64 {
    if data.len() < SEQUENTIAL_CUTOFF {
        data.iter().sum()
    } else {
        data.par_iter().sum()
    }
}

/// Parallel maximum; `None` for an empty slice.
pub fn par_max<T: Copy + Ord + Send + Sync>(data: &[T]) -> Option<T> {
    if data.len() < SEQUENTIAL_CUTOFF {
        data.iter().copied().max()
    } else {
        data.par_iter().copied().max()
    }
}

/// Parallel minimum; `None` for an empty slice.
pub fn par_min<T: Copy + Ord + Send + Sync>(data: &[T]) -> Option<T> {
    if data.len() < SEQUENTIAL_CUTOFF {
        data.iter().copied().min()
    } else {
        data.par_iter().copied().min()
    }
}

/// Counts how many elements satisfy the predicate.
pub fn par_count<T, F>(data: &[T], pred: F) -> usize
where
    T: Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    if data.len() < SEQUENTIAL_CUTOFF {
        data.iter().filter(|x| pred(x)).count()
    } else {
        data.par_iter().filter(|x| pred(x)).count()
    }
}

/// Histogram of `keys` into `num_buckets` buckets.
///
/// Every key must be `< num_buckets`. Parallelized by accumulating per-block
/// local histograms and summing them, so the result is deterministic.
///
/// ```
/// use greedy_prims::reduce::histogram;
/// assert_eq!(histogram(&[0, 2, 2, 1, 2], 3), vec![1, 1, 3]);
/// ```
pub fn histogram(keys: &[u32], num_buckets: usize) -> Vec<u64> {
    if keys.len() < SEQUENTIAL_CUTOFF || num_buckets > keys.len() {
        let mut counts = vec![0u64; num_buckets];
        for &k in keys {
            counts[k as usize] += 1;
        }
        return counts;
    }
    keys.par_chunks(SEQUENTIAL_CUTOFF)
        .map(|chunk| {
            let mut local = vec![0u64; num_buckets];
            for &k in chunk {
                local[k as usize] += 1;
            }
            local
        })
        .reduce(
            || vec![0u64; num_buckets],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

/// Index of a maximum element (first one on ties); `None` for empty input.
pub fn argmax<T: Copy + Ord>(data: &[T]) -> Option<usize> {
    let mut best: Option<(usize, T)> = None;
    for (i, &x) in data.iter().enumerate() {
        match best {
            None => best = Some((i, x)),
            Some((_, bx)) if x > bx => best = Some((i, x)),
            _ => {}
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sum_small_and_large() {
        assert_eq!(par_sum(&[]), 0);
        assert_eq!(par_sum(&[1, 2, 3]), 6);
        let big: Vec<u64> = (0..100_000).collect();
        assert_eq!(par_sum(&big), 100_000 * 99_999 / 2);
    }

    #[test]
    fn max_min_empty() {
        assert_eq!(par_max::<u64>(&[]), None);
        assert_eq!(par_min::<u64>(&[]), None);
    }

    #[test]
    fn max_min_large() {
        let data: Vec<u64> = (0..50_000).map(|i| (i * 7919) % 65_536).collect();
        assert_eq!(par_max(&data), data.iter().copied().max());
        assert_eq!(par_min(&data), data.iter().copied().min());
    }

    #[test]
    fn count_matches_filter() {
        let data: Vec<u64> = (0..30_000).collect();
        assert_eq!(par_count(&data, |&x| x % 5 == 0), 6000);
    }

    #[test]
    fn histogram_small() {
        assert_eq!(histogram(&[], 3), vec![0, 0, 0]);
        assert_eq!(histogram(&[0, 0, 1], 2), vec![2, 1]);
    }

    #[test]
    fn histogram_large_matches_sequential() {
        let keys: Vec<u32> = (0..100_000).map(|i| (i * 31 % 100) as u32).collect();
        let mut expected = vec![0u64; 100];
        for &k in &keys {
            expected[k as usize] += 1;
        }
        assert_eq!(histogram(&keys, 100), expected);
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax::<u64>(&[]), None);
        assert_eq!(argmax(&[3, 1, 4, 1, 5, 9, 2, 6]), Some(5));
        assert_eq!(argmax(&[7, 7, 7]), Some(0), "first max wins on ties");
    }

    proptest! {
        #[test]
        fn prop_histogram_total(keys in proptest::collection::vec(0u32..50, 0..3000)) {
            let h = histogram(&keys, 50);
            prop_assert_eq!(h.iter().sum::<u64>() as usize, keys.len());
        }

        #[test]
        fn prop_sum_matches_iter(data in proptest::collection::vec(0u64..1_000_000, 0..3000)) {
            prop_assert_eq!(par_sum(&data), data.iter().sum::<u64>());
        }
    }
}
