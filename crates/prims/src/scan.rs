//! Prefix sums (scans), sequential and parallel.
//!
//! Scans are the workhorse of the paper's linear-work implementations: packing
//! a prefix's surviving vertices into dense arrays (Theorem 4.5) and building
//! CSR offsets from per-vertex degree counts both reduce to an exclusive scan.
//!
//! The parallel scan is the standard two-pass blocked algorithm: partial sums
//! per block, a sequential scan over the (few) block totals, then a parallel
//! pass that re-scans each block seeded with its offset. It is deterministic
//! and returns exactly the same output as the sequential scan.

use crate::util::{blocks, default_num_blocks, par_map_blocks, SEQUENTIAL_CUTOFF};

/// A commutative-enough monoid for scanning. Only associativity and an
/// identity are required; all instances used in this workspace (integer
/// addition, max) are also commutative.
pub trait ScanMonoid: Copy + Send + Sync {
    /// The identity element (`combine(identity(), x) == x`).
    fn identity() -> Self;
    /// The associative combine operation.
    fn combine(self, other: Self) -> Self;
}

impl ScanMonoid for u64 {
    fn identity() -> Self {
        0
    }
    fn combine(self, other: Self) -> Self {
        self + other
    }
}

impl ScanMonoid for u32 {
    fn identity() -> Self {
        0
    }
    fn combine(self, other: Self) -> Self {
        self + other
    }
}

impl ScanMonoid for usize {
    fn identity() -> Self {
        0
    }
    fn combine(self, other: Self) -> Self {
        self + other
    }
}

impl ScanMonoid for i64 {
    fn identity() -> Self {
        0
    }
    fn combine(self, other: Self) -> Self {
        self + other
    }
}

/// Sequential exclusive scan returning a fresh vector plus the total.
///
/// `out[i] = in[0] ⊕ … ⊕ in[i-1]`, `out[0] = identity`.
///
/// ```
/// use greedy_prims::scan::exclusive_scan;
/// let (out, total) = exclusive_scan(&[1u64, 2, 3, 4]);
/// assert_eq!(out, vec![0, 1, 3, 6]);
/// assert_eq!(total, 10);
/// ```
pub fn exclusive_scan<T: ScanMonoid>(input: &[T]) -> (Vec<T>, T) {
    let mut out = Vec::with_capacity(input.len());
    let mut acc = T::identity();
    for &x in input {
        out.push(acc);
        acc = acc.combine(x);
    }
    (out, acc)
}

/// Sequential inclusive scan returning a fresh vector.
///
/// `out[i] = in[0] ⊕ … ⊕ in[i]`.
///
/// ```
/// use greedy_prims::scan::inclusive_scan;
/// assert_eq!(inclusive_scan(&[1u64, 2, 3]), vec![1, 3, 6]);
/// ```
pub fn inclusive_scan<T: ScanMonoid>(input: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(input.len());
    let mut acc = T::identity();
    for &x in input {
        acc = acc.combine(x);
        out.push(acc);
    }
    out
}

/// In-place sequential exclusive scan; returns the total.
///
/// ```
/// use greedy_prims::scan::exclusive_scan_in_place;
/// let mut v = vec![2u64, 2, 2];
/// assert_eq!(exclusive_scan_in_place(&mut v), 6);
/// assert_eq!(v, vec![0, 2, 4]);
/// ```
pub fn exclusive_scan_in_place<T: ScanMonoid>(data: &mut [T]) -> T {
    let mut acc = T::identity();
    for x in data.iter_mut() {
        let next = acc.combine(*x);
        *x = acc;
        acc = next;
    }
    acc
}

/// Parallel in-place exclusive scan; returns the total.
///
/// Uses the two-pass blocked algorithm. Falls back to the sequential scan for
/// short inputs. Deterministic: identical output to
/// [`exclusive_scan_in_place`].
pub fn par_exclusive_scan_in_place<T: ScanMonoid>(data: &mut [T]) -> T {
    let n = data.len();
    if n < SEQUENTIAL_CUTOFF {
        return exclusive_scan_in_place(data);
    }
    let ranges = blocks(n, SEQUENTIAL_CUTOFF / 2, default_num_blocks());

    // Pass 1: per-block totals. The block list is a short vector of *coarse*
    // tasks, which the rayon shim's `par_iter` would not split (its grain is
    // tuned for per-element work), so fan out with the join-based
    // `par_map_blocks` instead.
    let immutable: &[T] = data;
    let mut block_totals: Vec<T> = par_map_blocks(ranges.clone(), &|r: std::ops::Range<usize>| {
        let mut acc = T::identity();
        for &x in &immutable[r] {
            acc = acc.combine(x);
        }
        acc
    });

    // Pass 2: scan the block totals sequentially (few of them).
    let grand_total = exclusive_scan_in_place(&mut block_totals);

    // Pass 3: re-scan each block seeded with its offset, in parallel over
    // disjoint sub-slices (same coarse-task fan-out as pass 1).
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(ranges.len());
    {
        let mut rest = data;
        let mut consumed = 0usize;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.end - consumed);
            slices.push(head);
            rest = tail;
            consumed = r.end;
        }
    }
    let tasks: Vec<(&mut [T], T)> = slices.into_iter().zip(block_totals).collect();
    par_map_blocks(tasks, &|(chunk, offset): (&mut [T], T)| {
        let mut acc = offset;
        for x in chunk.iter_mut() {
            let next = acc.combine(*x);
            *x = acc;
            acc = next;
        }
    });
    grand_total
}

/// Parallel exclusive scan into a fresh vector; returns `(scanned, total)`.
pub fn par_exclusive_scan<T: ScanMonoid>(input: &[T]) -> (Vec<T>, T) {
    let mut out = input.to_vec();
    let total = par_exclusive_scan_in_place(&mut out);
    (out, total)
}

/// Scan-based conversion of per-bucket counts into CSR-style offsets.
///
/// Returns a vector of length `counts.len() + 1` whose last element is the
/// total. This is the shape needed to build adjacency offset arrays.
///
/// ```
/// use greedy_prims::scan::counts_to_offsets;
/// assert_eq!(counts_to_offsets(&[2u64, 0, 3]), vec![0, 2, 2, 5]);
/// ```
pub fn counts_to_offsets<T: ScanMonoid>(counts: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = T::identity();
    for &c in counts {
        out.push(acc);
        acc = acc.combine(c);
    }
    out.push(acc);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exclusive_scan_empty() {
        let (out, total) = exclusive_scan::<u64>(&[]);
        assert!(out.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn exclusive_scan_single() {
        let (out, total) = exclusive_scan(&[7u64]);
        assert_eq!(out, vec![0]);
        assert_eq!(total, 7);
    }

    #[test]
    fn inclusive_matches_exclusive_shifted() {
        let input: Vec<u64> = (1..=100).collect();
        let inc = inclusive_scan(&input);
        let (exc, total) = exclusive_scan(&input);
        for i in 0..input.len() {
            assert_eq!(inc[i], exc[i] + input[i]);
        }
        assert_eq!(*inc.last().unwrap(), total);
    }

    #[test]
    fn par_scan_matches_sequential_large() {
        let input: Vec<u64> = (0..100_000).map(|i| (i * 31 + 7) % 97).collect();
        let (seq, seq_total) = exclusive_scan(&input);
        let mut par = input.clone();
        let par_total = par_exclusive_scan_in_place(&mut par);
        assert_eq!(seq, par);
        assert_eq!(seq_total, par_total);
    }

    #[test]
    fn par_scan_matches_sequential_small() {
        let input: Vec<u64> = vec![5, 1, 2];
        let (seq, seq_total) = exclusive_scan(&input);
        let (par, par_total) = par_exclusive_scan(&input);
        assert_eq!(seq, par);
        assert_eq!(seq_total, par_total);
    }

    #[test]
    fn counts_to_offsets_basic() {
        let offsets = counts_to_offsets(&[1u64, 2, 3, 0, 4]);
        assert_eq!(offsets, vec![0, 1, 3, 6, 6, 10]);
    }

    #[test]
    fn counts_to_offsets_empty() {
        assert_eq!(counts_to_offsets::<u64>(&[]), vec![0]);
    }

    #[test]
    fn works_for_usize_and_u32() {
        let (a, ta) = exclusive_scan(&[1usize, 2, 3]);
        assert_eq!(a, vec![0, 1, 3]);
        assert_eq!(ta, 6);
        let (b, tb) = exclusive_scan(&[1u32, 2, 3]);
        assert_eq!(b, vec![0, 1, 3]);
        assert_eq!(tb, 6);
    }

    proptest! {
        #[test]
        fn prop_par_scan_equals_seq(input in proptest::collection::vec(0u64..1000, 0..5000)) {
            let (seq, st) = exclusive_scan(&input);
            let (par, pt) = par_exclusive_scan(&input);
            prop_assert_eq!(seq, par);
            prop_assert_eq!(st, pt);
        }

        #[test]
        fn prop_scan_total_is_sum(input in proptest::collection::vec(0u64..1000, 0..2000)) {
            let (_, total) = exclusive_scan(&input);
            prop_assert_eq!(total, input.iter().sum::<u64>());
        }
    }
}
