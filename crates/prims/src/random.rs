//! Small deterministic RNG utilities.
//!
//! Two needs in this workspace are served here rather than by the `rand`
//! crate directly:
//!
//! 1. **Per-index deterministic hashing.** Luby's Algorithm A re-randomizes
//!    vertex priorities on every round. Doing that with a splittable counter
//!    RNG ([`hash64`] / [`SplitMix64`]) keeps the algorithm deterministic for
//!    a fixed seed regardless of the parallel schedule, which mirrors how the
//!    PBBS implementations draw per-vertex random numbers.
//! 2. **Cheap per-task streams.** Parallel generators (e.g. the R-MAT
//!    generator) give every edge index its own stream seeded from the edge
//!    index, so edges can be generated independently in parallel and the
//!    resulting graph does not depend on the number of threads.

/// SplitMix64: tiny, fast, statistically solid 64-bit mixer/generator.
///
/// Used both as a stream RNG (via [`SplitMix64::next_u64`]) and, through
/// [`hash64`], as a stateless integer mixer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        mix64(self.state)
    }

    /// Returns the next value reduced to `0..bound` (bound must be nonzero).
    ///
    /// Uses the widening-multiply reduction, which is unbiased enough for the
    /// simulation workloads here (bias < 2^-32 for bounds < 2^32).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The finalization mixer of SplitMix64 as a stateless hash.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Stateless 64-bit hash of `(seed, index)`.
///
/// Deterministic, well-mixed, and cheap; used for per-vertex/per-round random
/// priorities (Luby) and per-edge generator streams.
///
/// ```
/// use greedy_prims::random::hash64;
/// assert_eq!(hash64(1, 2), hash64(1, 2));
/// assert_ne!(hash64(1, 2), hash64(1, 3));
/// assert_ne!(hash64(1, 2), hash64(2, 2));
/// ```
pub fn hash64(seed: u64, index: u64) -> u64 {
    mix64(
        seed.wrapping_mul(0xA24BAED4963EE407)
            .wrapping_add(mix64(index.wrapping_add(0x9E3779B97F4A7C15))),
    )
}

/// Stateless hash reduced to `0..bound` (bound must be nonzero).
pub fn hash_below(seed: u64, index: u64, bound: u64) -> u64 {
    assert!(bound > 0, "hash_below: bound must be positive");
    ((hash64(seed, index) as u128 * bound as u128) >> 64) as u64
}

/// Stateless hash mapped to a uniform f64 in [0, 1).
pub fn hash_f64(seed: u64, index: u64) -> f64 {
    (hash64(seed, index) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 10, 1000, u32::MAX as u64] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = SplitMix64::new(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn hash64_distributes_low_bit() {
        // Crude sanity check: the low bit of the hash should be roughly balanced.
        let ones = (0..10_000).filter(|&i| hash64(99, i) & 1 == 1).count();
        assert!((4_000..6_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn hash_below_in_range_and_deterministic() {
        for i in 0..1000u64 {
            let x = hash_below(5, i, 17);
            assert!(x < 17);
            assert_eq!(x, hash_below(5, i, 17));
        }
    }

    #[test]
    fn hash_f64_unit_interval() {
        for i in 0..1000u64 {
            let x = hash_f64(1, i);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
