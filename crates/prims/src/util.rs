//! Chunking and grain-size helpers shared by the parallel primitives.
//!
//! Rayon adapts its splitting automatically, but the blocked two-pass
//! algorithms in this crate (scan, pack, counting sort) need explicit block
//! boundaries so that per-block partial results can be combined
//! deterministically. These helpers compute those boundaries.

/// Default grain size: the smallest amount of work a parallel primitive hands
/// to a single task.
///
/// The paper's implementation notes a loop grain size of 256 (Section 6); we
/// use a slightly larger default because our per-element work is often a
/// handful of instructions. Primitives accept an explicit grain where the
/// caller wants to reproduce the paper's sequential-to-parallel "bump"
/// (see the `ablation_grain_size` experiment).
pub const DEFAULT_GRAIN: usize = 1024;

/// Below this input size parallel primitives run their sequential fallback
/// outright, to avoid paying any scheduling overhead.
pub const SEQUENTIAL_CUTOFF: usize = 2048;

/// Splits `0..len` into roughly equal contiguous blocks of at least
/// `min_block` elements, returning the half-open ranges.
///
/// The number of blocks is capped at `max_blocks` (usually a small multiple of
/// the number of threads). Returns a single block when `len <= min_block`.
///
/// ```
/// use greedy_prims::util::blocks;
/// let b = blocks(10, 4, 8);
/// assert_eq!(b, vec![0..5, 5..10]);
/// ```
pub fn blocks(len: usize, min_block: usize, max_blocks: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let min_block = min_block.max(1);
    let max_blocks = max_blocks.max(1);
    let nblocks = (len / min_block).clamp(1, max_blocks);
    let block_size = len.div_ceil(nblocks);
    let mut out = Vec::with_capacity(nblocks);
    let mut start = 0;
    while start < len {
        let end = (start + block_size).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

/// A reasonable default block count for two-pass blocked algorithms:
/// a small multiple of the available parallelism.
pub fn default_num_blocks() -> usize {
    rayon::current_num_threads().saturating_mul(8).max(1)
}

/// Applies `f` to every coarse task in `tasks`, in parallel, returning the
/// results in task order.
///
/// This is the fork–join fan-out for *blocked* algorithms (scan, radix sort,
/// sample sort) that hand out a handful of tasks — typically a small multiple
/// of the thread count — where each task is a large contiguous block of work.
/// `par_iter` over such a short task list does not split (its grain size is
/// tuned for per-element work), so this helper recurses with [`rayon::join`]
/// instead. Forking stops once the current thread budget
/// ([`rayon::current_num_threads`]) is exhausted, so a `t`-thread pool never
/// runs more than `t` tasks concurrently even when given `4t` tasks —
/// thread-count-labeled measurements stay honest.
pub fn par_map_blocks<I, R, F>(tasks: Vec<I>, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    par_map_blocks_bounded(tasks, f, rayon::current_num_threads())
}

fn par_map_blocks_bounded<I, R, F>(mut tasks: Vec<I>, f: &F, budget: usize) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    if tasks.len() <= 1 || budget <= 1 {
        return tasks.into_iter().map(f).collect();
    }
    let right = tasks.split_off(tasks.len() / 2);
    let right_budget = budget / 2;
    let left_budget = budget - right_budget;
    let (mut a, b) = rayon::join(
        || par_map_blocks_bounded(tasks, f, left_budget),
        || par_map_blocks_bounded(right, f, right_budget),
    );
    a.extend(b);
    a
}

/// Rounds `x` up to the next power of two (saturating at `usize::MAX/2 + 1`).
///
/// ```
/// use greedy_prims::util::next_power_of_two;
/// assert_eq!(next_power_of_two(0), 1);
/// assert_eq!(next_power_of_two(5), 8);
/// assert_eq!(next_power_of_two(8), 8);
/// ```
pub fn next_power_of_two(x: usize) -> usize {
    x.max(1).next_power_of_two()
}

/// Integer ceiling of log2, with `ceil_log2(0) == 0` and `ceil_log2(1) == 0`.
///
/// ```
/// use greedy_prims::util::ceil_log2;
/// assert_eq!(ceil_log2(1), 0);
/// assert_eq!(ceil_log2(2), 1);
/// assert_eq!(ceil_log2(3), 2);
/// assert_eq!(ceil_log2(1024), 10);
/// ```
pub fn ceil_log2(x: usize) -> u32 {
    if x <= 1 {
        0
    } else {
        usize::BITS - (x - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_cover_range_exactly() {
        for len in [0usize, 1, 2, 7, 100, 1000, 12345] {
            for min_block in [1usize, 3, 64, 1024] {
                for max_blocks in [1usize, 2, 7, 64] {
                    let bs = blocks(len, min_block, max_blocks);
                    if len == 0 {
                        assert!(bs.is_empty());
                        continue;
                    }
                    assert_eq!(bs.first().unwrap().start, 0);
                    assert_eq!(bs.last().unwrap().end, len);
                    for w in bs.windows(2) {
                        assert_eq!(w[0].end, w[1].start, "blocks must be contiguous");
                    }
                    assert!(bs.len() <= max_blocks);
                }
            }
        }
    }

    #[test]
    fn blocks_single_when_small() {
        let bs = blocks(10, 100, 8);
        assert_eq!(bs, vec![0..10]);
    }

    #[test]
    fn ceil_log2_matches_naive() {
        for x in 1usize..1000 {
            let naive = (x as f64).log2().ceil() as u32;
            assert_eq!(ceil_log2(x), naive, "x={x}");
        }
    }

    #[test]
    fn next_power_of_two_basics() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(3), 4);
        assert_eq!(next_power_of_two(1025), 2048);
    }

    #[test]
    fn default_num_blocks_positive() {
        assert!(default_num_blocks() >= 1);
    }

    #[test]
    fn par_map_blocks_preserves_task_order() {
        for threads in [1usize, 2, 3, 7] {
            let got = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| par_map_blocks((0..37usize).collect(), &|i| i * i));
            let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn sixty_four_coarse_tasks_split_across_threads() {
        // Regression for the shim-grain trap: the rayon shim's `par_iter`
        // does not split collections shorter than its 256-element grain, so
        // a 64-task coarse fan-out routed through it would run entirely on
        // the calling thread. `par_map_blocks` must actually distribute
        // those 64 tasks — this is the fan-out shape of the engine's
        // 64-vertex arena rebalance, which depends on this property.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| {
                par_map_blocks((0..64usize).collect(), &|_| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    // Make each task coarse enough that helpers get a chance
                    // to steal before the first thread drains everything.
                    std::thread::sleep(std::time::Duration::from_micros(500));
                })
            });
        assert!(
            seen.lock().unwrap().len() >= 2,
            "64 coarse tasks under a 4-thread pool all ran on one thread"
        );
    }

    #[test]
    fn par_map_blocks_never_exceeds_thread_budget() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let threads = 3;
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| {
                par_map_blocks((0..32usize).collect(), &|_| {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    live.fetch_sub(1, Ordering::SeqCst);
                })
            });
        assert!(
            peak.load(Ordering::SeqCst) <= threads,
            "observed {} concurrent tasks under a {threads}-thread pool",
            peak.load(Ordering::SeqCst)
        );
    }
}
