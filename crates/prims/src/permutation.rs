//! Random permutations of `0..n`.
//!
//! The paper's central object is a uniformly random total order π on vertices
//! (for MIS) or edges (for MM). A [`Permutation`] stores both directions of
//! the bijection: `order[k]` is the element in position `k` (the k-th highest
//! priority), and `rank[v]` is the position of element `v`. The greedy
//! algorithms only ever compare ranks, so `rank` is the array they index.
//!
//! Two constructions are provided:
//! * [`random_permutation`] — sequential Fisher–Yates from a seeded ChaCha RNG.
//! * [`par_random_permutation`] — parallel construction that sorts elements by
//!   a per-index hash key (ties broken by index). For a fixed seed it is
//!   deterministic and thread-count independent, and the resulting permutation
//!   is (essentially) uniform: collisions in 64-bit keys are vanishingly rare
//!   and resolved deterministically.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::random::hash64;
use crate::sort::sort_by_key_parallel;
use crate::util::{blocks, par_map_blocks};

/// A permutation of `0..n`, stored in both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    /// `order[k]` = the element placed at position `k` (position 0 = highest priority).
    order: Vec<u32>,
    /// `rank[v]` = the position of element `v` in the order.
    rank: Vec<u32>,
}

impl Permutation {
    /// Builds a permutation from the position-to-element map `order`.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn from_order(order: Vec<u32>) -> Self {
        let n = order.len();
        let rank = match par_validated_inverse(&order) {
            Ok(rank) => rank,
            Err(InverseError::OutOfRange(v)) => {
                panic!("from_order: element {v} out of range for n={n}")
            }
            Err(InverseError::Duplicate(v)) => panic!("from_order: element {v} appears twice"),
        };
        Self { order, rank }
    }

    /// Builds a permutation from the element-to-position map `rank`.
    ///
    /// # Panics
    /// Panics if `rank` is not a permutation of `0..rank.len()`.
    pub fn from_rank(rank: Vec<u32>) -> Self {
        let n = rank.len();
        let order = match par_validated_inverse(&rank) {
            Ok(order) => order,
            Err(InverseError::OutOfRange(pos)) => {
                panic!("from_rank: position {pos} out of range for n={n}")
            }
            Err(InverseError::Duplicate(pos)) => panic!("from_rank: position {pos} assigned twice"),
        };
        Self { order, rank }
    }

    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let order: Vec<u32> = (0..n as u32).collect();
        Self {
            rank: order.clone(),
            order,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the permutation is over the empty set.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The element at position `pos` (0 = highest priority / earliest).
    #[inline]
    pub fn element_at(&self, pos: usize) -> u32 {
        self.order[pos]
    }

    /// The position (priority rank; smaller = earlier) of element `v`.
    #[inline]
    pub fn rank_of(&self, v: u32) -> u32 {
        self.rank[v as usize]
    }

    /// Position-to-element view (`order`).
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Element-to-position view (`rank`).
    pub fn rank(&self) -> &[u32] {
        &self.rank
    }

    /// Returns true if element `a` comes before (has higher priority than) `b`.
    #[inline]
    pub fn precedes(&self, a: u32, b: u32) -> bool {
        self.rank[a as usize] < self.rank[b as usize]
    }

    /// The first `k` elements of the order — the "δ-prefix" of the paper when
    /// `k = ⌈δ·n⌉`.
    pub fn prefix(&self, k: usize) -> &[u32] {
        &self.order[..k.min(self.order.len())]
    }

    /// The inverse permutation (swaps the roles of order and rank).
    pub fn inverse(&self) -> Self {
        Self {
            order: self.rank.clone(),
            rank: self.order.clone(),
        }
    }

    /// Verifies the internal bijection invariant; used by tests and
    /// debug assertions.
    pub fn validate(&self) -> bool {
        if self.order.len() != self.rank.len() {
            return false;
        }
        self.order
            .iter()
            .enumerate()
            .all(|(pos, &v)| (v as usize) < self.rank.len() && self.rank[v as usize] == pos as u32)
    }
}

/// A validation failure detected by [`par_validated_inverse`].
enum InverseError {
    /// A value `>= n` was found.
    OutOfRange(u32),
    /// A value appeared twice.
    Duplicate(u32),
}

/// Below this length the inverse is built with the plain sequential scatter;
/// the parallel version pays three passes of setup that only win above it.
const INVERSE_SEQUENTIAL_CUTOFF: usize = 1 << 15;

/// Computes the inverse of a permutation given as `values` (so
/// `out[values[i]] = i`), validating that `values` really is a permutation of
/// `0..n`. Returns the offending value otherwise.
///
/// The parallel path replaces the serial O(n) rank-build tail that used to
/// follow the parallel key sort in permutation construction. It is one
/// counting-sort-style pass, in the same safe disjoint-sub-slice pattern as
/// `sort/radix.rs`:
///
/// 1. the input is split into blocks; each block histograms its values into
///    contiguous *value ranges* (one per bucket) and reports any
///    out-of-range value;
/// 2. a scratch array of `(value, position)` pairs is carved into disjoint
///    per-(bucket, block) segments — the exclusive scan of the count matrix
///    realized as sub-slices — and each block scatters its pairs in order;
/// 3. each bucket owns a disjoint `bucket_width`-wide sub-slice of the
///    output; it replays its (now contiguous) pairs, writing `position` at
///    `value - bucket_start` and flagging a slot written twice as a
///    duplicate.
///
/// No task ever writes another task's slots, so the pass needs no
/// synchronization and no `unsafe`, and the output is identical at every
/// thread count.
fn par_validated_inverse(values: &[u32]) -> Result<Vec<u32>, InverseError> {
    let n = values.len();
    if n < INVERSE_SEQUENTIAL_CUTOFF {
        let mut out = vec![u32::MAX; n];
        for (pos, &v) in values.iter().enumerate() {
            if (v as usize) >= n {
                return Err(InverseError::OutOfRange(v));
            }
            if out[v as usize] != u32::MAX {
                return Err(InverseError::Duplicate(v));
            }
            out[v as usize] = pos as u32;
        }
        return Ok(out);
    }

    let num_buckets = rayon::current_num_threads().saturating_mul(4).max(1);
    let bucket_width = n.div_ceil(num_buckets);
    let num_buckets = n.div_ceil(bucket_width);
    let in_ranges = blocks(n, INVERSE_SEQUENTIAL_CUTOFF / 4, num_buckets);

    // Phase 1: per-block value-range histograms + out-of-range detection.
    let histograms: Vec<(Vec<usize>, Option<u32>)> =
        par_map_blocks(in_ranges.clone(), &|r: std::ops::Range<usize>| {
            let mut counts = vec![0usize; num_buckets];
            let mut bad = None;
            for &v in &values[r] {
                if (v as usize) < n {
                    counts[v as usize / bucket_width] += 1;
                } else if bad.is_none() {
                    bad = Some(v);
                }
            }
            (counts, bad)
        });
    if let Some(v) = histograms.iter().find_map(|(_, bad)| *bad) {
        return Err(InverseError::OutOfRange(v));
    }

    // Phase 2: carve a (value, position) scratch array into disjoint
    // per-(bucket, block) segments, bucket-major, and scatter in parallel.
    let mut scratch: Vec<(u32, u32)> = vec![(0, 0); n];
    let mut segments: Vec<Vec<&mut [(u32, u32)]>> = (0..in_ranges.len())
        .map(|_| Vec::with_capacity(num_buckets))
        .collect();
    let mut rest = scratch.as_mut_slice();
    for bucket in 0..num_buckets {
        for (block, (counts, _)) in histograms.iter().enumerate() {
            let (seg, tail) = rest.split_at_mut(counts[bucket]);
            segments[block].push(seg);
            rest = tail;
        }
    }
    debug_assert!(rest.is_empty());
    type ScatterTask<'s> = (std::ops::Range<usize>, Vec<&'s mut [(u32, u32)]>);
    let tasks: Vec<ScatterTask<'_>> = in_ranges.into_iter().zip(segments).collect();
    par_map_blocks(tasks, &|(r, mut segs): ScatterTask<'_>| {
        let mut cursor = vec![0usize; num_buckets];
        for pos in r {
            let v = values[pos];
            let b = v as usize / bucket_width;
            segs[b][cursor[b]] = (v, pos as u32);
            cursor[b] += 1;
        }
    });

    // Phase 3: every bucket writes its own value range of the output.
    type BucketTask<'s> = (usize, &'s [(u32, u32)], &'s mut [u32]);
    let mut out = vec![u32::MAX; n];
    let mut bucket_tasks: Vec<BucketTask<'_>> = Vec::with_capacity(num_buckets);
    {
        let mut pairs_rest: &[(u32, u32)] = &scratch;
        let mut out_rest = out.as_mut_slice();
        for bucket in 0..num_buckets {
            let bucket_len: usize = histograms.iter().map(|(c, _)| c[bucket]).sum();
            let (pairs, pt) = pairs_rest.split_at(bucket_len);
            pairs_rest = pt;
            let width = bucket_width.min(out_rest.len());
            let (slots, ot) = out_rest.split_at_mut(width);
            out_rest = ot;
            bucket_tasks.push((bucket * bucket_width, pairs, slots));
        }
    }
    let duplicates: Vec<Option<u32>> =
        par_map_blocks(bucket_tasks, &|(base, pairs, slots): BucketTask<'_>| {
            let mut dup = None;
            for &(v, pos) in pairs {
                let slot = v as usize - base;
                if slots[slot] != u32::MAX && dup.is_none() {
                    dup = Some(v);
                }
                slots[slot] = pos;
            }
            dup
        });
    if let Some(v) = duplicates.into_iter().flatten().next() {
        return Err(InverseError::Duplicate(v));
    }
    Ok(out)
}

/// Uniformly random permutation of `0..n` via Fisher–Yates with a
/// ChaCha8 RNG seeded by `seed`.
pub fn random_permutation(n: usize, seed: u64) -> Permutation {
    assert!(
        n <= u32::MAX as usize,
        "random_permutation: n too large for u32 ids"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);
    Permutation::from_order(order)
}

/// Deterministic parallel random permutation of `0..n`.
///
/// Each element is keyed with `hash64(seed, element)` and the `(key, element)`
/// pairs are sorted by key with the parallel LSD radix sort
/// ([`sort_by_key_parallel`]); since the input is generated in element order
/// and the sort is stable, key collisions resolve to the lower element —
/// the same `(key, element)` order as before, without a comparison sort.
/// The result is independent of the number of threads.
pub fn par_random_permutation(n: usize, seed: u64) -> Permutation {
    assert!(
        n <= u32::MAX as usize,
        "par_random_permutation: n too large for u32 ids"
    );
    let mut keyed: Vec<(u64, u32)> = (0..n as u32)
        .into_par_iter()
        .map(|v| (hash64(seed, v as u64), v))
        .collect();
    sort_by_key_parallel(&mut keyed, |&(k, _)| k);
    let order: Vec<u32> = keyed.into_par_iter().map(|(_, v)| v).collect();
    Permutation::from_order(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(10);
        assert!(p.validate());
        for i in 0..10u32 {
            assert_eq!(p.rank_of(i), i);
            assert_eq!(p.element_at(i as usize), i);
        }
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.validate());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn from_order_and_from_rank_agree() {
        let order = vec![2u32, 0, 3, 1];
        let p = Permutation::from_order(order.clone());
        let q = Permutation::from_rank(p.rank().to_vec());
        assert_eq!(p, q);
        assert!(p.validate());
    }

    #[test]
    fn inverse_is_involution() {
        let p = random_permutation(100, 5);
        assert_eq!(p.inverse().inverse(), p);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn from_order_rejects_duplicates() {
        Permutation::from_order(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_order_rejects_out_of_range() {
        Permutation::from_order(vec![0, 5, 1]);
    }

    #[test]
    fn parallel_rank_build_matches_sequential_scatter() {
        // Well above INVERSE_SEQUENTIAL_CUTOFF: exercises the blocked
        // inverse-scatter. validate() checks the full bijection.
        let p = par_random_permutation(200_000, 21);
        assert!(p.validate());
        let q = Permutation::from_rank(p.rank().to_vec());
        assert_eq!(p, q);
        // The parallel path must agree with the sequential scatter exactly.
        let order = p.order().to_vec();
        let mut expected = vec![u32::MAX; order.len()];
        for (pos, &v) in order.iter().enumerate() {
            expected[v as usize] = pos as u32;
        }
        assert_eq!(p.rank(), &expected[..]);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn from_order_rejects_duplicates_above_parallel_cutoff() {
        let mut order: Vec<u32> = (0..100_000).collect();
        order[99_999] = 5;
        Permutation::from_order(order);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_order_rejects_out_of_range_above_parallel_cutoff() {
        let mut order: Vec<u32> = (0..100_000).collect();
        order[12_345] = 100_000;
        Permutation::from_order(order);
    }

    #[test]
    fn random_permutation_is_permutation() {
        let p = random_permutation(1000, 42);
        assert!(p.validate());
        let mut seen = vec![false; 1000];
        for pos in 0..1000 {
            seen[p.element_at(pos) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_permutation_deterministic_in_seed() {
        assert_eq!(random_permutation(500, 7), random_permutation(500, 7));
        assert_ne!(random_permutation(500, 7), random_permutation(500, 8));
    }

    #[test]
    fn par_random_permutation_is_valid_and_deterministic() {
        let a = par_random_permutation(10_000, 3);
        let b = par_random_permutation(10_000, 3);
        assert!(a.validate());
        assert_eq!(a, b);
        assert_ne!(a, par_random_permutation(10_000, 4));
    }

    #[test]
    fn par_random_permutation_spreads_elements() {
        // Sanity: the permutation should not be close to the identity.
        let p = par_random_permutation(10_000, 9);
        let fixed = (0..10_000u32).filter(|&v| p.rank_of(v) == v).count();
        assert!(fixed < 50, "too many fixed points: {fixed}");
    }

    #[test]
    fn prefix_returns_earliest_elements() {
        let p = random_permutation(100, 1);
        let pre = p.prefix(10);
        assert_eq!(pre.len(), 10);
        for (pos, &v) in pre.iter().enumerate() {
            assert_eq!(p.rank_of(v) as usize, pos);
        }
        // Prefix longer than n is clamped.
        assert_eq!(p.prefix(1000).len(), 100);
    }

    #[test]
    fn precedes_is_consistent_with_ranks() {
        let p = random_permutation(50, 2);
        for a in 0..50u32 {
            for b in 0..50u32 {
                assert_eq!(p.precedes(a, b), p.rank_of(a) < p.rank_of(b));
            }
        }
    }

    proptest! {
        #[test]
        fn prop_random_permutation_valid(n in 0usize..2000, seed in any::<u64>()) {
            let p = random_permutation(n, seed);
            prop_assert!(p.validate());
            prop_assert_eq!(p.len(), n);
        }

        #[test]
        fn prop_par_permutation_valid(n in 0usize..5000, seed in any::<u64>()) {
            let p = par_random_permutation(n, seed);
            prop_assert!(p.validate());
            prop_assert_eq!(p.len(), n);
        }
    }
}
