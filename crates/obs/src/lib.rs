//! # greedy-obs
//!
//! Dependency-free observability primitives for the serving stack: atomic
//! [`Counter`]s and [`Gauge`]s, a lock-free log-bucketed [`Histogram`] with
//! p50/p90/p99/max snapshots, a [`Registry`] with deterministic
//! Prometheus-style text exposition (mergeable across shards via
//! [`Registry::merge`]), a [`FlightRecorder`] ring that keeps the last K
//! structured records (the server stores one per-round commit timeline in
//! it), and an [`EventJournal`] ring of typed, timestamped
//! rare-but-diagnostic events (arena rebuilds, WAL checkpoints, fsync
//! stalls, subscriber resyncs).
//!
//! Design rules, in the same spirit as `greedy_server`:
//!
//! * **Pure `std`.** No shims, no third-party crates — this crate can sit
//!   under the serving layer without widening its dependency surface.
//! * **Lock-free hot path.** Recording into a counter, gauge, or histogram
//!   is a handful of relaxed atomic RMWs; no recording call ever takes a
//!   lock. The registry's mutex guards *registration and rendering* only —
//!   call sites hold `Arc`s to their instruments and never touch it again.
//! * **Compile-out switch.** Building with the `obs-off` feature turns every
//!   recording call into a no-op (`ENABLED` is `false`), so instrumented
//!   code can measure its own observability overhead honestly.
//!
//! Counts and sums are exact: every `record` is a `fetch_add`, so once the
//! recording threads are quiesced a snapshot's `count`/`sum` equal the
//! number/total of calls regardless of interleaving. Quantiles are read from
//! log-spaced bucket upper bounds and are conservative overestimates by at
//! most 1/8 relative error (see [`Histogram`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hist;
pub mod journal;
pub mod recorder;
pub mod registry;

pub use hist::{Histogram, HistogramSnapshot};
pub use journal::{Event, EventJournal, EventKind};
pub use recorder::FlightRecorder;
pub use registry::Registry;

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// `false` when the crate was built with the `obs-off` feature: every
/// recording call below compiles to a no-op, and instrumentation guarded by
/// `if greedy_obs::ENABLED` folds away entirely (including its
/// `Instant::now()` reads).
pub const ENABLED: bool = cfg!(not(feature = "obs-off"));

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if !ENABLED {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time level that can move both ways (subscriber count, staged
/// depth). Signed so transient dips below a racy zero cannot wrap.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        if !ENABLED {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        if !ENABLED {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_and_gauges_count() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), if ENABLED { 5 } else { 0 });
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), if ENABLED { 1 } else { 0 });
        g.set(-3);
        assert_eq!(g.get(), if ENABLED { -3 } else { 0 });
    }

    #[test]
    fn concurrent_counter_totals_are_exact() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), if ENABLED { 80_000 } else { 0 });
    }
}
