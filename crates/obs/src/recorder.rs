//! Flight recorder: a bounded ring of the last K structured records.
//!
//! The server pushes one per-round commit timeline per committed round; the
//! ring keeps the most recent K so a post-mortem (or `serve_load --metrics`)
//! can see exactly where the last few rounds spent their time without
//! unbounded memory growth.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A fixed-capacity ring of the most recent records.
#[derive(Debug)]
pub struct FlightRecorder<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T: Clone> FlightRecorder<T> {
    /// A recorder keeping the last `capacity` records (capacity 0 keeps
    /// none and makes `push` a no-op).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Appends a record, evicting the oldest once full.
    pub fn push(&self, record: T) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn recent(&self) -> Vec<T> {
        self.lock().iter().cloned().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_the_last_k_in_order() {
        let r = FlightRecorder::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.recent(), vec![2, 3, 4]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let r = FlightRecorder::new(0);
        r.push(1);
        assert!(r.recent().is_empty());
    }

    #[test]
    fn concurrent_push_and_recent_stress() {
        // Several pushers race several readers: every `recent()` view must
        // be internally consistent (strictly increasing per pusher, never
        // over capacity), and once the pushers are joined the ring holds
        // exactly the last `capacity` records pushed.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        const CAP: usize = 64;
        const PUSHERS: u64 = 4;
        const PER: u64 = 2_000;
        let r = Arc::new(FlightRecorder::new(CAP));
        let stop = Arc::new(AtomicBool::new(false));

        let readers: Vec<_> = (0..3)
            .map(|_| {
                let r = r.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut views = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let view: Vec<(u64, u64)> = r.recent();
                        assert!(view.len() <= CAP, "ring exceeded capacity");
                        // Per-pusher sequence numbers must come out strictly
                        // increasing: eviction is oldest-first, so a pusher's
                        // surviving records keep their push order.
                        for p in 0..PUSHERS {
                            let seqs: Vec<u64> = view
                                .iter()
                                .filter(|&&(id, _)| id == p)
                                .map(|&(_, s)| s)
                                .collect();
                            assert!(
                                seqs.windows(2).all(|w| w[0] < w[1]),
                                "pusher {p} order torn: {seqs:?}"
                            );
                        }
                        views += 1;
                    }
                    views
                })
            })
            .collect();
        let pushers: Vec<_> = (0..PUSHERS)
            .map(|p| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for s in 0..PER {
                        r.push((p, s));
                    }
                })
            })
            .collect();
        for t in pushers {
            t.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for t in readers {
            assert!(t.join().unwrap() > 0, "reader never observed the ring");
        }

        let last = r.recent();
        assert_eq!(last.len(), CAP, "quiesced ring holds exactly capacity");
        // The globally last push is some pusher's final record; eviction
        // only ever removes older entries, so it must have survived.
        assert!(
            last.iter().any(|&(_, s)| s == PER - 1),
            "the final record was evicted"
        );
    }
}
