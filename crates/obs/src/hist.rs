//! Lock-free log-bucketed histograms.
//!
//! A [`Histogram`] holds a fixed array of atomic bucket counters covering the
//! whole `u64` range: values below 8 get exact buckets, and every octave
//! above is split into 8 logarithmic sub-buckets, so any bucket's upper bound
//! exceeds its lower bound by at most a factor of 9/8. Recording is four
//! relaxed atomic RMWs (bucket, count, sum, max/min) — no locks, no
//! allocation — and a [`HistogramSnapshot`] reads the buckets into plain
//! memory for quantile queries.
//!
//! Quantiles are reported as the *upper bound* of the bucket holding the
//! target rank (clamped to the recorded maximum): for any recorded
//! distribution, `quantile(q)` is `>=` the true rank-`q` value and at most
//! `1/8` above it in relative terms — the property the proptest in this
//! module pins down against a sorted-vector oracle.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket bits per octave: 8 sub-buckets, ≤ 12.5% relative bucket width.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Exact buckets `0..SUB`, then 8 sub-buckets for each of the 61 octaves
/// `2^3..=2^63`: covers every `u64`.
const BUCKETS: usize = (SUB as usize) + 61 * (SUB as usize);

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        (((msb - SUB_BITS + 1) as usize) << SUB_BITS) | ((v >> (msb - SUB_BITS)) as usize & 7)
    }
}

/// Inclusive `(lo, hi)` value range of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB as usize {
        (i as u64, i as u64)
    } else {
        let shift = (i >> SUB_BITS) as u32 - 1;
        let lo = (SUB + (i as u64 & 7)) << shift;
        (lo, lo + ((1u64 << shift) - 1))
    }
}

/// A lock-free histogram of `u64` samples (latencies in µs, round counts,
/// page counts, ...).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// `u64::MAX` until the first record.
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one sample. Lock-free: four relaxed atomic RMWs.
    pub fn record(&self, v: u64) {
        if !crate::ENABLED {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Records a `Duration` in whole microseconds.
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Folds `other`'s recorded samples into this histogram, bucket-wise:
    /// every bucket count is added, `count`/`sum` are added, and `max`/`min`
    /// are widened. Because every [`Histogram`] shares the same fixed bucket
    /// layout, the merged histogram is exactly what recording both sample
    /// streams into one instrument would have produced — the primitive
    /// per-shard registries need ([`crate::Registry::merge`]).
    ///
    /// Reads `other` with relaxed loads: exact once its recording threads are
    /// quiesced, may miss a few in-flight samples otherwise (never corrupts).
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(&other.buckets) {
            let c = src.load(Ordering::Relaxed);
            if c > 0 {
                dst.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        // `min` idles at `u64::MAX`, so merging an empty histogram is a no-op.
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Samples recorded so far (exact).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets and totals. Taken with relaxed
    /// loads: exact once recording threads are quiesced; during concurrent
    /// recording it may tear by a few in-flight samples (never corrupts).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: match self.min.load(Ordering::Relaxed) {
                u64::MAX => 0,
                m => m,
            },
        }
    }
}

/// A point-in-time view of a [`Histogram`], with quantile queries.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding rank `round(q * (count - 1))`, clamped to the recorded max.
    /// `>=` the true rank value, and at most 1/8 above it (relative); 0 when
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > target {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets, as `(lo, hi, count)` with inclusive value
    /// bounds, in ascending value order — what `serve_load --metrics` prints
    /// as the repair-rounds histogram.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn bucket_index_and_bounds_agree_across_the_range() {
        let probes: Vec<u64> = (0..200)
            .chain((3..64).flat_map(|s| {
                let base = 1u64 << s;
                [base - 1, base, base + 1, base + (base >> 1)]
            }))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        for v in probes {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
            // Relative bucket width is bounded by 1/8.
            assert!(hi - lo <= lo.max(1) / SUB + 1, "bucket {i} too wide");
        }
        // Bucket bounds tile the range contiguously.
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_bounds(i).1 + 1, bucket_bounds(i + 1).0);
        }
        assert_eq!(bucket_bounds(0).0, 0);
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.quantile(0.5), 0);
        assert!(s.nonzero_buckets().is_empty());
    }

    proptest! {
        /// The satellite's quantile error bound: against a sorted-vector
        /// oracle, every reported quantile is >= the true rank value and at
        /// most one bucket width (1/8 relative) above it.
        #[test]
        fn quantiles_match_sorted_oracle_within_bucket_error(
            values in proptest::collection::vec(0u64..1_000_000, 1..400),
            q_pcts in proptest::collection::vec(0u32..101, 1..8),
        ) {
            if crate::ENABLED {
                let h = Histogram::new();
                for &v in &values {
                    h.record(v);
                }
                let mut sorted = values.clone();
                sorted.sort_unstable();
                let snap = h.snapshot();
                prop_assert_eq!(snap.count, values.len() as u64);
                prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
                prop_assert_eq!(snap.min, *sorted.first().unwrap());
                prop_assert_eq!(snap.max, *sorted.last().unwrap());
                for &pct in &q_pcts {
                    let q = pct as f64 / 100.0;
                    let truth = sorted[((sorted.len() - 1) as f64 * q).round() as usize];
                    let got = snap.quantile(q);
                    prop_assert!(got >= truth, "q={} reported {} < true {}", q, got, truth);
                    prop_assert!(
                        got <= truth + truth / SUB + 1,
                        "q={} reported {} above error bound for true {}",
                        q, got, truth
                    );
                }
            }
        }
    }

    proptest! {
        /// The `merge_from` satellite: merging two independently recorded
        /// histograms must be indistinguishable from recording the union
        /// stream into one — identical buckets/totals, and therefore every
        /// merged quantile equals the union stream's within one log bucket
        /// (the same 1/8 relative bound a single histogram carries).
        #[test]
        fn merged_quantiles_equal_union_stream_within_bucket_error(
            left in proptest::collection::vec(0u64..1_000_000, 0..200),
            right in proptest::collection::vec(0u64..1_000_000, 1..200),
            q_pcts in proptest::collection::vec(0u32..101, 1..8),
        ) {
            if crate::ENABLED {
                let a = Histogram::new();
                let b = Histogram::new();
                for &v in &left {
                    a.record(v);
                }
                for &v in &right {
                    b.record(v);
                }
                a.merge_from(&b);
                let union_h = Histogram::new();
                let mut union: Vec<u64> = left.iter().chain(&right).copied().collect();
                for &v in &union {
                    union_h.record(v);
                }
                union.sort_unstable();
                let merged = a.snapshot();
                let oracle = union_h.snapshot();
                // Bucket-for-bucket identical to the union recording...
                prop_assert_eq!(merged.nonzero_buckets(), oracle.nonzero_buckets());
                prop_assert_eq!(
                    (merged.count, merged.sum, merged.min, merged.max),
                    (oracle.count, oracle.sum, oracle.min, oracle.max)
                );
                // ...hence every quantile is within one log bucket of the
                // union stream's true rank value.
                for &pct in &q_pcts {
                    let q = pct as f64 / 100.0;
                    let truth = union[((union.len() - 1) as f64 * q).round() as usize];
                    let got = merged.quantile(q);
                    prop_assert!(got >= truth, "q={} merged {} < true {}", q, got, truth);
                    prop_assert!(
                        got <= truth + truth / SUB + 1,
                        "q={} merged {} above one-bucket bound for true {}",
                        q, got, truth
                    );
                }
            }
        }
    }

    #[test]
    fn merge_from_empty_is_identity() {
        let a = Histogram::new();
        a.record(7);
        a.record(900);
        let before = a.snapshot();
        a.merge_from(&Histogram::new());
        let after = a.snapshot();
        assert_eq!(before.nonzero_buckets(), after.nonzero_buckets());
        assert_eq!(
            (before.count, before.sum, before.min, before.max),
            (after.count, after.sum, after.min, after.max)
        );
    }

    #[test]
    fn concurrent_recording_counts_are_deterministic() {
        // The satellite's determinism check: whatever the interleaving, the
        // per-bucket counts, total count, and sum equal the sequential
        // totals once the recording threads are joined.
        let h = Arc::new(Histogram::new());
        const THREADS: u64 = 8;
        const PER: u64 = 5_000;
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..PER {
                        // Same multiset for every thread.
                        h.record(i % 1000);
                        let _ = t;
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let snap = h.snapshot();
        if !crate::ENABLED {
            assert_eq!(snap.count, 0);
            return;
        }
        assert_eq!(snap.count, THREADS * PER);
        assert_eq!(snap.sum, THREADS * (0..PER).map(|i| i % 1000).sum::<u64>());
        // Compare against a sequentially built oracle bucket-for-bucket.
        let oracle = Histogram::new();
        for _ in 0..THREADS {
            for i in 0..PER {
                oracle.record(i % 1000);
            }
        }
        assert_eq!(snap.nonzero_buckets(), oracle.snapshot().nonzero_buckets());
        assert_eq!((snap.min, snap.max), (0, 999));
    }
}
