//! Process-wide metric registry with Prometheus-style text exposition.
//!
//! The registry's mutex guards registration and rendering only: call sites
//! register once at startup, hold the returned `Arc`s, and record through
//! them without ever touching the registry again. `render_text` walks a
//! `BTreeMap`, so the exposition is deterministic — two renders of the same
//! quiesced registry are byte-for-byte identical, which is what the server's
//! "TCP `Request::Metrics` equals `ServerHandle::metrics_text()`" check
//! relies on.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;
use crate::{Counter, Gauge};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of counters, gauges, and histograms.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = match self.metrics.lock() {
            Ok(m) => m.len(),
            Err(p) => p.get_ref().len(),
        };
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        // Registration and rendering never panic while holding the lock;
        // recover the map anyway rather than cascade.
        match self.metrics.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Registered metric names, in render order.
    pub fn names(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// Folds `other`'s instruments into this registry by name: counters
    /// **sum**, gauges take the **max** level, histograms merge bucket-wise
    /// ([`Histogram::merge_from`]). A name absent here is registered first,
    /// so merging into a fresh registry copies `other` — the per-shard
    /// exposition path the ROADMAP's sharding item calls for: each shard
    /// keeps its own registry and the scrape merges them all into one.
    ///
    /// `other`'s entries are snapshotted before any self-registration, so the
    /// two registries' locks are never held at once (merging in both
    /// directions concurrently cannot deadlock).
    ///
    /// # Panics
    /// If a name is registered with different types in the two registries.
    pub fn merge(&self, other: &Registry) {
        let entries: Vec<(String, Metric)> = other
            .lock()
            .iter()
            .map(|(name, metric)| {
                let clone = match metric {
                    Metric::Counter(c) => Metric::Counter(c.clone()),
                    Metric::Gauge(g) => Metric::Gauge(g.clone()),
                    Metric::Histogram(h) => Metric::Histogram(h.clone()),
                };
                (name.clone(), clone)
            })
            .collect();
        for (name, metric) in entries {
            match metric {
                Metric::Counter(src) => self.counter(&name).add(src.get()),
                Metric::Gauge(src) => {
                    let dst = self.gauge(&name);
                    dst.set(dst.get().max(src.get()));
                }
                Metric::Histogram(src) => self.histogram(&name).merge_from(&src),
            }
        }
    }

    /// Renders every metric in Prometheus text-exposition style, sorted by
    /// name. Counters and gauges emit one `# TYPE` line and one value line;
    /// histograms emit `_count`/`_sum`/`_min`/`_max` plus
    /// `{quantile="0.5"|"0.9"|"0.99"}` lines read from a point-in-time
    /// snapshot.
    pub fn render_text(&self) -> String {
        let m = self.lock();
        let mut out = String::new();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let _ = writeln!(out, "{name}_count {}", s.count);
                    let _ = writeln!(out, "{name}_sum {}", s.sum);
                    let _ = writeln!(out, "{name}_min {}", s.min);
                    let _ = writeln!(out, "{name}_max {}", s.max);
                    for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                        let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", s.quantile(q));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_instrument() {
        let r = Registry::new();
        let a = r.counter("requests_total");
        let b = r.counter("requests_total");
        a.add(3);
        assert_eq!(b.get(), if crate::ENABLED { 3 } else { 0 });
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn merge_sums_counters_maxes_gauges_and_merges_histograms() {
        if !crate::ENABLED {
            return;
        }
        let a = Registry::new();
        let b = Registry::new();
        a.counter("rounds_total").add(3);
        b.counter("rounds_total").add(4);
        b.counter("only_in_b_total").add(9);
        a.gauge("subscribers").set(2);
        b.gauge("subscribers").set(5);
        a.histogram("latency_us").record(10);
        b.histogram("latency_us").record(1000);

        a.merge(&b);
        assert_eq!(a.counter("rounds_total").get(), 7, "counters sum");
        assert_eq!(a.counter("only_in_b_total").get(), 9, "absent names copy");
        assert_eq!(a.gauge("subscribers").get(), 5, "gauges take the max");
        let h = a.histogram("latency_us").snapshot();
        assert_eq!((h.count, h.min, h.max), (2, 10, 1000));
        // `b` is untouched.
        assert_eq!(b.counter("rounds_total").get(), 4);

        // Merging two shards into a fresh registry (the sharded-scrape
        // shape) renders one combined exposition deterministically.
        let combined = Registry::new();
        combined.merge(&a);
        assert_eq!(combined.render_text(), a.render_text());
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn merge_type_mismatch_panics() {
        // Registration (unlike recording) is not compiled out, so the
        // mismatch panics in obs-off builds too.
        let a = Registry::new();
        let b = Registry::new();
        let _ = a.counter("x");
        let _ = b.gauge("x");
        a.merge(&b);
    }

    /// The satellite's text-exposition roundtrip: render, parse the plain
    /// value lines back, and check every registered instrument appears with
    /// the value it holds — then render again and require byte equality.
    #[test]
    fn text_exposition_roundtrips() {
        let r = Registry::new();
        r.counter("b_rounds_total").add(7);
        r.gauge("a_subscribers").set(2);
        let h = r.histogram("c_latency_us");
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }

        let text = r.render_text();
        assert_eq!(text, r.render_text(), "rendering must be deterministic");

        let mut parsed = BTreeMap::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.split_once(' ').expect("value line");
            parsed.insert(name.to_string(), value.parse::<i64>().unwrap());
        }
        let on = crate::ENABLED;
        assert_eq!(parsed["b_rounds_total"], if on { 7 } else { 0 });
        assert_eq!(parsed["a_subscribers"], if on { 2 } else { 0 });
        assert_eq!(parsed["c_latency_us_count"], if on { 4 } else { 0 });
        assert_eq!(parsed["c_latency_us_sum"], if on { 1060 } else { 0 });
        assert_eq!(parsed["c_latency_us_min"], if on { 10 } else { 0 });
        assert_eq!(parsed["c_latency_us_max"], if on { 1000 } else { 0 });
        if on {
            // Rank-0.5 of [10, 20, 30, 1000] is 30, whose bucket is [30, 31].
            let p50 = parsed["c_latency_us{quantile=\"0.5\"}"];
            assert!((30..=31).contains(&p50), "p50 {p50} outside bucket bound");
            assert_eq!(parsed["c_latency_us{quantile=\"0.99\"}"], 1000);
        }
        // Names render sorted, so the gauge (a_) precedes the counter (b_).
        let a = text.find("a_subscribers").unwrap();
        let b = text.find("b_rounds_total").unwrap();
        assert!(a < b);
    }
}
