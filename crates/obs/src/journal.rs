//! Structured event journal: a bounded ring of typed, timestamped
//! rare-but-diagnostic events.
//!
//! Counters tell you *how often* something happened; the journal tells you
//! *when, in what order, and with what parameters* — for transitions rare
//! enough that keeping the individual occurrences is cheap and losing them
//! is expensive: arena rebuilds and relocations, WAL checkpoints and
//! recovery outcomes, fsync stalls, subscriber lag/resync/prune. The server
//! and the engine feed one shared [`EventJournal`]; the `Metrics` exposition
//! appends its rendering as comment lines, and `serve_load --metrics` dumps
//! it next to the metrics text.
//!
//! Rendering is deterministic: an event's line is a pure function of the
//! event (the timestamp is captured at record time, never re-sampled), so
//! two renders of a quiesced journal are byte-for-byte identical — the same
//! property the registry exposition already guarantees.
//!
//! Recording is one short mutex'd ring push plus two atomic reads; the
//! `obs-off` feature compiles every record call into a no-op, like the rest
//! of this crate.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::recorder::FlightRecorder;

/// Default ring capacity: deep enough to cover a long diagnostic window of
/// genuinely rare events, bounded so a pathological event storm (e.g. every
/// round relocating) degrades to losing history, never to growing memory.
pub const EVENT_JOURNAL_CAPACITY: usize = 256;

/// What happened, with the parameters worth keeping.
///
/// Arena reasons are free-form `&'static str` labels supplied by the caller
/// (e.g. `"insert_overflow"`, `"dead_space"`) so this crate stays decoupled
/// from the engine's trigger taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The slack-CSR arena was rebuilt from scratch.
    ArenaRebuild {
        /// Shard whose arena rebuilt (0 for a single-engine run).
        shard: u64,
        /// Trigger label (`"insert_overflow"`, `"dead_space"`, `"shrink"`,
        /// `"initial"`).
        reason: &'static str,
        /// Arena entries after the rebuild (live + slack).
        capacity: u64,
        /// Parallel block tasks the rebuild fanned out.
        tasks: u64,
    },
    /// One vertex segment overflowed and was relocated to the arena tail.
    ArenaRelocation {
        /// The relocated vertex.
        vertex: u64,
        /// Its new segment capacity.
        new_cap: u64,
    },
    /// A WAL checkpoint was written (periodic or final).
    WalCheckpoint {
        /// Round the checkpoint captures.
        round: u64,
    },
    /// A server recovered its state from the WAL at startup.
    WalRecovery {
        /// Round the recovered state is at.
        round: u64,
        /// Log records replayed on top of the checkpoint.
        replayed: u64,
        /// Whether a torn/corrupt log tail was truncated.
        tail_truncated: bool,
    },
    /// A WAL fsync took suspiciously long (see the recorder's threshold).
    WalFsyncStall {
        /// Round whose sync stalled.
        round: u64,
        /// How long the sync took, in microseconds.
        micros: u64,
    },
    /// A subscriber's channel overflowed; it will be resynced.
    FeedLag {
        /// Round whose delta was dropped for that subscriber.
        round: u64,
    },
    /// A subscriber was caught up by a full snapshot stream.
    FeedResync {
        /// Round of the snapshot it was resynced to.
        round: u64,
    },
    /// A disconnected subscriber was pruned from the fan-out.
    FeedPrune {
        /// Round whose publish noticed the disconnect.
        round: u64,
    },
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::ArenaRebuild {
                shard,
                reason,
                capacity,
                tasks,
            } => write!(
                f,
                "arena_rebuild shard={shard} reason={reason} capacity={capacity} tasks={tasks}"
            ),
            EventKind::ArenaRelocation { vertex, new_cap } => {
                write!(f, "arena_relocation vertex={vertex} new_cap={new_cap}")
            }
            EventKind::WalCheckpoint { round } => write!(f, "wal_checkpoint round={round}"),
            EventKind::WalRecovery {
                round,
                replayed,
                tail_truncated,
            } => write!(
                f,
                "wal_recovery round={round} replayed={replayed} tail_truncated={tail_truncated}"
            ),
            EventKind::WalFsyncStall { round, micros } => {
                write!(f, "wal_fsync_stall round={round} micros={micros}")
            }
            EventKind::FeedLag { round } => write!(f, "feed_lag round={round}"),
            EventKind::FeedResync { round } => write!(f, "feed_resync round={round}"),
            EventKind::FeedPrune { round } => write!(f, "feed_prune round={round}"),
        }
    }
}

/// One journal entry: a kind plus when it happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (0-based, never reused): `recent()` returning
    /// seqs 40..=295 tells you 40 older events were evicted.
    pub seq: u64,
    /// Microseconds since the journal was created.
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// The event's deterministic one-line rendering, comment-prefixed so the
    /// metrics-exposition parsers (which read `name value` lines) skip it.
    pub fn render_line(&self) -> String {
        format!(
            "# event seq={} at_us={} {}",
            self.seq, self.at_us, self.kind
        )
    }
}

/// The bounded ring of recent events. Ordinary value, no globals: the server
/// creates one per [`crate::Registry`]-carrying metrics bundle and hands
/// `Arc` clones to every feeder.
#[derive(Debug)]
pub struct EventJournal {
    ring: FlightRecorder<Event>,
    /// Next sequence number (also the total ever recorded).
    seq: AtomicU64,
    epoch: Instant,
}

impl Default for EventJournal {
    fn default() -> Self {
        Self::new(EVENT_JOURNAL_CAPACITY)
    }
}

impl EventJournal {
    /// A journal retaining the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: FlightRecorder::new(capacity),
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Appends one event, stamping its sequence number and timestamp. A
    /// no-op in `obs-off` builds.
    pub fn record(&self, kind: EventKind) {
        if !crate::ENABLED {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.ring.push(Event {
            seq,
            at_us: self.epoch.elapsed().as_micros() as u64,
            kind,
        });
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.ring.recent()
    }

    /// Events ever recorded (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The journal as deterministic text: a header line with the totals,
    /// then one [`Event::render_line`] per retained event, oldest first.
    /// Every line is `#`-prefixed, so the rendering can ride inside a
    /// metrics exposition without confusing `name value` parsers.
    pub fn render_text(&self) -> String {
        let events = self.recent();
        let mut out = format!(
            "# event_journal retained={} total={}\n",
            events.len(),
            self.total_recorded()
        );
        for e in &events {
            out.push_str(&e.render_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_sequenced_and_bounded() {
        let j = EventJournal::new(3);
        for round in 0..5 {
            j.record(EventKind::WalCheckpoint { round });
        }
        if !crate::ENABLED {
            assert!(j.is_empty());
            assert_eq!(j.total_recorded(), 0);
            return;
        }
        assert_eq!(j.total_recorded(), 5);
        let recent = j.recent();
        assert_eq!(recent.len(), 3, "ring keeps the last 3");
        let seqs: Vec<u64> = recent.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert!(
            recent.windows(2).all(|w| w[0].at_us <= w[1].at_us),
            "timestamps are monotone in ring order"
        );
        assert_eq!(recent[2].kind, EventKind::WalCheckpoint { round: 4 });
    }

    #[test]
    fn rendering_is_deterministic_and_comment_prefixed() {
        let j = EventJournal::new(8);
        j.record(EventKind::ArenaRebuild {
            shard: 0,
            reason: "dead_space",
            capacity: 1024,
            tasks: 4,
        });
        j.record(EventKind::WalRecovery {
            round: 41,
            replayed: 7,
            tail_truncated: true,
        });
        j.record(EventKind::FeedLag { round: 12 });
        let text = j.render_text();
        assert_eq!(text, j.render_text(), "rendering must be deterministic");
        assert!(text.lines().all(|l| l.starts_with('#')));
        if crate::ENABLED {
            assert!(text.contains("arena_rebuild shard=0 reason=dead_space capacity=1024 tasks=4"));
            assert!(text.contains("wal_recovery round=41 replayed=7 tail_truncated=true"));
            assert!(text.contains("feed_lag round=12"));
            assert!(text.starts_with("# event_journal retained=3 total=3\n"));
        } else {
            assert_eq!(text, "# event_journal retained=0 total=0\n");
        }
    }

    #[test]
    fn concurrent_recording_never_loses_or_duplicates_seqs() {
        let j = std::sync::Arc::new(EventJournal::new(4096));
        let workers: Vec<_> = (0..4u64)
            .map(|t| {
                let j = j.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        j.record(EventKind::FeedResync {
                            round: t * 1000 + i,
                        });
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        if !crate::ENABLED {
            return;
        }
        assert_eq!(j.total_recorded(), 2000);
        let mut seqs: Vec<u64> = j.recent().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 2000, "every event kept a unique seq");
    }
}
