//! # greedy-graph
//!
//! Graph substrate for the `greedy-parallel` workspace: compact CSR graphs,
//! edge lists, graph generators, line graphs, text I/O, and statistics.
//!
//! The SPAA 2012 paper evaluates its algorithms on two inputs — a sparse
//! uniform random graph (n = 10⁷, m = 5·10⁷) and an R-MAT graph
//! (n = 2²⁴, m = 5·10⁷) with a power-law degree distribution. This crate
//! implements both generators (plus several structured graphs used as
//! adversarial test cases), the conversions between edge lists and CSR form,
//! and the line-graph construction used by the maximal-matching ↔ MIS
//! reduction.
//!
//! ## Representation
//!
//! * [`csr::Graph`] — an undirected graph in compressed-sparse-row form.
//!   Vertices are `u32` ids; each undirected edge `{u, v}` is stored as two
//!   directed arcs. The adjacency of every vertex is sorted, self-loops are
//!   dropped and parallel edges are merged at construction time.
//! * [`edge_list::EdgeList`] — a list of canonical undirected edges
//!   `(min, max)` together with the number of vertices; the form consumed by
//!   the maximal-matching algorithms (edge ids are indices into this list).
//!
//! ```
//! use greedy_graph::gen::random::random_graph;
//!
//! let g = random_graph(1_000, 4_000, 1);
//! assert_eq!(g.num_vertices(), 1_000);
//! assert!(g.num_edges() <= 4_000);
//! assert!(g.validate().is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod csr;
pub mod edge_list;
pub mod gen;
pub mod io;
pub mod line_graph;
pub mod stats;

pub use csr::Graph;
pub use edge_list::EdgeList;
