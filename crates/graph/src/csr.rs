//! Compressed-sparse-row (CSR) undirected graphs.
//!
//! [`Graph`] is the representation the MIS algorithms operate on: a flat
//! offsets array plus a flat neighbor array, the same layout the paper's PBBS
//! implementation uses. Every undirected edge `{u, v}` is stored twice (as the
//! directed arcs `u→v` and `v→u`), adjacencies are sorted, self-loops are
//! dropped and parallel edges merged during construction.

use greedy_prims::pack::par_dedup_adjacent;
use greedy_prims::scan::counts_to_offsets;
use greedy_prims::sort::sort_by_key_parallel;
use rayon::prelude::*;

use crate::edge_list::{Edge, EdgeList};

/// Errors detected by [`Graph::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Offsets array has the wrong length or is not monotone.
    BadOffsets(String),
    /// A neighbor id is out of range.
    NeighborOutOfRange {
        /// The offending vertex.
        vertex: u32,
        /// The out-of-range neighbor value.
        neighbor: u32,
    },
    /// A vertex's adjacency list is not sorted or contains duplicates.
    UnsortedAdjacency(u32),
    /// A self-loop was found.
    SelfLoop(u32),
    /// Arc `u→v` present without its reverse `v→u`.
    Asymmetric {
        /// Source of the unpaired arc.
        u: u32,
        /// Target of the unpaired arc.
        v: u32,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::BadOffsets(msg) => write!(f, "bad offsets: {msg}"),
            GraphError::NeighborOutOfRange { vertex, neighbor } => {
                write!(f, "vertex {vertex} has out-of-range neighbor {neighbor}")
            }
            GraphError::UnsortedAdjacency(v) => {
                write!(f, "adjacency of vertex {v} is not strictly sorted")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at vertex {v}"),
            GraphError::Asymmetric { u, v } => {
                write!(f, "arc {u}->{v} present without its reverse")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected graph in CSR form.
///
/// The adjacency of vertex `v` is `neighbors[offsets[v]..offsets[v+1]]`,
/// sorted in increasing order. The graph is simple (no self-loops, no
/// parallel edges) and symmetric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an arbitrary collection of undirected edges.
    ///
    /// Self-loops are dropped and parallel edges merged. The construction is
    /// parallel (counting sort by source vertex) and deterministic.
    pub fn from_edges(num_vertices: usize, edges: &[Edge]) -> Self {
        assert!(
            num_vertices <= u32::MAX as usize,
            "Graph::from_edges: too many vertices for u32 ids"
        );
        // Expand each undirected edge into its two arcs, skipping self-loops.
        let mut arcs: Vec<(u32, u32)> = edges
            .par_iter()
            .filter(|e| !e.is_self_loop())
            .flat_map_iter(|e| [(e.u, e.v), (e.v, e.u)])
            .collect();
        // Sorting arcs lexicographically groups them by source and sorts each
        // adjacency, and makes deduplication a linear pass. The parallel LSD
        // radix sort on the packed `source << 32 | target` key skips digit
        // passes above the vertex-id width, so this costs ~2·⌈log₂n/11⌉
        // linear passes rather than a comparison sort.
        sort_by_key_parallel(&mut arcs, |&(u, v)| ((u as u64) << 32) | v as u64);
        let arcs = par_dedup_adjacent(arcs);

        let mut offsets = vec![0usize; num_vertices + 1];
        for &(u, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let neighbors: Vec<u32> = arcs.into_par_iter().map(|(_, v)| v).collect();
        Self { offsets, neighbors }
    }

    /// Builds a graph from an [`EdgeList`].
    pub fn from_edge_list(edges: &EdgeList) -> Self {
        Self::from_edges(edges.num_vertices(), edges.edges())
    }

    /// Builds a graph directly from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays fail [`Graph::validate`]. Intended for tests and
    /// for loading graphs produced by [`crate::io`].
    pub fn from_raw_csr(offsets: Vec<usize>, neighbors: Vec<u32>) -> Self {
        let g = Self { offsets, neighbors };
        if let Err(e) = g.validate() {
            panic!("Graph::from_raw_csr: invalid CSR input: {e}");
        }
        g
    }

    /// Crate-internal constructor that skips validation; callers must
    /// validate separately (see `Graph::from_raw_csr_checked` in `io`).
    pub(crate) fn from_parts_unchecked(offsets: Vec<usize>, neighbors: Vec<u32>) -> Self {
        Self { offsets, neighbors }
    }

    /// An edgeless graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Number of directed arcs (`2 * num_edges()`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.neighbors.len()
    }

    /// The degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The sorted neighbors of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// True if `{u, v}` is an edge (binary search on the smaller adjacency).
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as u32)
            .into_par_iter()
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = u32> + '_ {
        0..self.num_vertices() as u32
    }

    /// All undirected edges in canonical `(u < v)` lexicographic order.
    pub fn to_edge_list(&self) -> EdgeList {
        let edges: Vec<Edge> = (0..self.num_vertices() as u32)
            .into_par_iter()
            .flat_map_iter(|u| {
                self.neighbors(u)
                    .iter()
                    .copied()
                    .filter(move |&v| u < v)
                    .map(move |v| Edge::new(u, v))
            })
            .collect();
        EdgeList::new(self.num_vertices(), edges)
    }

    /// Per-vertex adjacency lists, cloned out of the CSR arrays. This is the
    /// mutable form the batch-dynamic engine edits between snapshots.
    pub fn to_adjacency_lists(&self) -> Vec<Vec<u32>> {
        (0..self.num_vertices() as u32)
            .into_par_iter()
            .map(|v| self.neighbors(v).to_vec())
            .collect()
    }

    /// Builds a graph directly from already-valid CSR arrays: `offsets` of
    /// length `n + 1` and the concatenated, per-vertex-sorted `neighbors`.
    /// This is the zero-copy path back from flat external layouts (the
    /// batch-dynamic engine's slack-CSR arena compacts straight into these
    /// arrays); full validation runs in debug builds.
    pub fn from_csr_arrays(offsets: Vec<usize>, neighbors: Vec<u32>) -> Self {
        let g = Self { offsets, neighbors };
        debug_assert!(
            g.validate().is_ok(),
            "from_csr_arrays: input violates CSR invariants: {:?}",
            g.validate()
        );
        g
    }

    /// Builds a graph from per-vertex adjacency lists that already satisfy
    /// the CSR invariants: each list strictly sorted, no self-loops, and
    /// symmetric (`w ∈ adj[v] ⟺ v ∈ adj[w]`). This is the fast path back
    /// from the batch-dynamic representation, which maintains those
    /// invariants on every update; full validation runs in debug builds.
    pub fn from_sorted_adjacency(adj: &[Vec<u32>]) -> Self {
        let degrees: Vec<usize> = adj.iter().map(Vec::len).collect();
        let offsets = counts_to_offsets(&degrees);
        let neighbors: Vec<u32> = adj
            .par_iter()
            .flat_map_iter(|list| list.iter().copied())
            .collect();
        let g = Self { offsets, neighbors };
        debug_assert!(
            g.validate().is_ok(),
            "from_sorted_adjacency: input violates CSR invariants: {:?}",
            g.validate()
        );
        g
    }

    /// The CSR offsets array (length `n + 1`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat neighbor array.
    pub fn neighbor_array(&self) -> &[u32] {
        &self.neighbors
    }

    /// The vertex-induced subgraph on `keep`, relabeling kept vertices by
    /// their index in `keep`. Returns the subgraph and the mapping from new
    /// ids to original ids.
    ///
    /// # Panics
    /// Panics if `keep` contains duplicates or out-of-range vertices.
    pub fn induced_subgraph(&self, keep: &[u32]) -> (Graph, Vec<u32>) {
        let n = self.num_vertices();
        let mut new_id = vec![u32::MAX; n];
        for (i, &v) in keep.iter().enumerate() {
            assert!(
                (v as usize) < n,
                "induced_subgraph: vertex {v} out of range"
            );
            assert!(
                new_id[v as usize] == u32::MAX,
                "induced_subgraph: vertex {v} listed twice"
            );
            new_id[v as usize] = i as u32;
        }
        let edges: Vec<Edge> = keep
            .par_iter()
            .enumerate()
            .flat_map_iter(|(i, &v)| {
                let new_id = &new_id;
                self.neighbors(v).iter().copied().filter_map(move |w| {
                    let nw = new_id[w as usize];
                    (nw != u32::MAX && (i as u32) < nw).then_some(Edge::new(i as u32, nw))
                })
            })
            .collect();
        (Graph::from_edges(keep.len(), &edges), keep.to_vec())
    }

    /// Checks all structural invariants. Returns the first violation found.
    pub fn validate(&self) -> Result<(), GraphError> {
        let n = self.num_vertices();
        if self.offsets.is_empty() {
            return Err(GraphError::BadOffsets("offsets array is empty".into()));
        }
        if self.offsets[0] != 0 {
            return Err(GraphError::BadOffsets("offsets[0] != 0".into()));
        }
        if *self.offsets.last().unwrap() != self.neighbors.len() {
            return Err(GraphError::BadOffsets(format!(
                "offsets[n] = {} but neighbor array has length {}",
                self.offsets.last().unwrap(),
                self.neighbors.len()
            )));
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::BadOffsets("offsets not monotone".into()));
        }
        for u in 0..n as u32 {
            let adj = self.neighbors(u);
            for &v in adj {
                if v as usize >= n {
                    return Err(GraphError::NeighborOutOfRange {
                        vertex: u,
                        neighbor: v,
                    });
                }
                if v == u {
                    return Err(GraphError::SelfLoop(u));
                }
            }
            if adj.windows(2).any(|w| w[0] >= w[1]) {
                return Err(GraphError::UnsortedAdjacency(u));
            }
        }
        // Symmetry: every arc must have its reverse.
        for u in 0..n as u32 {
            for &v in self.neighbors(u) {
                if self.neighbors(v).binary_search(&u).is_err() {
                    return Err(GraphError::Asymmetric { u, v });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)])
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn triangle_structure() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn from_edges_removes_self_loops_and_duplicates() {
        let g = Graph::from_edges(
            4,
            &[
                Edge::new(0, 1),
                Edge::new(1, 0),
                Edge::new(2, 2),
                Edge::new(0, 1),
                Edge::new(2, 3),
            ],
        );
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(2, 2));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(3, 2));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn to_edge_list_roundtrip() {
        let g = triangle();
        let el = g.to_edge_list();
        assert!(el.is_canonical());
        assert_eq!(el.num_edges(), 3);
        let g2 = Graph::from_edge_list(&el);
        assert_eq!(g, g2);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = Graph::from_edges(
            5,
            &[
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(3, 4),
            ],
        );
        let (sub, mapping) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1)); // originally 1-2
        assert!(sub.has_edge(1, 2)); // originally 2-3
        assert!(!sub.has_edge(0, 2));
        assert_eq!(mapping, vec![1, 2, 3]);
        assert!(sub.validate().is_ok());
    }

    #[test]
    fn induced_subgraph_empty_selection() {
        let g = triangle();
        let (sub, mapping) = g.induced_subgraph(&[]);
        assert_eq!(sub.num_vertices(), 0);
        assert_eq!(sub.num_edges(), 0);
        assert!(mapping.is_empty());
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn induced_subgraph_rejects_duplicates() {
        triangle().induced_subgraph(&[0, 0]);
    }

    #[test]
    fn adjacency_lists_roundtrip() {
        let g = Graph::from_edges(
            5,
            &[
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(0, 4),
            ],
        );
        let adj = g.to_adjacency_lists();
        assert_eq!(adj[0], vec![1, 4]);
        assert_eq!(adj[2], vec![1, 3]);
        let g2 = Graph::from_sorted_adjacency(&adj);
        assert_eq!(g, g2);
        // Empty graph roundtrip.
        let e = Graph::empty(3);
        assert_eq!(Graph::from_sorted_adjacency(&e.to_adjacency_lists()), e);
    }

    #[test]
    fn max_degree_star() {
        let edges: Vec<Edge> = (1..10).map(|i| Edge::new(0, i)).collect();
        let g = Graph::from_edges(10, &edges);
        assert_eq!(g.max_degree(), 9);
        assert_eq!(g.degree(0), 9);
        assert_eq!(g.degree(5), 1);
    }

    #[test]
    fn validate_catches_asymmetry() {
        let g = Graph {
            offsets: vec![0, 1, 1],
            neighbors: vec![1],
        };
        assert!(matches!(
            g.validate(),
            Err(GraphError::Asymmetric { u: 0, v: 1 })
        ));
    }

    #[test]
    fn validate_catches_self_loop() {
        let g = Graph {
            offsets: vec![0, 1],
            neighbors: vec![0],
        };
        assert!(matches!(g.validate(), Err(GraphError::SelfLoop(0))));
    }

    #[test]
    fn validate_catches_bad_offsets() {
        let g = Graph {
            offsets: vec![0, 2],
            neighbors: vec![1],
        };
        assert!(matches!(g.validate(), Err(GraphError::BadOffsets(_))));
    }

    #[test]
    fn validate_catches_out_of_range_neighbor() {
        let g = Graph {
            offsets: vec![0, 1, 2],
            neighbors: vec![5, 0],
        };
        assert!(matches!(
            g.validate(),
            Err(GraphError::NeighborOutOfRange {
                vertex: 0,
                neighbor: 5
            })
        ));
    }

    #[test]
    #[should_panic(expected = "invalid CSR input")]
    fn from_raw_csr_rejects_invalid() {
        Graph::from_raw_csr(vec![0, 1], vec![0]);
    }

    #[test]
    fn from_raw_csr_accepts_valid() {
        let t = triangle();
        let g = Graph::from_raw_csr(t.offsets().to_vec(), t.neighbor_array().to_vec());
        assert_eq!(g, t);
    }

    #[test]
    fn graph_error_display_is_informative() {
        let e = GraphError::SelfLoop(3);
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::Asymmetric { u: 1, v: 2 };
        assert!(e.to_string().contains("1->2"));
    }
}
