//! Undirected edge lists.
//!
//! An [`EdgeList`] is the form the maximal-matching algorithms consume: edges
//! are identified by their index in the list, and the random priority
//! permutation π is a permutation of those indices. It is also the
//! intermediate form every generator produces before building a CSR
//! [`crate::csr::Graph`].

use greedy_prims::pack::par_dedup_adjacent;
use greedy_prims::sort::sort_by_key_parallel;
use rayon::prelude::*;

/// An undirected edge between two vertices, stored canonically
/// (`u() <= v()` after [`Edge::canonical`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// First endpoint.
    pub u: u32,
    /// Second endpoint.
    pub v: u32,
}

impl Edge {
    /// Creates an edge between `u` and `v` (unordered).
    pub fn new(u: u32, v: u32) -> Self {
        Self { u, v }
    }

    /// The same edge with endpoints ordered so `u <= v`.
    pub fn canonical(self) -> Self {
        if self.u <= self.v {
            self
        } else {
            Self {
                u: self.v,
                v: self.u,
            }
        }
    }

    /// True when both endpoints are the same vertex.
    pub fn is_self_loop(self) -> bool {
        self.u == self.v
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(self, x: u32) -> u32 {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!(
                "Edge::other: {x} is not an endpoint of ({}, {})",
                self.u, self.v
            )
        }
    }

    /// True when the two edges share at least one endpoint.
    pub fn adjacent_to(self, other: Edge) -> bool {
        self.u == other.u || self.u == other.v || self.v == other.u || self.v == other.v
    }

    /// The edge's endpoints packed into a single `u64` (`u` in the high half),
    /// so that sorting by this key is exactly the lexicographic `(u, v)`
    /// order. This is the radix key the parallel sort subsystem uses to
    /// bucket edges and arcs.
    #[inline]
    pub fn sort_key(self) -> u64 {
        ((self.u as u64) << 32) | self.v as u64
    }
}

/// A list of undirected edges over vertices `0..num_vertices`.
///
/// After [`EdgeList::canonicalize`] the list contains no self-loops and no
/// duplicate edges, each stored as `(min, max)`, sorted lexicographically.
/// Edge ids are simply indices into [`EdgeList::edges`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an edge list over `num_vertices` vertices.
    ///
    /// # Panics
    /// Panics if any endpoint is out of range.
    pub fn new(num_vertices: usize, edges: Vec<Edge>) -> Self {
        for e in &edges {
            assert!(
                (e.u as usize) < num_vertices && (e.v as usize) < num_vertices,
                "EdgeList::new: edge ({}, {}) out of range for n={num_vertices}",
                e.u,
                e.v
            );
        }
        Self {
            num_vertices,
            edges,
        }
    }

    /// Creates an edge list from `(u, v)` pairs.
    pub fn from_pairs(num_vertices: usize, pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let edges = pairs.into_iter().map(|(u, v)| Edge::new(u, v)).collect();
        Self::new(num_vertices, edges)
    }

    /// An empty edge list over `num_vertices` vertices.
    pub fn empty(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges currently stored (may include duplicates/self-loops
    /// before [`EdgeList::canonicalize`]).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True when there are no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with id `e`.
    #[inline]
    pub fn edge(&self, e: usize) -> Edge {
        self.edges[e]
    }

    /// Removes self-loops and duplicate edges, canonicalizes endpoint order,
    /// and sorts edges lexicographically. Returns `self` for chaining.
    ///
    /// The resulting order is deterministic (independent of the input order
    /// and of thread count), which keeps downstream experiments reproducible.
    pub fn canonicalize(mut self) -> Self {
        self.edges = self
            .edges
            .par_iter()
            .filter(|e| !e.is_self_loop())
            .map(|e| e.canonical())
            .collect();
        sort_by_key_parallel(&mut self.edges, |e| e.sort_key());
        self.edges = par_dedup_adjacent(std::mem::take(&mut self.edges));
        self
    }

    /// True if the list is in canonical form: no self-loops, all edges with
    /// `u <= v`, sorted, and deduplicated.
    pub fn is_canonical(&self) -> bool {
        self.edges.windows(2).all(|w| w[0] < w[1]) && self.edges.iter().all(|e| e.u < e.v)
    }

    /// Per-vertex degrees (each edge contributes to both endpoints).
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices];
        for e in &self.edges {
            deg[e.u as usize] += 1;
            if e.u != e.v {
                deg[e.v as usize] += 1;
            }
        }
        deg
    }

    /// Maximum degree (0 for an edgeless graph).
    pub fn max_degree(&self) -> u32 {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Builds per-vertex incidence lists: for each vertex, the ids of the
    /// edges incident to it, in increasing edge-id order.
    pub fn incidence_lists(&self) -> Vec<Vec<u32>> {
        let mut inc = vec![Vec::new(); self.num_vertices];
        for (id, e) in self.edges.iter().enumerate() {
            inc[e.u as usize].push(id as u32);
            if e.u != e.v {
                inc[e.v as usize].push(id as u32);
            }
        }
        inc
    }

    /// Consumes the list, returning `(num_vertices, edges)`.
    pub fn into_parts(self) -> (usize, Vec<Edge>) {
        (self.num_vertices, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_canonical_orders_endpoints() {
        assert_eq!(Edge::new(5, 2).canonical(), Edge::new(2, 5));
        assert_eq!(Edge::new(2, 5).canonical(), Edge::new(2, 5));
        assert_eq!(Edge::new(3, 3).canonical(), Edge::new(3, 3));
    }

    #[test]
    fn edge_other_and_adjacent() {
        let e = Edge::new(1, 2);
        assert_eq!(e.other(1), 2);
        assert_eq!(e.other(2), 1);
        assert!(e.adjacent_to(Edge::new(2, 3)));
        assert!(e.adjacent_to(Edge::new(0, 1)));
        assert!(!e.adjacent_to(Edge::new(3, 4)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        Edge::new(1, 2).other(3);
    }

    #[test]
    fn canonicalize_removes_loops_and_duplicates() {
        let el = EdgeList::from_pairs(5, vec![(1, 0), (0, 1), (2, 2), (3, 4), (4, 3), (0, 1)]);
        let canon = el.canonicalize();
        assert_eq!(canon.edges(), &[Edge::new(0, 1), Edge::new(3, 4)]);
        assert!(canon.is_canonical());
    }

    #[test]
    fn canonicalize_empty() {
        let el = EdgeList::empty(3).canonicalize();
        assert!(el.is_empty());
        assert!(el.is_canonical());
        assert_eq!(el.num_vertices(), 3);
    }

    #[test]
    fn degrees_and_max_degree() {
        let el = EdgeList::from_pairs(4, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
        assert_eq!(el.degrees(), vec![3, 2, 2, 1]);
        assert_eq!(el.max_degree(), 3);
    }

    #[test]
    fn incidence_lists_cover_all_edges() {
        let el = EdgeList::from_pairs(4, vec![(0, 1), (1, 2), (2, 3)]);
        let inc = el.incidence_lists();
        assert_eq!(inc[0], vec![0]);
        assert_eq!(inc[1], vec![0, 1]);
        assert_eq!(inc[2], vec![1, 2]);
        assert_eq!(inc[3], vec![2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        EdgeList::from_pairs(2, vec![(0, 2)]);
    }

    #[test]
    fn into_parts_roundtrip() {
        let el = EdgeList::from_pairs(3, vec![(0, 1)]);
        let (n, edges) = el.into_parts();
        assert_eq!(n, 3);
        assert_eq!(edges, vec![Edge::new(0, 1)]);
    }
}
