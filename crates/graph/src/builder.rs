//! Incremental graph construction.
//!
//! [`GraphBuilder`] accumulates edges one at a time (or in batches) and
//! produces a canonical [`EdgeList`] / CSR [`Graph`]. It is the convenient
//! entry point for examples and for constructing conflict graphs in the
//! scheduling application, where edges are discovered incrementally.
//!
//! Both build paths ([`GraphBuilder::build_edge_list`] via
//! [`EdgeList::canonicalize`], [`GraphBuilder::build_graph`] via
//! [`Graph::from_edges`]) bucket their accumulated edges with the parallel
//! radix sort in `greedy_prims::sort`, so batch-accumulated graphs pay the
//! same parallel construction cost as the generators.

use crate::csr::Graph;
use crate::edge_list::{Edge, EdgeList};

/// Accumulates edges and builds a [`Graph`] or [`EdgeList`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with capacity for `num_edges` edges.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::with_capacity(num_edges),
        }
    }

    /// Number of vertices the builder was created with (grows on demand via
    /// [`GraphBuilder::ensure_vertex`]).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges added so far (duplicates included).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Ensures vertex `v` exists, growing the vertex count if needed.
    pub fn ensure_vertex(&mut self, v: u32) -> &mut Self {
        self.num_vertices = self.num_vertices.max(v as usize + 1);
        self
    }

    /// Adds an undirected edge `{u, v}`; grows the vertex count if needed.
    /// Self-loops are accepted here and dropped at build time.
    pub fn add_edge(&mut self, u: u32, v: u32) -> &mut Self {
        self.ensure_vertex(u).ensure_vertex(v);
        self.edges.push(Edge::new(u, v));
        self
    }

    /// Adds a batch of edges.
    pub fn add_edges(&mut self, edges: impl IntoIterator<Item = (u32, u32)>) -> &mut Self {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
        self
    }

    /// Builds a canonical [`EdgeList`] (self-loops and duplicates removed).
    pub fn build_edge_list(&self) -> EdgeList {
        EdgeList::new(self.num_vertices, self.edges.clone()).canonicalize()
    }

    /// Builds a CSR [`Graph`].
    pub fn build_graph(&self) -> Graph {
        Graph::from_edges(self.num_vertices, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_grows_vertices() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(3, 7);
        assert_eq!(b.num_vertices(), 8);
        let g = b.build_graph();
        assert_eq!(g.num_vertices(), 8);
        assert!(g.has_edge(3, 7));
    }

    #[test]
    fn builder_deduplicates_at_build() {
        let mut b = GraphBuilder::new(4);
        b.add_edges(vec![(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(b.num_edges(), 4);
        let el = b.build_edge_list();
        assert_eq!(el.num_edges(), 1);
        let g = b.build_graph();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn empty_builder() {
        let b = GraphBuilder::new(3);
        let g = b.build_graph();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert!(b.build_edge_list().is_empty());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a = GraphBuilder::new(5);
        let mut b = GraphBuilder::with_capacity(5, 100);
        a.add_edge(0, 1);
        b.add_edge(0, 1);
        assert_eq!(a.build_graph(), b.build_graph());
    }

    #[test]
    fn chaining_api() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        assert_eq!(b.build_graph().num_edges(), 2);
    }
}
