//! R-MAT recursive-matrix graphs (Chakrabarti, Zhan, Faloutsos; SDM 2004).
//!
//! The paper's second experimental input is "an rMat graph with 2²⁴ vertices
//! and 5·10⁷ edges", which has a power-law degree distribution. R-MAT places
//! each edge by recursively descending a 2×2 partition of the adjacency
//! matrix, choosing quadrant (a, b, c, d) with the configured probabilities at
//! every level.
//!
//! Edges are generated independently from per-edge hash streams, so the
//! generator is parallel, deterministic in its seed, and independent of the
//! number of threads. As in the PBBS rMat generator, duplicate edges and
//! self-loops are removed afterwards, so the final edge count is slightly
//! below the requested count for very skewed parameter settings.

use greedy_prims::random::{hash64, SplitMix64};
use greedy_prims::sort::sort_by_key_parallel;
use rayon::prelude::*;

use crate::csr::Graph;
use crate::edge_list::{Edge, EdgeList};

/// Quadrant probabilities for the R-MAT generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
}

impl RmatParams {
    /// The PBBS defaults (a = 0.5, b = c = 0.1, d = 0.3), which produce the
    /// skewed power-law degree distribution used in the paper's experiments.
    pub fn pbbs_default() -> Self {
        Self {
            a: 0.5,
            b: 0.1,
            c: 0.1,
        }
    }

    /// The implied probability of the bottom-right quadrant.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Validates that all four probabilities are non-negative and sum to 1.
    pub fn validate(&self) -> Result<(), String> {
        let d = self.d();
        for (name, p) in [("a", self.a), ("b", self.b), ("c", self.c), ("d", d)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "RmatParams: probability {name} = {p} not in [0, 1]"
                ));
            }
        }
        Ok(())
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        Self::pbbs_default()
    }
}

/// Generates an R-MAT edge list with `2^log_n` vertices and up to `m` edges
/// (self-loops and duplicates removed). Deterministic in `seed`.
pub fn rmat_edge_list(log_n: u32, m: usize, params: RmatParams, seed: u64) -> EdgeList {
    params
        .validate()
        .unwrap_or_else(|e| panic!("rmat_edge_list: {e}"));
    assert!(
        log_n <= 31,
        "rmat_edge_list: log_n = {log_n} too large for u32 ids"
    );
    let n = 1usize << log_n;
    if n < 2 || m == 0 {
        return EdgeList::empty(n);
    }
    let mut edges: Vec<Edge> = (0..m as u64)
        .into_par_iter()
        .filter_map(|i| {
            let (u, v) = rmat_edge(log_n, params, seed, i);
            (u != v).then(|| Edge::new(u, v).canonical())
        })
        .collect();
    sort_by_key_parallel(&mut edges, |e| e.sort_key());
    edges.dedup();
    EdgeList::new(n, edges)
}

/// Generates an R-MAT graph in CSR form (see [`rmat_edge_list`]).
pub fn rmat_graph(log_n: u32, m: usize, seed: u64) -> Graph {
    Graph::from_edge_list(&rmat_edge_list(log_n, m, RmatParams::default(), seed))
}

/// Generates an R-MAT graph with explicit quadrant probabilities.
pub fn rmat_graph_with_params(log_n: u32, m: usize, params: RmatParams, seed: u64) -> Graph {
    Graph::from_edge_list(&rmat_edge_list(log_n, m, params, seed))
}

/// Draws the endpoints of edge `index` by recursive quadrant descent.
fn rmat_edge(log_n: u32, params: RmatParams, seed: u64, index: u64) -> (u32, u32) {
    let mut rng = SplitMix64::new(hash64(seed, index));
    let mut u: u32 = 0;
    let mut v: u32 = 0;
    let ab = params.a + params.b;
    let abc = ab + params.c;
    for _ in 0..log_n {
        u <<= 1;
        v <<= 1;
        // Add a little per-level noise the way the original generator does, to
        // avoid perfectly self-similar artifacts; the noise is derived from
        // the same deterministic stream.
        let r = rng.next_f64();
        if r < params.a {
            // top-left: no bits set
        } else if r < ab {
            v |= 1;
        } else if r < abc {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_default_valid() {
        let p = RmatParams::default();
        assert!(p.validate().is_ok());
        assert!((p.d() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn params_invalid_detected() {
        let p = RmatParams {
            a: 0.9,
            b: 0.9,
            c: 0.9,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn generates_graph_within_bounds() {
        let el = rmat_edge_list(10, 5_000, RmatParams::default(), 1);
        assert_eq!(el.num_vertices(), 1024);
        assert!(el.num_edges() <= 5_000);
        assert!(
            el.num_edges() > 3_000,
            "too many duplicates: {}",
            el.num_edges()
        );
        assert!(el.is_canonical());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = rmat_edge_list(9, 2_000, RmatParams::default(), 42);
        let b = rmat_edge_list(9, 2_000, RmatParams::default(), 42);
        let c = rmat_edge_list(9, 2_000, RmatParams::default(), 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn graph_is_valid() {
        let g = rmat_graph(11, 10_000, 3);
        assert!(g.validate().is_ok());
        assert_eq!(g.num_vertices(), 2048);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // A power-law graph's max degree should be far above the average,
        // unlike the uniform random graph (compare with the test below, which
        // uses the same size but uniform quadrant probabilities).
        let g = rmat_graph(14, 40_000, 7);
        let n = g.num_vertices();
        let avg = 2.0 * g.num_edges() as f64 / n as f64;
        let max = g.max_degree() as f64;
        assert!(
            max > 5.0 * avg,
            "rMat max degree {max} not much larger than average {avg}"
        );
    }

    #[test]
    fn uniform_params_are_not_skewed() {
        // With a = b = c = d = 0.25 the generator degenerates to a uniform
        // random graph; the skew check above should fail here.
        let params = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let g = rmat_graph_with_params(14, 40_000, params, 7);
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        let max = g.max_degree() as f64;
        assert!(
            max < 5.0 * avg,
            "uniform quadrants should not produce extreme skew"
        );
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(
            rmat_edge_list(0, 100, RmatParams::default(), 1).num_edges(),
            0
        );
        assert_eq!(
            rmat_edge_list(5, 0, RmatParams::default(), 1).num_edges(),
            0
        );
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn rejects_invalid_params() {
        rmat_edge_list(
            5,
            10,
            RmatParams {
                a: 1.5,
                b: 0.0,
                c: 0.0,
            },
            1,
        );
    }
}
