//! Graph generators.
//!
//! * [`random`] — uniform sparse random multigraph G(n, m), the paper's
//!   "random graph" input (n = 10⁷, m = 5·10⁷ at paper scale).
//! * [`er`] — Erdős–Rényi G(n, p), the model analysed by Coppersmith et al.
//!   and Calkin–Frieze, useful for comparing against the prior analyses.
//! * [`rmat`] — the R-MAT recursive-matrix generator of Chakrabarti et al.,
//!   the paper's power-law input (n = 2²⁴, m = 5·10⁷ at paper scale).
//! * [`structured`] — complete, path, cycle, star, grid, tree, and bipartite
//!   graphs used as adversarial and edge-case inputs in tests and the
//!   dependence-length experiment.
//!
//! All generators are deterministic in their seed and independent of the
//! number of threads.

pub mod er;
pub mod random;
pub mod rmat;
pub mod structured;
