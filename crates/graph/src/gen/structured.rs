//! Structured graph families.
//!
//! These are the edge cases and adversarial inputs of the analysis:
//!
//! * the **complete graph** — the paper's example where the longest directed
//!   path in the priority DAG is Ω(n) but the dependence length is O(1);
//! * the **path graph** — maximal longest-path per edge, a stress test for
//!   the dependence-length bound;
//! * the **star graph** — extreme degree skew (Δ = n − 1);
//! * plus cycles, 2-D grids, complete bipartite graphs, and random trees used
//!   throughout the unit, property, and integration tests.

use greedy_prims::random::hash64;

use crate::csr::Graph;
use crate::edge_list::{Edge, EdgeList};

/// The complete graph K_n.
pub fn complete_graph(n: usize) -> Graph {
    Graph::from_edge_list(&complete_edge_list(n))
}

/// Edge list of the complete graph K_n.
pub fn complete_edge_list(n: usize) -> EdgeList {
    assert!(n <= u32::MAX as usize, "complete_edge_list: n too large");
    let mut edges = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push(Edge::new(u, v));
        }
    }
    EdgeList::new(n, edges)
}

/// The path graph P_n: edges (0,1), (1,2), …, (n−2, n−1).
pub fn path_graph(n: usize) -> Graph {
    Graph::from_edge_list(&path_edge_list(n))
}

/// Edge list of the path graph P_n.
pub fn path_edge_list(n: usize) -> EdgeList {
    let edges: Vec<Edge> = (1..n as u32).map(|v| Edge::new(v - 1, v)).collect();
    EdgeList::new(n, edges)
}

/// The cycle graph C_n (requires n ≥ 3 to contain a cycle; smaller n gives a
/// path or an edgeless graph).
pub fn cycle_graph(n: usize) -> Graph {
    Graph::from_edge_list(&cycle_edge_list(n))
}

/// Edge list of the cycle graph C_n.
pub fn cycle_edge_list(n: usize) -> EdgeList {
    if n < 3 {
        return path_edge_list(n);
    }
    let mut edges: Vec<Edge> = (1..n as u32).map(|v| Edge::new(v - 1, v)).collect();
    edges.push(Edge::new(n as u32 - 1, 0));
    EdgeList::new(n, edges)
}

/// The star graph S_n: vertex 0 connected to vertices 1..n.
pub fn star_graph(n: usize) -> Graph {
    Graph::from_edge_list(&star_edge_list(n))
}

/// Edge list of the star graph S_n.
pub fn star_edge_list(n: usize) -> EdgeList {
    let edges: Vec<Edge> = (1..n as u32).map(|v| Edge::new(0, v)).collect();
    EdgeList::new(n, edges)
}

/// The rows × cols 2-D grid graph with 4-neighbor connectivity.
pub fn grid_graph(rows: usize, cols: usize) -> Graph {
    Graph::from_edge_list(&grid_edge_list(rows, cols))
}

/// Edge list of the rows × cols grid graph.
pub fn grid_edge_list(rows: usize, cols: usize) -> EdgeList {
    let n = rows * cols;
    assert!(n <= u32::MAX as usize, "grid_edge_list: too many vertices");
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::new(id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push(Edge::new(id(r, c), id(r + 1, c)));
            }
        }
    }
    EdgeList::new(n, edges)
}

/// The complete bipartite graph K_{a,b}: parts {0..a} and {a..a+b}.
pub fn complete_bipartite_graph(a: usize, b: usize) -> Graph {
    let n = a + b;
    assert!(
        n <= u32::MAX as usize,
        "complete_bipartite_graph: too many vertices"
    );
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            edges.push(Edge::new(u, a as u32 + v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// A uniform random tree on n vertices: each vertex v ≥ 1 attaches to a
/// uniformly random earlier vertex. Deterministic in `seed`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n <= u32::MAX as usize, "random_tree: n too large");
    let edges: Vec<Edge> = (1..n as u64)
        .map(|v| {
            let parent = hash64(seed, v) % v;
            Edge::new(parent as u32, v as u32)
        })
        .collect();
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_counts() {
        for n in [0usize, 1, 2, 5, 20] {
            let g = complete_graph(n);
            assert_eq!(g.num_vertices(), n);
            assert_eq!(g.num_edges(), n * n.saturating_sub(1) / 2);
            if n > 0 {
                assert_eq!(g.max_degree(), n - 1);
            }
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn path_graph_structure() {
        let g = path_graph(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.degree(4), 1);
        assert!(g.validate().is_ok());
        assert_eq!(path_graph(0).num_edges(), 0);
        assert_eq!(path_graph(1).num_edges(), 0);
    }

    #[test]
    fn cycle_graph_structure() {
        let g = cycle_graph(6);
        assert_eq!(g.num_edges(), 6);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(5, 0));
        // Degenerate sizes fall back to paths.
        assert_eq!(cycle_graph(2).num_edges(), 1);
        assert_eq!(cycle_graph(1).num_edges(), 0);
    }

    #[test]
    fn star_graph_structure() {
        let g = star_graph(10);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.degree(0), 9);
        for v in 1..10u32 {
            assert_eq!(g.degree(v), 1);
        }
        assert_eq!(g.max_degree(), 9);
    }

    #[test]
    fn grid_graph_structure() {
        let g = grid_graph(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // 3 rows × 3 horizontal edges + 2 × 4 vertical edges = 9 + 8.
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior (row 1, col 1)
        assert!(g.validate().is_ok());
        assert_eq!(grid_graph(0, 5).num_vertices(), 0);
        assert_eq!(grid_graph(1, 5).num_edges(), 4);
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite_graph(3, 4);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 12);
        for u in 0..3u32 {
            assert_eq!(g.degree(u), 4);
            for v in 0..3u32 {
                assert!(!g.has_edge(u, v));
            }
        }
        for v in 3..7u32 {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn random_tree_is_a_tree() {
        let n = 1_000;
        let g = random_tree(n, 4);
        assert_eq!(g.num_edges(), n - 1);
        assert!(g.validate().is_ok());
        // Connectivity check via BFS from 0.
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0u32]);
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    queue.push_back(w);
                }
            }
        }
        assert_eq!(count, n, "tree must be connected");
    }

    #[test]
    fn random_tree_deterministic() {
        assert_eq!(random_tree(100, 1), random_tree(100, 1));
        assert_ne!(random_tree(100, 1), random_tree(100, 2));
    }
}
