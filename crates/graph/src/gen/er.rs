//! Erdős–Rényi G(n, p) graphs.
//!
//! Each of the n·(n-1)/2 possible edges is present independently with
//! probability `p`. This is the model under which Coppersmith–Raghavan–Tompa
//! and Calkin–Frieze analysed the greedy parallel MIS; we include it so the
//! test suite and the dependence-length experiment can compare the
//! general-graph bound (O(log² n)) against the random-graph setting the prior
//! work covered.
//!
//! For small `p` the generator uses geometric skipping (the "G(n,p) in
//! expected O(n+m) time" technique), so sparse graphs are generated in time
//! proportional to their size rather than to n².

use greedy_prims::random::SplitMix64;

use crate::csr::Graph;
use crate::edge_list::{Edge, EdgeList};

/// Generates an Erdős–Rényi G(n, p) edge list. Deterministic in `seed`.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]`.
pub fn er_edge_list(n: usize, p: f64, seed: u64) -> EdgeList {
    assert!(
        (0.0..=1.0).contains(&p),
        "er_edge_list: p = {p} not in [0, 1]"
    );
    assert!(
        n <= u32::MAX as usize,
        "er_edge_list: n too large for u32 ids"
    );
    if n < 2 || p == 0.0 {
        return EdgeList::empty(n);
    }
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::new();
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push(Edge::new(u, v));
            }
        }
        return EdgeList::new(n, edges);
    }

    // Geometric skipping over the linearized upper triangle.
    let total_pairs = n as u64 * (n as u64 - 1) / 2;
    let log1mp = (1.0 - p).ln();
    let mut idx: i128 = -1;
    loop {
        let r = rng.next_f64().max(f64::MIN_POSITIVE);
        let skip = (r.ln() / log1mp).floor() as i128 + 1;
        idx += skip;
        if idx as u128 >= total_pairs as u128 {
            break;
        }
        let (u, v) = unrank_pair(idx as u64, n as u64);
        edges.push(Edge::new(u as u32, v as u32));
    }
    EdgeList::new(n, edges)
}

/// Generates an Erdős–Rényi G(n, p) graph in CSR form.
pub fn er_graph(n: usize, p: f64, seed: u64) -> Graph {
    Graph::from_edge_list(&er_edge_list(n, p, seed))
}

/// Maps a linear index in `0..n(n-1)/2` to the corresponding pair `(u, v)`
/// with `u < v`, enumerating pairs row by row: (0,1), (0,2), …, (0,n-1),
/// (1,2), …
fn unrank_pair(idx: u64, n: u64) -> (u64, u64) {
    // Row u starts at offset u*n - u*(u+3)/2... solve incrementally to avoid
    // floating-point edge cases: binary search the row.
    let row_start = |u: u64| -> u64 { u * (2 * n - u - 1) / 2 };
    let mut lo = 0u64;
    let mut hi = n - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if row_start(mid) <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let v = u + 1 + (idx - row_start(u));
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrank_pair_enumerates_all_pairs() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..n * (n - 1) / 2 {
            let (u, v) = unrank_pair(idx, n);
            assert!(u < v && v < n, "bad pair ({u}, {v}) at idx {idx}");
            assert!(seen.insert((u, v)), "pair ({u}, {v}) repeated");
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn p_zero_and_one() {
        assert_eq!(er_edge_list(10, 0.0, 1).num_edges(), 0);
        assert_eq!(er_edge_list(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn p_half_has_roughly_half_the_edges() {
        let n = 200;
        let el = er_edge_list(n, 0.5, 3);
        let expected = (n * (n - 1) / 2) as f64 * 0.5;
        let m = el.num_edges() as f64;
        assert!(
            (m - expected).abs() < expected * 0.15,
            "m = {m}, expected ≈ {expected}"
        );
    }

    #[test]
    fn sparse_graph_has_expected_density() {
        let n = 10_000;
        let p = 0.001;
        let el = er_edge_list(n, p, 5);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let m = el.num_edges() as f64;
        assert!(
            (m - expected).abs() < expected * 0.2,
            "m = {m}, expected ≈ {expected}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(er_edge_list(100, 0.1, 9), er_edge_list(100, 0.1, 9));
        assert_ne!(er_edge_list(100, 0.1, 9), er_edge_list(100, 0.1, 10));
    }

    #[test]
    fn graph_is_valid() {
        let g = er_graph(300, 0.05, 2);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn edges_are_canonical_and_unique() {
        let el = er_edge_list(500, 0.01, 4);
        let canon = el.clone().canonicalize();
        assert_eq!(
            el.num_edges(),
            canon.num_edges(),
            "generator must not emit duplicates"
        );
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn rejects_bad_probability() {
        er_edge_list(10, 1.5, 0);
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(er_edge_list(0, 0.5, 1).num_edges(), 0);
        assert_eq!(er_edge_list(1, 0.5, 1).num_edges(), 0);
    }
}
