//! Uniform sparse random graphs G(n, m).
//!
//! The paper's first experimental input is "a sparse random graph with 10⁷
//! vertices and 5·10⁷ edges": m endpoint pairs drawn uniformly at random.
//! We draw pairs with a per-index hash stream (deterministic and parallel),
//! drop self-loops and duplicates, and top up in further rounds until exactly
//! `m` distinct edges exist (or the graph is complete).

use greedy_prims::random::hash64;
use greedy_prims::sort::sort_by_key_parallel;
use rayon::prelude::*;

use crate::csr::Graph;
use crate::edge_list::{Edge, EdgeList};

/// Generates a uniform random graph with `n` vertices and (up to) `m`
/// distinct edges and returns it in CSR form.
///
/// The generator keeps sampling until `m` distinct non-loop edges have been
/// produced, unless `m` exceeds the number of possible edges, in which case
/// the complete graph is returned. Deterministic in `seed`.
pub fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
    Graph::from_edge_list(&random_edge_list(n, m, seed))
}

/// Generates the edge list of a uniform random graph with `n` vertices and up
/// to `m` distinct edges (see [`random_graph`]).
pub fn random_edge_list(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(
        n <= u32::MAX as usize,
        "random_edge_list: n too large for u32 ids"
    );
    if n < 2 || m == 0 {
        return EdgeList::empty(n);
    }
    let max_edges = n * (n - 1) / 2;
    let target = m.min(max_edges);

    let mut edges: Vec<Edge> = Vec::with_capacity(target);
    let mut round: u64 = 0;
    // Sample in rounds; each round draws what is still missing plus 10%
    // headroom so that duplicate collisions rarely force another round.
    while edges.len() < target {
        let missing = target - edges.len();
        let batch = missing + missing / 10 + 16;
        let round_seed = hash64(seed, 0x5EED_0000 + round);
        let mut new_edges: Vec<Edge> = (0..batch as u64)
            .into_par_iter()
            .filter_map(|i| {
                let u = (hash64(round_seed, 2 * i) % n as u64) as u32;
                let v = (hash64(round_seed, 2 * i + 1) % n as u64) as u32;
                (u != v).then(|| Edge::new(u, v).canonical())
            })
            .collect();
        edges.append(&mut new_edges);
        sort_by_key_parallel(&mut edges, |e| e.sort_key());
        edges.dedup();
        round += 1;
        // For dense targets (close to the complete graph) rejection sampling
        // stalls; switch to explicit enumeration of the missing edges.
        if round > 64 {
            let mut all: Vec<Edge> = (0..n as u32)
                .flat_map(|u| ((u + 1)..n as u32).map(move |v| Edge::new(u, v)))
                .collect();
            // Keep a deterministic pseudo-random subset of size `target`.
            sort_by_key_parallel(&mut all, |e| hash64(seed, e.sort_key()));
            all.truncate(target);
            sort_by_key_parallel(&mut all, |e| e.sort_key());
            edges = all;
            break;
        }
    }
    edges.truncate(target);
    sort_by_key_parallel(&mut edges, |e| e.sort_key());
    EdgeList::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_edge_count() {
        let el = random_edge_list(1_000, 5_000, 1);
        assert_eq!(el.num_edges(), 5_000);
        assert!(el.is_canonical());
        assert_eq!(el.num_vertices(), 1_000);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            random_edge_list(500, 2_000, 7),
            random_edge_list(500, 2_000, 7)
        );
        assert_ne!(
            random_edge_list(500, 2_000, 7),
            random_edge_list(500, 2_000, 8)
        );
    }

    #[test]
    fn graph_is_valid() {
        let g = random_graph(2_000, 10_000, 3);
        assert!(g.validate().is_ok());
        assert_eq!(g.num_vertices(), 2_000);
        assert_eq!(g.num_edges(), 10_000);
    }

    #[test]
    fn handles_tiny_graphs() {
        assert_eq!(random_edge_list(0, 10, 1).num_edges(), 0);
        assert_eq!(random_edge_list(1, 10, 1).num_edges(), 0);
        assert_eq!(random_edge_list(10, 0, 1).num_edges(), 0);
    }

    #[test]
    fn caps_at_complete_graph() {
        // Request far more edges than possible: must return the complete graph.
        let el = random_edge_list(10, 1_000, 5);
        assert_eq!(el.num_edges(), 45);
        let g = Graph::from_edge_list(&el);
        for u in 0..10u32 {
            for v in (u + 1)..10u32 {
                assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn dense_request_returns_exact_count() {
        // 80% of the complete graph exercises the enumeration fallback path.
        let max = 50 * 49 / 2;
        let target = max * 4 / 5;
        let el = random_edge_list(50, target, 11);
        assert_eq!(el.num_edges(), target);
        assert!(el.is_canonical());
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        // Average degree 2m/n = 10; no vertex should be wildly above it.
        let g = random_graph(5_000, 25_000, 9);
        let max_deg = g.max_degree();
        assert!(
            max_deg < 60,
            "max degree {max_deg} suspiciously large for a uniform graph"
        );
    }
}
