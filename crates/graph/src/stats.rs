//! Graph statistics used by the experiment harness and sanity checks:
//! degree distributions, connected components, and a compact summary.

use std::collections::VecDeque;

use rayon::prelude::*;

use crate::csr::Graph;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Maximum degree Δ.
    pub max_degree: usize,
    /// Average degree 2m/n (0 for an empty graph).
    pub avg_degree: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated_vertices: usize,
    /// Number of connected components.
    pub num_components: usize,
}

/// Computes summary statistics for `graph`.
pub fn graph_stats(graph: &Graph) -> GraphStats {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    GraphStats {
        num_vertices: n,
        num_edges: m,
        max_degree: graph.max_degree(),
        avg_degree: if n == 0 {
            0.0
        } else {
            2.0 * m as f64 / n as f64
        },
        isolated_vertices: (0..n as u32)
            .into_par_iter()
            .filter(|&v| graph.degree(v) == 0)
            .count(),
        num_components: connected_components(graph).1,
    }
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let max_d = graph.max_degree();
    let mut hist = vec![0usize; max_d + 1];
    for v in graph.vertices() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

/// Labels connected components with BFS. Returns `(labels, count)`, where
/// `labels[v]` is the component id of `v` (ids are dense, in order of first
/// discovery by vertex id).
pub fn connected_components(graph: &Graph) -> (Vec<u32>, usize) {
    let n = graph.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut next_label = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as u32 {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = next_label;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in graph.neighbors(v) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = next_label;
                    queue.push_back(w);
                }
            }
        }
        next_label += 1;
    }
    (label, next_label as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random::random_graph;
    use crate::gen::structured::{complete_graph, path_graph, star_graph};
    use crate::Graph;

    #[test]
    fn stats_of_empty_graph() {
        let s = graph_stats(&Graph::empty(5));
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.isolated_vertices, 5);
        assert_eq!(s.num_components, 5);
    }

    #[test]
    fn stats_of_zero_vertex_graph() {
        let s = graph_stats(&Graph::empty(0));
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.num_components, 0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn stats_of_complete_graph() {
        let s = graph_stats(&complete_graph(6));
        assert_eq!(s.num_edges, 15);
        assert_eq!(s.max_degree, 5);
        assert_eq!(s.num_components, 1);
        assert_eq!(s.isolated_vertices, 0);
        assert!((s.avg_degree - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degree_histogram_star() {
        let hist = degree_histogram(&star_graph(5));
        // 4 leaves of degree 1, one center of degree 4.
        assert_eq!(hist, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn components_of_disconnected_graph() {
        // Two paths: 0-1-2 and 3-4.
        let g = Graph::from_edges(
            6,
            &[
                crate::edge_list::Edge::new(0, 1),
                crate::edge_list::Edge::new(1, 2),
                crate::edge_list::Edge::new(3, 4),
            ],
        );
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[3], labels[5]);
    }

    #[test]
    fn path_graph_is_one_component() {
        let (_, count) = connected_components(&path_graph(100));
        assert_eq!(count, 1);
    }

    #[test]
    fn random_graph_stats_consistent() {
        let g = random_graph(1_000, 3_000, 2);
        let s = graph_stats(&g);
        assert_eq!(s.num_edges, 3_000);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 1_000);
        let total_degree: usize = hist.iter().enumerate().map(|(d, &c)| d * c).sum();
        assert_eq!(total_degree, 2 * s.num_edges);
    }
}
