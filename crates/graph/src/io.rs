//! Graph text I/O.
//!
//! Two formats are supported:
//!
//! * The PBBS **AdjacencyGraph** format used by the paper's own benchmark
//!   suite: a header line `AdjacencyGraph`, then `n`, then `m'` (number of
//!   directed arcs), then `n` offsets, then `m'` neighbor ids, one value per
//!   line.
//! * A simple **edge list** format: `# n` on the first line followed by one
//!   `u v` pair per line.
//!
//! Both readers validate structure and return descriptive errors instead of
//! panicking, so malformed files surface as `Err` in the harness.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::csr::Graph;
use crate::edge_list::EdgeList;

/// Errors from reading graph files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file did not match the expected format.
    Format(String),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Writes `graph` in the PBBS AdjacencyGraph format.
pub fn write_adjacency_graph(graph: &Graph, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "AdjacencyGraph")?;
    writeln!(w, "{}", graph.num_vertices())?;
    writeln!(w, "{}", graph.num_arcs())?;
    for v in 0..graph.num_vertices() {
        writeln!(w, "{}", graph.offsets()[v])?;
    }
    for &nbr in graph.neighbor_array() {
        writeln!(w, "{nbr}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph in the PBBS AdjacencyGraph format.
pub fn read_adjacency_graph(path: &Path) -> Result<Graph, IoError> {
    let reader = BufReader::new(File::open(path)?);
    let mut values = Vec::new();
    let mut header_seen = false;
    for line in reader.lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if !header_seen {
            if t != "AdjacencyGraph" {
                return Err(IoError::Format(format!(
                    "expected 'AdjacencyGraph' header, found '{t}'"
                )));
            }
            header_seen = true;
            continue;
        }
        for tok in t.split_whitespace() {
            let v: usize = tok
                .parse()
                .map_err(|_| IoError::Format(format!("non-numeric token '{tok}'")))?;
            values.push(v);
        }
    }
    if !header_seen {
        return Err(IoError::Format("missing 'AdjacencyGraph' header".into()));
    }
    if values.len() < 2 {
        return Err(IoError::Format("missing n and m".into()));
    }
    let n = values[0];
    let m = values[1];
    if values.len() != 2 + n + m {
        return Err(IoError::Format(format!(
            "expected {} values after header, found {}",
            2 + n + m,
            values.len()
        )));
    }
    let mut offsets: Vec<usize> = values[2..2 + n].to_vec();
    offsets.push(m);
    let neighbors: Vec<u32> = values[2 + n..]
        .iter()
        .map(|&x| {
            u32::try_from(x).map_err(|_| IoError::Format(format!("neighbor id {x} exceeds u32")))
        })
        .collect::<Result<_, _>>()?;
    // Validate by rebuilding through the checked constructor; catch panics as
    // format errors is not idiomatic, so re-check manually first.
    let graph = Graph::from_raw_csr_checked(offsets, neighbors)
        .map_err(|e| IoError::Format(format!("invalid CSR structure: {e}")))?;
    Ok(graph)
}

/// Writes an edge list as `# n` followed by `u v` lines.
pub fn write_edge_list(edges: &EdgeList, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# {}", edges.num_vertices())?;
    for e in edges.edges() {
        writeln!(w, "{} {}", e.u, e.v)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads an edge list written by [`write_edge_list`].
pub fn read_edge_list(path: &Path) -> Result<EdgeList, IoError> {
    let reader = BufReader::new(File::open(path)?);
    let mut n: Option<usize> = None;
    let mut pairs = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix('#') {
            if n.is_none() {
                n = Some(
                    rest.trim()
                        .parse()
                        .map_err(|_| IoError::Format(format!("bad vertex count '{rest}'")))?,
                );
            }
            continue;
        }
        let mut it = t.split_whitespace();
        let u: u32 = it
            .next()
            .ok_or_else(|| IoError::Format(format!("missing endpoint in '{t}'")))?
            .parse()
            .map_err(|_| IoError::Format(format!("bad endpoint in '{t}'")))?;
        let v: u32 = it
            .next()
            .ok_or_else(|| IoError::Format(format!("missing endpoint in '{t}'")))?
            .parse()
            .map_err(|_| IoError::Format(format!("bad endpoint in '{t}'")))?;
        pairs.push((u, v));
    }
    let n = n.ok_or_else(|| IoError::Format("missing '# n' header line".into()))?;
    for &(u, v) in &pairs {
        if u as usize >= n || v as usize >= n {
            return Err(IoError::Format(format!(
                "edge ({u}, {v}) out of range for n={n}"
            )));
        }
    }
    Ok(EdgeList::from_pairs(n, pairs))
}

impl Graph {
    /// Like [`Graph::from_raw_csr`] but returns an error instead of panicking.
    pub fn from_raw_csr_checked(
        offsets: Vec<usize>,
        neighbors: Vec<u32>,
    ) -> Result<Graph, crate::csr::GraphError> {
        let g = Graph::from_parts_unchecked(offsets, neighbors);
        g.validate()?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random::random_graph;
    use crate::gen::structured::star_edge_list;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("greedy_graph_io_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn adjacency_graph_roundtrip() {
        let g = random_graph(200, 800, 1);
        let path = temp_path("adj.txt");
        write_adjacency_graph(&g, &path).unwrap();
        let g2 = read_adjacency_graph(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_roundtrip() {
        let el = star_edge_list(10).canonicalize();
        let path = temp_path("edges.txt");
        write_edge_list(&el, &path).unwrap();
        let el2 = read_edge_list(&path).unwrap().canonicalize();
        assert_eq!(el, el2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_adjacency_rejects_bad_header() {
        let path = temp_path("bad_header.txt");
        std::fs::write(&path, "NotAGraph\n3\n0\n").unwrap();
        let err = read_adjacency_graph(&path).unwrap_err();
        assert!(matches!(err, IoError::Format(_)), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_adjacency_rejects_wrong_count() {
        let path = temp_path("bad_count.txt");
        std::fs::write(&path, "AdjacencyGraph\n2\n2\n0\n1\n1\n").unwrap();
        let err = read_adjacency_graph(&path).unwrap_err();
        assert!(matches!(err, IoError::Format(_)), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_edge_list_rejects_out_of_range() {
        let path = temp_path("bad_edge.txt");
        std::fs::write(&path, "# 3\n0 5\n").unwrap();
        let err = read_edge_list(&path).unwrap_err();
        assert!(matches!(err, IoError::Format(_)), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let err =
            read_adjacency_graph(Path::new("/nonexistent/definitely/missing.txt")).unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(err.to_string().contains("i/o error"));
    }
}
