//! Line graph construction.
//!
//! The line graph L(G) has one vertex per edge of G, with two vertices of
//! L(G) adjacent iff the corresponding edges of G share an endpoint. The
//! paper uses this reduction in two places:
//!
//! * Lemma 5.1 bounds the rounds of the greedy MM algorithm by observing that
//!   it behaves exactly like greedy MIS on L(G);
//! * it motivates *not* implementing MM that way in practice, since L(G) can
//!   be asymptotically larger than G (Σ deg(v)² edges).
//!
//! We build L(G) explicitly anyway: it is the ideal test oracle (MM on G must
//! equal MIS on L(G) under the same priorities), and it is used by the
//! integration tests and by one ablation experiment.

use rayon::prelude::*;

use crate::csr::Graph;
use crate::edge_list::{Edge, EdgeList};

/// Builds the line graph of `edges`.
///
/// Vertex `i` of the result corresponds to edge `i` of the input list.
/// The input should be canonical (no duplicates or self-loops); duplicate
/// input edges would otherwise produce spurious adjacencies.
pub fn line_graph(edges: &EdgeList) -> Graph {
    let m = edges.num_edges();
    assert!(
        m <= u32::MAX as usize,
        "line_graph: too many edges for u32 ids"
    );
    // Group edge ids by endpoint; all pairs within one group are adjacent in L(G).
    let inc = edges.incidence_lists();
    let line_edges: Vec<Edge> = inc
        .par_iter()
        .flat_map_iter(|ids| {
            ids.iter()
                .enumerate()
                .flat_map(move |(i, &a)| ids[i + 1..].iter().map(move |&b| Edge::new(a, b)))
        })
        .collect();
    Graph::from_edges(m, &line_edges)
}

/// The number of edges the line graph will have, without building it:
/// Σ_v C(deg(v), 2), minus corrections for parallel pairs (none for simple
/// graphs).
pub fn line_graph_edge_count(edges: &EdgeList) -> usize {
    edges
        .degrees()
        .into_iter()
        .map(|d| (d as usize) * (d as usize).saturating_sub(1) / 2)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::structured::{path_edge_list, star_edge_list};

    #[test]
    fn line_graph_of_path() {
        // P4 has 3 edges forming a path of length 2 in the line graph.
        let el = path_edge_list(4);
        let lg = line_graph(&el);
        assert_eq!(lg.num_vertices(), 3);
        assert_eq!(lg.num_edges(), 2);
        assert!(lg.has_edge(0, 1));
        assert!(lg.has_edge(1, 2));
        assert!(!lg.has_edge(0, 2));
    }

    #[test]
    fn line_graph_of_star_is_complete() {
        // All edges of a star share the center, so L(S_n) = K_{n-1}.
        let el = star_edge_list(6);
        let lg = line_graph(&el);
        assert_eq!(lg.num_vertices(), 5);
        assert_eq!(lg.num_edges(), 10);
    }

    #[test]
    fn line_graph_of_triangle_is_triangle() {
        let el = EdgeList::from_pairs(3, vec![(0, 1), (1, 2), (0, 2)]).canonicalize();
        let lg = line_graph(&el);
        assert_eq!(lg.num_vertices(), 3);
        assert_eq!(lg.num_edges(), 3);
    }

    #[test]
    fn line_graph_empty() {
        let el = EdgeList::empty(5);
        let lg = line_graph(&el);
        assert_eq!(lg.num_vertices(), 0);
        assert_eq!(lg.num_edges(), 0);
    }

    #[test]
    fn edge_count_formula_matches_construction() {
        for (n, edges) in [
            (4usize, vec![(0u32, 1u32), (1, 2), (2, 3), (0, 3)]),
            (6, vec![(0, 1), (0, 2), (0, 3), (1, 2), (4, 5)]),
        ] {
            let el = EdgeList::from_pairs(n, edges).canonicalize();
            assert_eq!(line_graph(&el).num_edges(), line_graph_edge_count(&el));
        }
    }

    #[test]
    fn line_graph_is_valid() {
        let el = crate::gen::random::random_edge_list(200, 600, 3);
        let lg = line_graph(&el);
        assert!(lg.validate().is_ok());
        assert_eq!(lg.num_vertices(), el.num_edges());
    }
}
