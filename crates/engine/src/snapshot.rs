//! Versioned copy-on-write state snapshots for serving layers.
//!
//! [`Engine::snapshot`](crate::engine::Engine::snapshot) materializes the
//! full CSR graph plus both solution *sets* — the right shape for offline
//! analysis, but far too heavy to rebuild after every update round when all a
//! query front-end needs is membership lookups. [`ServerSnapshot`] is the
//! serving-shaped export: the MIS as a packed bitset and the matching as the
//! per-vertex partner array.
//!
//! Earlier revisions re-copied both arrays after every committed round — an
//! O(n)-word publication cost that bounds the round rate once repairs get
//! cheap. The storage is now **paged**: both arrays are split into fixed
//! [`PAGE_VERTICES`]-vertex pages, each behind an `Arc`. The engine keeps the
//! current snapshot alive and, after a batch, clones and repacks **only the
//! pages the round's deltas touched** (MIS flips for bit pages, endpoints of
//! matching flips for partner pages); untouched pages are shared with every
//! previously published snapshot. Publishing a round therefore costs O(pages
//! touched by the round), not O(n), while readers holding an old snapshot
//! keep an immutable consistent view for free.

use std::sync::Arc;

use greedy_graph::edge_list::Edge;

/// Vertices covered by one snapshot page (also its partner-word count; the
/// MIS page is `PAGE_VERTICES / 64` packed words). 4096 keeps a page's
/// repack cost trivial (16 KiB partners + 512 B bits) while a 500k-vertex
/// snapshot is only ~123 pages of pointers to clone on publication.
pub const PAGE_VERTICES: usize = 4096;

/// 64-bit words per MIS page.
const PAGE_WORDS: usize = PAGE_VERTICES / 64;

/// An immutable membership view of the engine's maintained state: MIS bitset
/// plus matching partner array, stored as copy-on-write pages.
///
/// Equality is exact state equality (bit-for-bit on the MIS, word-for-word on
/// the partners — page padding is deterministic), which is what the server's
/// coherence tests compare against from-scratch recomputes. Cloning is cheap:
/// one `Arc` clone per page, no data copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerSnapshot {
    num_vertices: usize,
    num_edges: usize,
    mis_size: usize,
    matching_size: usize,
    /// MIS membership, vertex `v` at bit `v % 64` of word `(v / 64) %
    /// PAGE_WORDS` of page `v / PAGE_VERTICES`. Tail padding is zero.
    mis_pages: Vec<Arc<[u64]>>,
    /// Matched partner per vertex (`u32::MAX` = unmatched), `PAGE_VERTICES`
    /// entries per page. Tail padding is `u32::MAX`.
    partner_pages: Vec<Arc<[u32]>>,
}

/// Packs one MIS page from the engine's flag array.
fn pack_mis_page(page: usize, in_mis: &[bool]) -> Arc<[u64]> {
    let base = page * PAGE_VERTICES;
    let mut words = [0u64; PAGE_WORDS];
    for (i, &m) in in_mis[base..in_mis.len().min(base + PAGE_VERTICES)]
        .iter()
        .enumerate()
    {
        if m {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    Arc::from(&words[..])
}

/// Copies one partner page from the engine's partner array, padding the tail
/// with `u32::MAX`.
fn pack_partner_page(page: usize, partner: &[u32]) -> Arc<[u32]> {
    let base = page * PAGE_VERTICES;
    let mut out = [u32::MAX; PAGE_VERTICES];
    let end = partner.len().min(base + PAGE_VERTICES);
    out[..end - base].copy_from_slice(&partner[base..end]);
    Arc::from(&out[..])
}

impl ServerSnapshot {
    /// Packs the engine's maintained flags into the paged export form,
    /// repacking every page (the O(n) from-scratch build; incremental
    /// publication goes through the `refresh_*` methods instead).
    pub(crate) fn build(
        num_edges: usize,
        in_mis: &[bool],
        partner: &[u32],
        matching_size: usize,
    ) -> Self {
        let n = in_mis.len();
        debug_assert_eq!(partner.len(), n);
        let pages = n.div_ceil(PAGE_VERTICES);
        Self {
            num_vertices: n,
            num_edges,
            mis_size: in_mis.iter().filter(|&&m| m).count(),
            matching_size,
            mis_pages: (0..pages).map(|p| pack_mis_page(p, in_mis)).collect(),
            partner_pages: (0..pages).map(|p| pack_partner_page(p, partner)).collect(),
        }
    }

    /// Rebuilds a snapshot from flat state: the full MIS bit words (packed
    /// `n.div_ceil(64)` words) and the per-vertex partner array. Sizes are
    /// derived from the data. This is how delta subscribers turn a
    /// reconstructed replica into something byte-comparable with published
    /// snapshots.
    ///
    /// # Panics
    /// Panics if `mis_words` is not exactly `partners.len().div_ceil(64)`
    /// words long or a padding bit past `n` is set.
    pub fn from_parts(num_edges: usize, mis_words: &[u64], partners: &[u32]) -> Self {
        let n = partners.len();
        assert_eq!(mis_words.len(), n.div_ceil(64), "bit words must cover n");
        if !n.is_multiple_of(64) {
            if let Some(&last) = mis_words.last() {
                assert_eq!(last >> (n % 64), 0, "padding bits past n must be zero");
            }
        }
        let pages = n.div_ceil(PAGE_VERTICES);
        let mis_pages = (0..pages)
            .map(|p| {
                let base = p * PAGE_WORDS;
                let mut words = [0u64; PAGE_WORDS];
                let end = mis_words.len().min(base + PAGE_WORDS);
                words[..end - base].copy_from_slice(&mis_words[base..end]);
                Arc::from(&words[..])
            })
            .collect();
        Self {
            num_vertices: n,
            num_edges,
            mis_size: mis_words.iter().map(|w| w.count_ones() as usize).sum(),
            matching_size: partners.iter().filter(|&&p| p != u32::MAX).count() / 2,
            mis_pages,
            partner_pages: (0..pages).map(|p| pack_partner_page(p, partners)).collect(),
        }
    }

    /// Repacks the listed MIS pages from the flag array (copy-on-write: the
    /// old page `Arc`s stay alive inside previously published clones).
    pub(crate) fn refresh_mis_pages(&mut self, pages: &[usize], in_mis: &[bool]) {
        for &p in pages {
            self.mis_pages[p] = pack_mis_page(p, in_mis);
        }
    }

    /// Repacks the listed partner pages from the partner array.
    pub(crate) fn refresh_partner_pages(&mut self, pages: &[usize], partner: &[u32]) {
        for &p in pages {
            self.partner_pages[p] = pack_partner_page(p, partner);
        }
    }

    /// Updates the scalar counters after a round.
    pub(crate) fn set_counts(&mut self, num_edges: usize, mis_size: usize, matching_size: usize) {
        self.num_edges = num_edges;
        self.mis_size = mis_size;
        self.matching_size = matching_size;
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges present when the snapshot was taken.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Size of the MIS.
    pub fn mis_size(&self) -> usize {
        self.mis_size
    }

    /// Number of matched edges.
    pub fn matching_size(&self) -> usize {
        self.matching_size
    }

    /// True when vertex `v` is in the MIS.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn in_mis(&self, v: u32) -> bool {
        assert!(
            (v as usize) < self.num_vertices,
            "ServerSnapshot::in_mis: vertex {v} out of range for n={}",
            self.num_vertices
        );
        let vi = v as usize;
        self.mis_pages[vi / PAGE_VERTICES][(vi % PAGE_VERTICES) / 64] >> (vi % 64) & 1 == 1
    }

    /// The matched partner of vertex `v`, or `None` when unmatched.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn partner_of(&self, v: u32) -> Option<u32> {
        let vi = v as usize;
        assert!(
            vi < self.num_vertices,
            "ServerSnapshot::partner_of: vertex {v} out of range for n={}",
            self.num_vertices
        );
        let p = self.partner_pages[vi / PAGE_VERTICES][vi % PAGE_VERTICES];
        (p != u32::MAX).then_some(p)
    }

    /// Materializes the packed MIS bitset (64 vertices per word, exactly
    /// `n.div_ceil(64)` words). An O(n) copy — audits and full-snapshot
    /// streaming, not the query path.
    pub fn mis_words_vec(&self) -> Vec<u64> {
        let mut words: Vec<u64> = Vec::with_capacity(self.mis_pages.len() * PAGE_WORDS);
        for page in &self.mis_pages {
            words.extend_from_slice(page);
        }
        words.truncate(self.num_vertices.div_ceil(64));
        words
    }

    /// Materializes the per-vertex partner array (`u32::MAX` = unmatched).
    /// An O(n) copy — audits and full-snapshot streaming, not the query path.
    pub fn partners_vec(&self) -> Vec<u32> {
        let mut partner: Vec<u32> = Vec::with_capacity(self.partner_pages.len() * PAGE_VERTICES);
        for page in &self.partner_pages {
            partner.extend_from_slice(page);
        }
        partner.truncate(self.num_vertices);
        partner
    }

    /// Unpacks the MIS as a sorted vertex list.
    pub fn mis_vertices(&self) -> Vec<u32> {
        (0..self.num_vertices as u32)
            .filter(|&v| self.in_mis(v))
            .collect()
    }

    /// The matching as canonical edges, sorted lexicographically.
    pub fn matched_edges(&self) -> Vec<Edge> {
        let mut edges = Vec::with_capacity(self.matching_size);
        for (p, page) in self.partner_pages.iter().enumerate() {
            let base = (p * PAGE_VERTICES) as u32;
            for (i, &w) in page.iter().enumerate() {
                let v = base + i as u32;
                if w != u32::MAX && v < w {
                    edges.push(Edge::new(v, w));
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EdgeBatch, Engine};
    use greedy_graph::gen::random::random_graph;

    #[test]
    fn export_agrees_with_full_snapshot() {
        let mut engine = Engine::from_graph(&random_graph(300, 900, 2), 17);
        for round in 0..3u32 {
            let export = engine.server_snapshot();
            let full = engine.snapshot();
            assert_eq!(export.mis_vertices(), full.mis, "round {round}");
            assert_eq!(export.matched_edges(), full.matching, "round {round}");
            assert_eq!(export.mis_size(), full.mis.len());
            assert_eq!(export.matching_size(), full.matching.len());
            assert_eq!(export.num_edges(), engine.num_edges());
            engine.apply_batch(&EdgeBatch::from_pairs(
                [(round, 200 + round), (round + 50, 250 + round)],
                [(round, 200 + round)],
            ));
        }
    }

    #[test]
    fn membership_queries_match_engine() {
        let engine = Engine::from_graph(&random_graph(257, 700, 5), 3);
        let snap = engine.server_snapshot();
        for v in 0..257u32 {
            assert_eq!(snap.in_mis(v), engine.in_mis(v), "vertex {v}");
        }
        for e in snap.matched_edges() {
            assert_eq!(snap.partner_of(e.u), Some(e.v));
            assert_eq!(snap.partner_of(e.v), Some(e.u));
        }
        // 257 vertices is odd, so a perfect matching is impossible and some
        // vertex must report no partner.
        let unmatched = (0..257u32).find(|&v| snap.partner_of(v).is_none());
        assert!(unmatched.is_some());
    }

    #[test]
    fn incremental_publication_equals_full_rebuild() {
        // The COW pages maintained across batches must stay byte-identical
        // (PartialEq compares page contents) to the O(n) from-scratch pack.
        let mut engine = Engine::from_graph(&random_graph(10_000, 30_000, 9), 21);
        for round in 0..12u32 {
            let batch = EdgeBatch::from_pairs(
                (0..20).map(|i| {
                    let k = round * 100 + i;
                    ((k * 37 + 11) % 10_000, (k * 101 + 13) % 10_000)
                }),
                (0..8).map(|i| {
                    let k = round * 100 + i;
                    ((k * 37 + 11) % 10_000, (k * 101 + 13) % 10_000)
                }),
            );
            engine.apply_batch(&batch);
            assert_eq!(
                engine.server_snapshot(),
                engine.rebuild_server_snapshot(),
                "round {round}: COW snapshot diverged from full rebuild"
            );
        }
    }

    #[test]
    fn publication_cost_is_pages_touched_not_n() {
        // A 2-edge batch on a 200k-vertex graph must touch only a handful of
        // the ~49 + 49 pages, and old snapshots keep sharing the rest.
        let n = 200_000;
        let mut engine = Engine::from_graph(&random_graph(n, 100_000, 4), 13);
        let before = engine.server_snapshot();
        engine.apply_batch(&EdgeBatch::from_pairs([(0, 100_000), (1, 150_000)], []));
        let total_pages = 2 * n.div_ceil(PAGE_VERTICES);
        assert!(
            engine.last_publication_pages() <= 8,
            "2-edge batch repacked {} of {} pages",
            engine.last_publication_pages(),
            total_pages
        );
        // The pre-batch snapshot still answers from its own immutable pages.
        assert_eq!(before.num_edges(), 100_000);
        assert_eq!(engine.server_snapshot(), engine.rebuild_server_snapshot());
    }

    #[test]
    fn from_parts_roundtrips() {
        let engine = Engine::from_graph(&random_graph(1_000, 2_500, 6), 8);
        let snap = engine.server_snapshot();
        let rebuilt = ServerSnapshot::from_parts(
            snap.num_edges(),
            &snap.mis_words_vec(),
            &snap.partners_vec(),
        );
        assert_eq!(rebuilt, snap);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_query_panics() {
        let engine = Engine::new(4, 1);
        engine.server_snapshot().in_mis(4);
    }
}
