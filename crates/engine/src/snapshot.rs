//! Cheap exportable state snapshots for serving layers.
//!
//! [`Engine::snapshot`](crate::engine::Engine::snapshot) materializes the
//! full CSR graph plus both solution *sets* — the right shape for offline
//! analysis, but far too heavy to rebuild after every update round when all a
//! query front-end needs is membership lookups. [`ServerSnapshot`] is the
//! serving-shaped export: the MIS as a packed bitset and the matching as the
//! per-vertex partner array, both straight copies of the engine's maintained
//! state (O(n) words, no sorting, no CSR rebuild, no per-edge work). The
//! `greedy_server` crate publishes one behind an `Arc` after each committed
//! round so readers answer membership queries without touching the engine.

use greedy_graph::edge_list::Edge;

/// An immutable membership view of the engine's maintained state: MIS bitset
/// plus matching partner array.
///
/// Equality is exact state equality (bit-for-bit on the MIS, word-for-word on
/// the partners), which is what the server's coherence tests compare against
/// from-scratch recomputes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerSnapshot {
    num_vertices: usize,
    num_edges: usize,
    /// MIS membership, vertex `v` at bit `v % 64` of word `v / 64`.
    mis_bits: Vec<u64>,
    mis_size: usize,
    /// Matched partner per vertex, `u32::MAX` when unmatched.
    partner: Vec<u32>,
    matching_size: usize,
}

impl ServerSnapshot {
    /// Packs the engine's maintained flags into the export form.
    pub(crate) fn build(
        num_edges: usize,
        in_mis: &[bool],
        partner: &[u32],
        matching_size: usize,
    ) -> Self {
        let n = in_mis.len();
        debug_assert_eq!(partner.len(), n);
        let mut mis_bits = vec![0u64; n.div_ceil(64)];
        let mut mis_size = 0usize;
        for (v, &m) in in_mis.iter().enumerate() {
            if m {
                mis_bits[v / 64] |= 1 << (v % 64);
                mis_size += 1;
            }
        }
        Self {
            num_vertices: n,
            num_edges,
            mis_bits,
            mis_size,
            partner: partner.to_vec(),
            matching_size,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges present when the snapshot was taken.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Size of the MIS.
    pub fn mis_size(&self) -> usize {
        self.mis_size
    }

    /// Number of matched edges.
    pub fn matching_size(&self) -> usize {
        self.matching_size
    }

    /// True when vertex `v` is in the MIS.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn in_mis(&self, v: u32) -> bool {
        assert!(
            (v as usize) < self.num_vertices,
            "ServerSnapshot::in_mis: vertex {v} out of range for n={}",
            self.num_vertices
        );
        self.mis_bits[v as usize / 64] >> (v % 64) & 1 == 1
    }

    /// The matched partner of vertex `v`, or `None` when unmatched.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn partner_of(&self, v: u32) -> Option<u32> {
        let p = self.partner[v as usize];
        (p != u32::MAX).then_some(p)
    }

    /// The packed MIS bitset (64 vertices per word).
    pub fn mis_bits(&self) -> &[u64] {
        &self.mis_bits
    }

    /// The per-vertex partner array (`u32::MAX` = unmatched).
    pub fn partners(&self) -> &[u32] {
        &self.partner
    }

    /// Unpacks the MIS as a sorted vertex list.
    pub fn mis_vertices(&self) -> Vec<u32> {
        (0..self.num_vertices as u32)
            .filter(|&v| self.in_mis(v))
            .collect()
    }

    /// The matching as canonical edges, sorted lexicographically.
    pub fn matched_edges(&self) -> Vec<Edge> {
        self.partner
            .iter()
            .enumerate()
            .filter(|&(v, &p)| p != u32::MAX && (v as u32) < p)
            .map(|(v, &p)| Edge::new(v as u32, p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{EdgeBatch, Engine};
    use greedy_graph::gen::random::random_graph;

    #[test]
    fn export_agrees_with_full_snapshot() {
        let mut engine = Engine::from_graph(&random_graph(300, 900, 2), 17);
        for round in 0..3u32 {
            let export = engine.server_snapshot();
            let full = engine.snapshot();
            assert_eq!(export.mis_vertices(), full.mis, "round {round}");
            assert_eq!(export.matched_edges(), full.matching, "round {round}");
            assert_eq!(export.mis_size(), full.mis.len());
            assert_eq!(export.matching_size(), full.matching.len());
            assert_eq!(export.num_edges(), engine.num_edges());
            engine.apply_batch(&EdgeBatch::from_pairs(
                [(round, 200 + round), (round + 50, 250 + round)],
                [(round, 200 + round)],
            ));
        }
    }

    #[test]
    fn membership_queries_match_engine() {
        let engine = Engine::from_graph(&random_graph(257, 700, 5), 3);
        let snap = engine.server_snapshot();
        for v in 0..257u32 {
            assert_eq!(snap.in_mis(v), engine.in_mis(v), "vertex {v}");
        }
        for e in snap.matched_edges() {
            assert_eq!(snap.partner_of(e.u), Some(e.v));
            assert_eq!(snap.partner_of(e.v), Some(e.u));
        }
        // 257 vertices is odd, so a perfect matching is impossible and some
        // vertex must report no partner.
        let unmatched = (0..257u32).find(|&v| snap.partner_of(v).is_none());
        assert!(unmatched.is_some());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_query_panics() {
        let engine = Engine::new(4, 1);
        engine.server_snapshot().in_mis(4);
    }
}
