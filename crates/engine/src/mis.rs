//! Incremental maintenance of the greedy MIS.
//!
//! The maintained invariant is the greedy fixed point: vertex `v` is in the
//! MIS iff none of its earlier-priority neighbors is. This module adapts the
//! engine's [`DynGraph`] to [`greedy_core::dag::ConflictDag`] and drives
//! [`greedy_core::dag::repair_fixed_point`] — the paper's round machinery
//! generalized to start from a dirty frontier — over it.
//!
//! Per batch, the dirty frontier is simply the endpoints of every effectively
//! inserted or deleted edge: a vertex's decision depends only on its
//! earlier-priority neighbors, so an edge change can affect (directly) only
//! its two endpoints, and the driver propagates transitively to later
//! vertices whenever a decision actually flips.

use greedy_core::dag::{repair_fixed_point_with_scratch, ConflictDag, RepairScratch, RepairStats};
use rayon::prelude::*;

use crate::dyn_graph::DynGraph;
use crate::priority::vertex_priority;
use crate::sharded::ShardScope;

/// [`ConflictDag`] view of a dynamic graph under hashed vertex priorities.
///
/// With a [`ShardScope`] the conflict lists are restricted to *owned*
/// vertices: seeds and flip wake-ups stay inside the shard, and propagation
/// to vertices owned by other shards travels through the sharded engine's
/// exchange rounds instead. [`MisDag::decide`] still scans the full
/// adjacency — the shard's arena holds every edge incident to an owned
/// vertex and the membership flags of foreign neighbors are kept in sync at
/// exchange-round boundaries, so the decision rule itself never narrows.
pub(crate) struct MisDag<'a> {
    graph: &'a DynGraph,
    /// Cached `hash64(seed, v)` per vertex, so priority queries are a load.
    prio: &'a [u64],
    /// When set, conflicts (and therefore wake-ups) are confined to the
    /// scope's vertex range.
    scope: Option<ShardScope>,
}

impl ConflictDag for MisDag<'_> {
    /// `(hash, vertex id)` — vertex-indexed items tie-break on the id.
    type Priority = (u64, u32);

    fn len(&self) -> usize {
        self.graph.num_vertices()
    }

    fn priority(&self, v: u32) -> (u64, u32) {
        (self.prio[v as usize], v)
    }

    fn for_each_conflict(&self, v: u32, f: &mut dyn FnMut(u32)) {
        match self.scope {
            None => {
                for &w in self.graph.neighbors(v) {
                    f(w);
                }
            }
            Some(scope) => {
                for &w in self.graph.neighbors(v) {
                    if scope.owns(w) {
                        f(w);
                    }
                }
            }
        }
    }

    /// Full-adjacency decision: unlike the (possibly scoped) conflict walk,
    /// the rule always consults every neighbor. Identical to the trait
    /// default when no scope is set.
    fn decide(&self, v: u32, accepted: &[bool]) -> bool {
        let pv = self.priority(v);
        !self
            .graph
            .neighbors(v)
            .iter()
            .any(|&w| accepted[w as usize] && self.priority(w) < pv)
    }
}

/// The greedy decision for vertex `v` on the current flags: in the MIS iff
/// no earlier-priority neighbor is. Used by the sharded engine to gate
/// wake-ups derived from incoming boundary flips.
pub(crate) fn mis_decide(graph: &DynGraph, prio: &[u64], in_mis: &[bool], v: u32) -> bool {
    let pv = (prio[v as usize], v);
    !graph
        .neighbors(v)
        .iter()
        .any(|&w| in_mis[w as usize] && (prio[w as usize], w) < pv)
}

/// Precomputes the per-vertex priority hashes for `seed`.
pub(crate) fn vertex_priorities(n: usize, seed: u64) -> Vec<u64> {
    (0..n as u32)
        .into_par_iter()
        .map(|v| vertex_priority(seed, v).0)
        .collect()
}

/// Re-decides `seeds` (endpoints of the batch's edge changes) and everything
/// downstream, mutating `in_mis` to the greedy fixed point on the current
/// graph. The engine passes its long-lived `scratch` so a tiny batch costs
/// O(Δ), not O(n). Returns the net-changed vertices (sorted) and repair
/// counters.
pub(crate) fn repair_mis(
    graph: &DynGraph,
    prio: &[u64],
    in_mis: &mut [bool],
    seeds: &[u32],
    scratch: &mut RepairScratch,
) -> (Vec<u32>, RepairStats) {
    repair_mis_scoped(graph, prio, in_mis, seeds, scratch, None)
}

/// [`repair_mis`] confined to a shard: only vertices the scope owns are
/// seeded or woken, so the returned net-changed set is owned-only; foreign
/// membership flags are read (the decision rule is global) but never
/// written. Callers pass owned seeds.
pub(crate) fn repair_mis_scoped(
    graph: &DynGraph,
    prio: &[u64],
    in_mis: &mut [bool],
    seeds: &[u32],
    scratch: &mut RepairScratch,
    scope: Option<ShardScope>,
) -> (Vec<u32>, RepairStats) {
    debug_assert!(
        scope.is_none_or(|sc| seeds.iter().all(|&v| sc.owns(v))),
        "scoped MIS repair seeded with a foreign vertex"
    );
    let mut dag = MisDag { graph, prio, scope };
    repair_fixed_point_with_scratch(&mut dag, in_mis, seeds, scratch)
}

/// Computes the greedy MIS from scratch (all vertices seeded over an
/// all-`false` state) — used at engine construction.
pub(crate) fn mis_from_scratch(
    graph: &DynGraph,
    prio: &[u64],
    scratch: &mut RepairScratch,
) -> (Vec<bool>, RepairStats) {
    let mut in_mis = vec![false; graph.num_vertices()];
    let seeds: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    let (_, stats) = repair_mis(graph, prio, &mut in_mis, &seeds, scratch);
    (in_mis, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::vertex_permutation;
    use greedy_core::mis::sequential::sequential_mis;
    use greedy_graph::edge_list::Edge;
    use greedy_graph::gen::random::random_graph;

    fn mis_of(flags: &[bool]) -> Vec<u32> {
        flags
            .iter()
            .enumerate()
            .filter_map(|(v, &a)| a.then_some(v as u32))
            .collect()
    }

    #[test]
    fn scratch_mis_equals_sequential_under_hashed_order() {
        for seed in 0..4 {
            let g = random_graph(400, 1_500, seed);
            let dyn_g = DynGraph::from_graph(&g);
            let prio = vertex_priorities(400, seed + 7);
            let (flags, _) = mis_from_scratch(&dyn_g, &prio, &mut RepairScratch::new());
            let pi = vertex_permutation(400, seed + 7);
            assert_eq!(mis_of(&flags), sequential_mis(&g, &pi), "seed {seed}");
        }
    }

    #[test]
    fn single_edge_insert_repairs_to_scratch_result() {
        let g = random_graph(200, 500, 1);
        let mut dyn_g = DynGraph::from_graph(&g);
        let prio = vertex_priorities(200, 5);
        let mut scratch = RepairScratch::new();
        let (mut flags, _) = mis_from_scratch(&dyn_g, &prio, &mut scratch);
        for (u, v) in [(0u32, 150u32), (3, 77), (180, 2)] {
            let added = dyn_g.insert_edges(&[Edge::new(u, v)]);
            if added.is_empty() {
                continue;
            }
            let before = flags.clone();
            let (changed, _) = repair_mis(&dyn_g, &prio, &mut flags, &[u, v], &mut scratch);
            let (expected, _) = mis_from_scratch(&dyn_g, &prio, &mut RepairScratch::new());
            assert_eq!(flags, expected, "after inserting ({u}, {v})");
            let flipped: Vec<u32> = (0..200u32)
                .filter(|&x| before[x as usize] != flags[x as usize])
                .collect();
            assert_eq!(changed, flipped, "reported delta must be the net flips");
        }
    }
}
