//! Engine-internals instrumentation: an ordinary [`EngineMetrics`] value the
//! serving layer attaches to an [`Engine`](crate::engine::Engine) — no
//! globals, no background threads.
//!
//! The engine's data structures already keep exact cumulative counters
//! (rebuilds, relocations, per-trigger attribution) because its tests assert
//! amortization bounds against them. This module turns those into registry
//! instruments once per batch: cumulative counts become counter deltas,
//! point-in-time arena levels become gauges, and per-batch repair work
//! becomes histogram samples — so the server's exposition shows the engine's
//! internals next to its own commit pipeline.
//!
//! Everything is registered up front in [`EngineMetrics::new`], mirroring
//! the server registry's policy: a metric that was never recorded renders as
//! zero instead of silently disappearing, which is what lets the bench
//! harness hard-fail on impossible values. Building with `obs-off` compiles
//! every recording into a no-op.

use std::sync::Arc;

use greedy_core::dag::RepairStats;
use greedy_obs::{Counter, EventJournal, Gauge, Histogram, Registry};

use crate::dyn_graph::{DynGraph, RebuildTrigger};

/// Registry-backed instruments over the engine's internals, recorded once
/// per applied batch (see [`Engine::attach_metrics`]).
///
/// Cloning shares the instruments (they are `Arc`s): the server keeps one
/// clone for exposition and hands the other to the engine. The
/// cumulative-to-delta bookkeeping is per-clone, so exactly one clone — the
/// attached one — must do the recording.
///
/// [`Engine::attach_metrics`]: crate::engine::Engine::attach_metrics
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    registry: Arc<Registry>,
    journal: Arc<EventJournal>,
    arena_capacity: Arc<Gauge>,
    arena_live: Arc<Gauge>,
    arena_dead: Arc<Gauge>,
    arena_slack: Arc<Gauge>,
    free_slots: Arc<Gauge>,
    matching_pending_cap: Arc<Gauge>,
    rebuilds_total: Arc<Counter>,
    /// Per-trigger rebuild counters, indexed like [`RebuildTrigger::ALL`].
    /// Text exposition has no labels, so the trigger rides in the name:
    /// `engine_rebuilds_<label>_total`.
    rebuilds_by: [Arc<Counter>; 4],
    relocations_total: Arc<Counter>,
    mis_repair_work: Arc<Histogram>,
    mis_repair_frontier: Arc<Histogram>,
    matching_repair_work: Arc<Histogram>,
    matching_repair_frontier: Arc<Histogram>,
    /// Last cumulative counts pulled from the graph, for delta conversion.
    seen_rebuilds: u64,
    seen_rebuilds_by: [u64; 4],
    seen_relocations: u64,
}

/// The registry name of a per-trigger rebuild counter.
pub fn rebuild_counter_name(trigger: RebuildTrigger) -> String {
    format!("engine_rebuilds_{}_total", trigger.label())
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::new(Arc::new(EventJournal::default()))
    }
}

impl EngineMetrics {
    /// Instruments over a fresh registry, feeding rare structural events
    /// (arena rebuilds/relocations) into `journal`. Pass the server's shared
    /// journal so engine events interleave with WAL and feed events in
    /// timestamp order.
    pub fn new(journal: Arc<EventJournal>) -> Self {
        let registry = Arc::new(Registry::new());
        let r = &registry;
        Self {
            arena_capacity: r.gauge("engine_arena_capacity"),
            arena_live: r.gauge("engine_arena_live"),
            arena_dead: r.gauge("engine_arena_dead"),
            arena_slack: r.gauge("engine_arena_slack"),
            free_slots: r.gauge("engine_free_slots"),
            matching_pending_cap: r.gauge("engine_matching_pending_index_cap"),
            rebuilds_total: r.counter("engine_rebuilds_total"),
            rebuilds_by: RebuildTrigger::ALL.map(|t| r.counter(&rebuild_counter_name(t))),
            relocations_total: r.counter("engine_relocations_total"),
            mis_repair_work: r.histogram("engine_mis_repair_work"),
            mis_repair_frontier: r.histogram("engine_mis_repair_frontier"),
            matching_repair_work: r.histogram("engine_matching_repair_work"),
            matching_repair_frontier: r.histogram("engine_matching_repair_frontier"),
            registry,
            journal,
            seen_rebuilds: 0,
            seen_rebuilds_by: [0; 4],
            seen_relocations: 0,
        }
    }

    /// The registry holding every engine instrument. The server merges it
    /// into its own exposition with [`Registry::merge`].
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The event journal structural events feed into.
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.journal
    }

    /// Records one applied batch: arena levels as gauges, cumulative
    /// structural counts as counter deltas (the first call therefore picks
    /// up pre-attach history — the initial build, recovery replay), and the
    /// batch's repair work as histogram samples.
    pub(crate) fn record_batch(
        &mut self,
        graph: &DynGraph,
        matching_pending_cap: usize,
        mis: &RepairStats,
        matching: &RepairStats,
    ) {
        if !greedy_obs::ENABLED {
            return;
        }
        let capacity = graph.arena_capacity() as i64;
        let live = 2 * graph.num_edges() as i64;
        let dead = graph.dead_entries() as i64;
        self.arena_capacity.set(capacity);
        self.arena_live.set(live);
        self.arena_dead.set(dead);
        self.arena_slack.set(capacity - live - dead);
        self.free_slots.set(graph.free_list_len() as i64);
        self.matching_pending_cap.set(matching_pending_cap as i64);

        let rebuilds = graph.rebuilds();
        self.rebuilds_total.add(rebuilds - self.seen_rebuilds);
        self.seen_rebuilds = rebuilds;
        for (i, &t) in RebuildTrigger::ALL.iter().enumerate() {
            let now = graph.rebuilds_for(t);
            self.rebuilds_by[i].add(now - self.seen_rebuilds_by[i]);
            self.seen_rebuilds_by[i] = now;
        }
        let relocations = graph.relocations();
        self.relocations_total
            .add(relocations - self.seen_relocations);
        self.seen_relocations = relocations;

        self.mis_repair_work.record(mis.decided);
        self.mis_repair_frontier.record(mis.max_frontier);
        self.matching_repair_work.record(matching.decided);
        self.matching_repair_frontier.record(matching.max_frontier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EdgeBatch, Engine};
    use greedy_graph::gen::random::random_graph;

    #[test]
    fn every_engine_metric_is_registered_up_front() {
        let names = EngineMetrics::default().registry().names();
        let mut required = vec![
            "engine_arena_capacity".to_string(),
            "engine_arena_live".to_string(),
            "engine_arena_dead".to_string(),
            "engine_arena_slack".to_string(),
            "engine_free_slots".to_string(),
            "engine_matching_pending_index_cap".to_string(),
            "engine_rebuilds_total".to_string(),
            "engine_relocations_total".to_string(),
            "engine_mis_repair_work".to_string(),
            "engine_mis_repair_frontier".to_string(),
            "engine_matching_repair_work".to_string(),
            "engine_matching_repair_frontier".to_string(),
        ];
        required.extend(RebuildTrigger::ALL.map(rebuild_counter_name));
        for name in required {
            assert!(names.contains(&name), "{name} not registered up front");
        }
    }

    #[test]
    fn attached_engine_records_internals() {
        let mut engine = Engine::from_graph(&random_graph(300, 1_200, 3), 7);
        let metrics = EngineMetrics::default();
        let shared = metrics.clone();
        engine.attach_metrics(metrics);
        engine.apply_batch(&EdgeBatch::from_pairs(
            [(0, 299), (1, 298), (2, 297)],
            [(0, 299)],
        ));
        if !greedy_obs::ENABLED {
            assert_eq!(shared.registry().counter("engine_rebuilds_total").get(), 0);
            return;
        }
        let r = shared.registry();
        assert!(
            r.counter("engine_rebuilds_total").get() >= 1,
            "the first record must pick up the initial bulk build"
        );
        let by_reason: u64 = RebuildTrigger::ALL
            .iter()
            .map(|&t| r.counter(&rebuild_counter_name(t)).get())
            .sum();
        assert_eq!(
            by_reason,
            r.counter("engine_rebuilds_total").get(),
            "per-trigger counters must tile the total"
        );
        assert!(r.gauge("engine_arena_capacity").get() > 0);
        assert!(r.gauge("engine_arena_live").get() > 0);
        assert!(
            r.gauge("engine_arena_capacity").get()
                >= r.gauge("engine_arena_live").get() + r.gauge("engine_arena_dead").get(),
            "levels must tile the arena"
        );
        assert!(r.histogram("engine_mis_repair_work").snapshot().count >= 1);
        assert!(r.histogram("engine_matching_repair_work").snapshot().count >= 1);
    }

    #[test]
    fn repeated_batches_do_not_double_count_structural_history() {
        let mut engine = Engine::from_graph(&random_graph(100, 400, 5), 9);
        let metrics = EngineMetrics::default();
        let shared = metrics.clone();
        engine.attach_metrics(metrics);
        engine.apply_batch(&EdgeBatch::from_pairs([(0, 99)], []));
        let after_first = shared.registry().counter("engine_rebuilds_total").get();
        // An empty batch performs no structural work; the cumulative-to-delta
        // conversion must not re-add the history.
        engine.apply_batch(&EdgeBatch::new());
        assert_eq!(
            shared.registry().counter("engine_rebuilds_total").get(),
            after_first
        );
    }
}
