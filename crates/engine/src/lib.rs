//! # greedy-engine
//!
//! A batch-dynamic maintenance engine for the greedy MIS and maximal
//! matching of *"Greedy Sequential Maximal Independent Set and Matching are
//! Parallel on Average"* (Blelloch, Fineman, Shun; SPAA 2012).
//!
//! The paper's central fact makes dynamic maintenance both possible and
//! checkable: under **fixed random priorities** the greedy MIS/matching is
//! *unique* — the lexicographically-first solution — so after any batch of
//! edge insertions and deletions there is exactly one correct repaired state,
//! and it must equal a from-scratch greedy run on the new graph. This crate
//! maintains that state incrementally, in the bulk-synchronous
//! pseudo-streaming style: updates arrive as batches, each batch is applied
//! atomically, and only the *affected* part of the solution is recomputed.
//!
//! ## Pieces
//!
//! * [`dyn_graph::DynGraph`] — a flat **slack-CSR** arena (per-vertex
//!   segments with PMA-style gaps, local in-segment shuffles on insert,
//!   amortized parallel rebuilds on overflow) under parallel batch
//!   insert/delete (radix-sort + per-segment merge, via
//!   `greedy_prims::sort`), convertible to/from
//!   [`greedy_graph::csr::Graph`]. A free-list allocator gives every live
//!   edge a **stable dense slot id** that survives unrelated batches;
//! * [`priority`] — the update-stable hashed priorities (per vertex and per
//!   edge-endpoint-pair) the states are maintained under, plus helpers that
//!   materialize them as [`greedy_prims::permutation::Permutation`]s for the
//!   static oracle algorithms;
//! * incremental repair — MIS *and* matching both ride the reusable round
//!   machinery [`greedy_core::dag::repair_fixed_point`] (the rounds
//!   algorithm generalized to a dirty frontier) and share one
//!   [`greedy_core::dag::RepairScratch`]: the stable slot ids make the
//!   matching a [`greedy_core::dag::ConflictDag`] over dense edge items,
//!   retiring the old sequential priority-heap repair;
//! * [`engine::Engine`] — the service-facing facade:
//!   [`apply_batch`](engine::Engine::apply_batch) /
//!   [`snapshot`](engine::Engine::snapshot) /
//!   [`stats`](engine::Engine::stats), reporting per-batch changed-vertex
//!   deltas and changed-edge deltas keyed by stable slot id.
//!
//! ## Example
//!
//! ```
//! use greedy_engine::prelude::*;
//! use greedy_graph::gen::random::random_graph;
//!
//! let mut engine = Engine::from_graph(&random_graph(1_000, 3_000, 7), 42);
//! let mut batch = EdgeBatch::new();
//! batch.insert(0, 500).insert(1, 501).delete(0, 500);
//! let report = engine.apply_batch(&batch);
//! assert!(report.edges_inserted <= 2);
//!
//! // The maintained state is exactly the from-scratch greedy result.
//! let snap = engine.snapshot();
//! assert_eq!(snap.mis, {
//!     use greedy_core::mis::sequential::sequential_mis;
//!     let pi = vertex_permutation(engine.num_vertices(), engine.seed());
//!     sequential_mis(&snap.graph, &pi)
//! });
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dyn_graph;
pub mod engine;
pub mod matching;
pub mod metrics;
mod mis;
pub mod priority;
pub mod sharded;
pub mod snapshot;

/// Commonly used items.
pub mod prelude {
    pub use crate::dyn_graph::{DynGraph, RebuildTrigger, SlotUpdate};
    pub use crate::engine::{
        BatchReport, BatchTimings, CommitEngine, EdgeBatch, Engine, EngineStats, Snapshot,
    };
    pub use crate::matching::MatchDelta;
    pub use crate::metrics::EngineMetrics;
    pub use crate::priority::{edge_permutation, edge_priority, vertex_permutation};
    pub use crate::sharded::{ShardMap, ShardScope, ShardedEngine};
    pub use crate::snapshot::ServerSnapshot;
}
