//! Vertex-partitioned sharding of the batch-dynamic engine.
//!
//! [`ShardedEngine`] splits the vertex set into `S` contiguous ranges and
//! gives every shard its **own** slack-CSR arena, matching state, MIS flags,
//! and repair scratch. A shard's arena holds every edge incident to a vertex
//! it owns, so a *cross* edge (endpoints in two shards) exists in both
//! arenas — the owner is the shard of its canonical min endpoint, the other
//! copy is a ghost the owner's decisions are mirrored into.
//!
//! A commit is two phases per server round, MPC-style:
//!
//! 1. **Local phase** — the batch is split by incidence and every shard, in
//!    parallel, applies its structural sub-batch and repairs both greedy
//!    fixed points *scoped to the slots/vertices it owns* (conflict walks
//!    and wake-ups never leave the shard).
//! 2. **Exchange rounds** — shards swap the boundary effects of the pass:
//!    every owned MIS flip, every owned *cross*-edge matched flip, and every
//!    owned partner entry written. Each shard applies the incoming flips
//!    (change-gated, in ascending sender order — deterministic), wakes the
//!    owned items whose greedy decision no longer matches their state, and
//!    repairs again. The loop runs until no shard emits a message: with
//!    fixed priorities the greedy solutions are *unique*, so this chaotic
//!    relaxation can only quiesce at the same state the single engine
//!    reaches (well-founded induction on the priority order), and every
//!    message is change-gated, so it terminates.
//!
//! The **merge step** then runs sequentially: it replays the globally merged
//! effective deletion/insertion lists through a [`SlotDirectory`] that
//! mirrors the single arena's LIFO slot allocator — so the *public* slot ids
//! in deltas, WAL records, and wire frames are identical for every shard
//! count — folds the per-shard entry maps into the global net delta, and
//! refreshes the copy-on-write serving pages. The published snapshot, delta
//! stream, and WAL bytes are therefore byte-identical to a single-engine
//! run, which the shard-count sweep tests assert directly.
//!
//! (The ISSUE sketch suggested encoding the shard in the high bits of the
//! public slot id; that would make ids depend on `S` and break byte
//! identity, so the directory keeps the single-arena id space instead and
//! shard-local slots stay private.)

use std::collections::HashMap;
use std::sync::Arc;

use greedy_core::dag::{RepairScratch, RepairStats};
use greedy_graph::csr::Graph;
use greedy_graph::edge_list::{Edge, EdgeList};
use greedy_prims::util::par_map_blocks;

use crate::dyn_graph::DynGraph;
use crate::engine::{BatchReport, BatchTimings, EdgeBatch, EngineStats, Snapshot};
use crate::matching::{matching_from_scratch, MatchDelta, MatchingState};
use crate::metrics::EngineMetrics;
use crate::mis::{mis_decide, mis_from_scratch, repair_mis_scoped, vertex_priorities};
use crate::snapshot::{ServerSnapshot, PAGE_VERTICES};

/// Exchange rounds after which a commit panics instead of looping — the
/// greedy fixed point's dependence chains are far shorter than this; hitting
/// the cap means the exchange protocol itself is broken.
const MAX_EXCHANGE_ROUNDS: u64 = 10_000;

/// The contiguous vertex range a shard owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardScope {
    /// First owned vertex.
    pub start: u32,
    /// One past the last owned vertex.
    pub end: u32,
}

impl ShardScope {
    /// True when this scope owns vertex `v`.
    #[inline]
    pub fn owns(&self, v: u32) -> bool {
        self.start <= v && v < self.end
    }
}

/// The vertex partition: `S` contiguous blocks of `ceil(n / S)` vertices
/// (the last block takes the remainder). An edge is owned by the shard of
/// its canonical min endpoint.
#[derive(Debug, Clone)]
pub struct ShardMap {
    n: u32,
    shards: u32,
    block: u32,
}

impl ShardMap {
    /// A partition of `n` vertices into `shards` contiguous blocks.
    ///
    /// # Panics
    /// Panics when `shards` is 0 or `n` exceeds `u32` vertex ids.
    pub fn new(n: usize, shards: usize) -> Self {
        assert!(shards >= 1, "ShardMap: at least one shard");
        let n32 = u32::try_from(n).expect("ShardMap: too many vertices for u32 ids");
        let s = u32::try_from(shards).expect("ShardMap: shard count exceeds u32");
        let block = if n32 == 0 { 1 } else { n32.div_ceil(s).max(1) };
        Self {
            n: n32,
            shards: s,
            block,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The shard owning vertex `v`.
    #[inline]
    pub fn shard_of(&self, v: u32) -> u32 {
        (v / self.block).min(self.shards - 1)
    }

    /// The vertex range shard `i` owns.
    pub fn scope(&self, i: u32) -> ShardScope {
        debug_assert!(i < self.shards);
        let start = (u64::from(i) * u64::from(self.block)).min(u64::from(self.n)) as u32;
        let end = if i + 1 == self.shards {
            self.n
        } else {
            (u64::from(i + 1) * u64::from(self.block)).min(u64::from(self.n)) as u32
        };
        ShardScope { start, end }
    }

    /// The shard owning (canonical) edge `e` — its min endpoint's shard.
    #[inline]
    pub fn owner(&self, e: Edge) -> u32 {
        self.shard_of(e.canonical().u)
    }

    /// True when `e`'s endpoints live in different shards.
    #[inline]
    pub fn is_cross(&self, e: Edge) -> bool {
        self.shard_of(e.u) != self.shard_of(e.v)
    }

    /// Splits a batch by **incidence**: every (canonicalized, non-loop) edge
    /// goes to each endpoint's shard, so a cross edge appears in both
    /// sub-batches (the non-owner applies it as a ghost). Restricting each
    /// sub-batch to the edges that shard *owns* reassembles the original
    /// batch exactly — the property the proptest suite pins down.
    pub fn split_batch(&self, batch: &EdgeBatch) -> Vec<EdgeBatch> {
        let mut subs = vec![EdgeBatch::new(); self.shards()];
        let mut route = |edges: &[Edge], pick: fn(&mut EdgeBatch) -> &mut Vec<Edge>| {
            for &raw in edges {
                if raw.is_self_loop() {
                    continue;
                }
                let e = raw.canonical();
                let a = self.shard_of(e.u);
                let b = self.shard_of(e.v);
                pick(&mut subs[a as usize]).push(e);
                if b != a {
                    pick(&mut subs[b as usize]).push(e);
                }
            }
        };
        route(&batch.insertions, |b| &mut b.insertions);
        route(&batch.deletions, |b| &mut b.deletions);
        subs
    }
}

/// One exchange round's outgoing messages from a shard: the boundary-visible
/// effects of its most recent repair pass, all about items it *owns*.
#[derive(Debug, Default)]
struct Outbox {
    /// Net MIS flips of owned vertices: `(vertex, in_mis now)`.
    mis: Vec<(u32, bool)>,
    /// Net matched flips of owned **cross** edges: `(edge, matched now)`.
    /// Broadcast; shards whose arena lacks the edge skip it.
    matched: Vec<(Edge, bool)>,
    /// Owned partner entries written this pass: `(vertex, partner now)`.
    partner: Vec<(u32, u32)>,
}

impl Outbox {
    fn is_empty(&self) -> bool {
        self.mis.is_empty() && self.matched.is_empty() && self.partner.is_empty()
    }
}

/// One shard: an arena over the full vertex-id space holding only the edges
/// incident to its owned range, plus its scoped repair state and the
/// per-commit delta bookkeeping.
#[derive(Debug)]
struct Shard {
    scope: ShardScope,
    graph: DynGraph,
    /// Full-length MIS flags. Invariant: identical across shards at every
    /// exchange-round boundary (owned flips are broadcast to everyone).
    in_mis: Vec<bool>,
    matching: MatchingState,
    scratch: RepairScratch,
    metrics: Option<EngineMetrics>,
    /// Owned vertices touched this commit → membership at commit entry.
    entry_mis: HashMap<u32, bool>,
    /// Owned edges touched this commit → (edge, matched at commit entry).
    entry_match: HashMap<u64, (Edge, bool)>,
    outbox: Outbox,
    /// Effective structural changes of this commit, restricted to owned
    /// edges (canonical, sorted — the order `delete_edges`/`insert_edges`
    /// report).
    owned_del: Vec<Edge>,
    owned_ins: Vec<Edge>,
    /// Repair counters accumulated across this commit's passes.
    mis_stats: RepairStats,
    matching_stats: RepairStats,
}

fn accumulate(total: &mut RepairStats, part: RepairStats) {
    total.rounds += part.rounds;
    total.decided += part.decided;
    total.flips += part.flips;
    total.max_frontier = total.max_frontier.max(part.max_frontier);
}

impl Shard {
    /// Folds a pass's net MIS flips into the commit bookkeeping and the
    /// outbox (every owned flip is broadcast — the all-shards-identical
    /// flags invariant is what keeps ghost decisions and serving-page
    /// refreshes exact).
    fn fold_mis(&mut self, changed: Vec<u32>, stats: RepairStats) {
        accumulate(&mut self.mis_stats, stats);
        for v in changed {
            let now = self.in_mis[v as usize];
            self.entry_mis.entry(v).or_insert(!now);
            self.outbox.mis.push((v, now));
        }
    }

    /// Folds a pass's net matching deltas (owned edges only) into the commit
    /// bookkeeping; cross-edge flips go out on the wire.
    fn fold_matching(&mut self, map: &ShardMap, deltas: Vec<MatchDelta>, stats: RepairStats) {
        accumulate(&mut self.matching_stats, stats);
        for d in deltas {
            debug_assert!(self.scope.owns(d.edge.u), "delta for a foreign edge");
            self.entry_match
                .entry(d.edge.sort_key())
                .or_insert((d.edge, !d.matched));
            if map.is_cross(d.edge) {
                self.outbox.matched.push((d.edge, d.matched));
            }
        }
    }

    /// Moves this pass's owned partner writes into the outbox with their
    /// settled values.
    fn drain_partner_outbox(&mut self) {
        for x in self.matching.drain_dirty_partners() {
            if self.scope.owns(x) {
                self.outbox.partner.push((x, self.matching.partner_of(x)));
            }
        }
    }

    /// Phase 1 of a commit: apply the structural sub-batch and run both
    /// scoped repairs from the batch's dirty frontier.
    fn begin_commit(&mut self, sub: &EdgeBatch, prio: &[u64], seed: u64, map: &ShardMap) {
        let deleted = self.graph.delete_edges(&sub.deletions);
        let inserted = self.graph.insert_edges(&sub.insertions);
        self.owned_del = deleted
            .iter()
            .map(|u| u.edge)
            .filter(|e| self.scope.owns(e.u))
            .collect();
        self.owned_ins = inserted
            .iter()
            .map(|u| u.edge)
            .filter(|e| self.scope.owns(e.u))
            .collect();

        let (mdeltas, mstats) =
            self.matching
                .repair_batch(&self.graph, seed, &deleted, &inserted, &mut self.scratch);
        self.fold_matching(map, mdeltas, mstats);
        self.drain_partner_outbox();

        // Same MIS dirty-frontier gate as the single engine, restricted to
        // owned endpoints (each shard seeds its own side of a cross edge).
        let vp = |x: u32| (prio[x as usize], x);
        let mut seeds: Vec<u32> = Vec::new();
        for upd in &deleted {
            for (x, y) in [(upd.edge.u, upd.edge.v), (upd.edge.v, upd.edge.u)] {
                if self.scope.owns(x)
                    && !self.in_mis[x as usize]
                    && self.in_mis[y as usize]
                    && vp(y) < vp(x)
                {
                    seeds.push(x);
                }
            }
        }
        for upd in &inserted {
            for (x, y) in [(upd.edge.u, upd.edge.v), (upd.edge.v, upd.edge.u)] {
                if self.scope.owns(x)
                    && self.in_mis[x as usize]
                    && self.in_mis[y as usize]
                    && vp(y) < vp(x)
                {
                    seeds.push(x);
                }
            }
        }
        seeds.sort_unstable();
        seeds.dedup();
        let (changed, stats) = repair_mis_scoped(
            &self.graph,
            prio,
            &mut self.in_mis,
            &seeds,
            &mut self.scratch,
            Some(self.scope),
        );
        self.fold_mis(changed, stats);
    }

    /// One exchange round: apply every other shard's outbox (ascending
    /// sender order — deterministic), wake the owned items whose greedy
    /// decision moved, and repair to the local fixed point again.
    fn exchange_round(
        &mut self,
        idx: usize,
        outboxes: &[Outbox],
        prio: &[u64],
        seed: u64,
        map: &ShardMap,
    ) {
        let mut mis_changed_in: Vec<u32> = Vec::new();
        let mut touched_vertices: Vec<u32> = Vec::new();
        for (i, ob) in outboxes.iter().enumerate() {
            if i == idx {
                continue;
            }
            for &(v, val) in &ob.mis {
                debug_assert!(!self.scope.owns(v), "received an MIS flip we own");
                if self.in_mis[v as usize] != val {
                    self.in_mis[v as usize] = val;
                    mis_changed_in.push(v);
                }
            }
            for &(e, m) in &ob.matched {
                if let Some(s) = self.graph.edge_slot(e.u, e.v) {
                    if self.matching.apply_matched_flip(&self.graph, s, e, m) {
                        touched_vertices.push(e.u);
                        touched_vertices.push(e.v);
                    }
                }
            }
            for &(x, p) in &ob.partner {
                debug_assert!(!self.scope.owns(x), "received a partner entry we own");
                if self.matching.apply_partner_update(x, p) {
                    touched_vertices.push(x);
                }
            }
        }

        touched_vertices.sort_unstable();
        touched_vertices.dedup();
        let mut mseeds: Vec<u32> = Vec::new();
        for &x in &touched_vertices {
            for (&w, &s) in self
                .graph
                .neighbors(x)
                .iter()
                .zip(self.graph.neighbor_slots(x))
            {
                let e = Edge::new(x, w).canonical();
                if self.scope.owns(e.u)
                    && self.matching.decide_slot(&self.graph, seed, s)
                        != self.matching.matched_flag(s)
                {
                    mseeds.push(s);
                }
            }
        }
        mseeds.sort_unstable();
        mseeds.dedup();
        if !mseeds.is_empty() {
            let (deltas, stats) =
                self.matching
                    .repair_seeded(&self.graph, seed, &mseeds, &mut self.scratch);
            self.fold_matching(map, deltas, stats);
        }
        self.drain_partner_outbox();

        let mut vseeds: Vec<u32> = Vec::new();
        for &v in &mis_changed_in {
            for &w in self.graph.neighbors(v) {
                if self.scope.owns(w)
                    && mis_decide(&self.graph, prio, &self.in_mis, w) != self.in_mis[w as usize]
                {
                    vseeds.push(w);
                }
            }
        }
        vseeds.sort_unstable();
        vseeds.dedup();
        if !vseeds.is_empty() {
            let (changed, stats) = repair_mis_scoped(
                &self.graph,
                prio,
                &mut self.in_mis,
                &vseeds,
                &mut self.scratch,
                Some(self.scope),
            );
            self.fold_mis(changed, stats);
        }
    }
}

/// Mirror of the single arena's slot allocator over *public* ids: edges map
/// to the same dense slot ids a [`crate::engine::Engine`] would assign
/// (LIFO free-list reuse, canonical batch order), independent of `S`. Fed by
/// the merge step with the globally merged effective lists.
#[derive(Debug, Clone, Default)]
struct SlotDirectory {
    ids: HashMap<u64, u32>,
    free: Vec<u32>,
    next: u32,
}

impl SlotDirectory {
    /// The bootstrap assignment: edge `i` of the canonical initial edge list
    /// gets slot `i` — exactly [`DynGraph::from_graph`]'s.
    fn bootstrap(edges: &[Edge]) -> Self {
        let ids = edges
            .iter()
            .enumerate()
            .map(|(i, e)| (e.sort_key(), i as u32))
            .collect();
        Self {
            ids,
            free: Vec::new(),
            next: edges.len() as u32,
        }
    }

    fn id(&self, key: u64) -> Option<u32> {
        self.ids.get(&key).copied()
    }

    fn alloc(&mut self, e: Edge) -> u32 {
        let s = self.free.pop().unwrap_or_else(|| {
            let s = self.next;
            self.next += 1;
            s
        });
        self.ids.insert(e.sort_key(), s);
        s
    }

    fn free(&mut self, e: Edge) -> u32 {
        let s = self
            .ids
            .remove(&e.sort_key())
            .expect("SlotDirectory: freed edge must be live");
        self.free.push(s);
        s
    }
}

/// The vertex-partitioned engine: drop-in for [`crate::engine::Engine`] on
/// the server's commit path, byte-identical outputs for every shard count.
#[derive(Debug)]
pub struct ShardedEngine {
    map: ShardMap,
    shards: Vec<Shard>,
    seed: u64,
    vertex_prio: Arc<Vec<u64>>,
    directory: SlotDirectory,
    num_edges: usize,
    mis_size: usize,
    matching_size: usize,
    serving: ServerSnapshot,
    last_publication_pages: usize,
    last_timings: BatchTimings,
    stats: EngineStats,
    /// Exchange rounds the most recent commit took to quiesce (0 when no
    /// boundary traffic was needed).
    last_cross_shard_rounds: u64,
    /// Deepest per-shard staged sub-batch (insertions + deletions) of the
    /// most recent commit.
    last_max_shard_staged: u64,
}

impl ShardedEngine {
    /// A sharded engine over an edgeless graph on `n` vertices.
    pub fn new(n: usize, seed: u64, shards: usize) -> Self {
        Self::from_graph(&Graph::from_edges(n, &[]), seed, shards)
    }

    /// A sharded engine initialized from an existing graph. The global fixed
    /// points are built once (same from-scratch path as the single engine)
    /// and then distributed: every shard gets the full MIS flags and partner
    /// array (the cross-shard invariant) plus its incident edge set.
    pub fn from_graph(graph: &Graph, seed: u64, shards: usize) -> Self {
        let n = graph.num_vertices();
        let map = ShardMap::new(n, shards);
        let vertex_prio = Arc::new(vertex_priorities(n, seed));
        let full = DynGraph::from_graph(graph);
        let mut scratch = RepairScratch::with_capacity(n.max(full.num_slots()));
        let (matching, matching_stats) = matching_from_scratch(&full, seed, &mut scratch);
        let (in_mis, mis_stats) = mis_from_scratch(&full, &vertex_prio, &mut scratch);
        let partner = matching.partners().to_vec();
        let edges = full.to_edge_list();
        let directory = SlotDirectory::bootstrap(edges.edges());
        let num_edges = full.num_edges();
        let mis_size = in_mis.iter().filter(|&&m| m).count();
        let matching_size = matching.size();
        let serving = ServerSnapshot::build(num_edges, &in_mis, &partner, matching_size);
        drop(full);

        let shards_vec: Vec<Shard> = (0..map.shards() as u32)
            .map(|i| {
                let scope = map.scope(i);
                let incident: Vec<Edge> = edges
                    .edges()
                    .iter()
                    .copied()
                    .filter(|e| scope.owns(e.u) || scope.owns(e.v))
                    .collect();
                let mut g = DynGraph::new(n);
                g.insert_edges(&incident);
                g.set_shard_tag(i);
                let matching = MatchingState::bootstrap(&g, seed, partner.clone(), scope);
                let cap = n.max(g.num_slots());
                Shard {
                    scope,
                    graph: g,
                    in_mis: in_mis.clone(),
                    matching,
                    scratch: RepairScratch::with_capacity(cap),
                    metrics: None,
                    entry_mis: HashMap::new(),
                    entry_match: HashMap::new(),
                    outbox: Outbox::default(),
                    owned_del: Vec::new(),
                    owned_ins: Vec::new(),
                    mis_stats: RepairStats::default(),
                    matching_stats: RepairStats::default(),
                }
            })
            .collect();

        Self {
            map,
            shards: shards_vec,
            seed,
            vertex_prio,
            directory,
            num_edges,
            mis_size,
            matching_size,
            serving,
            last_publication_pages: 0,
            last_timings: BatchTimings::default(),
            stats: EngineStats {
                mis_redecisions: mis_stats.decided,
                matching_redecisions: matching_stats.decided,
                ..EngineStats::default()
            },
            last_cross_shard_rounds: 0,
            last_max_shard_staged: 0,
        }
    }

    /// Attaches one [`EngineMetrics`] per shard (panics unless
    /// `per_shard.len()` equals the shard count): each shard's arena feeds
    /// its own journal-tagged rebuild events, and the caller aggregates the
    /// registries with `Registry::merge`.
    pub fn attach_metrics(&mut self, per_shard: Vec<EngineMetrics>) {
        assert_eq!(
            per_shard.len(),
            self.shards.len(),
            "one EngineMetrics per shard"
        );
        for (shard, m) in self.shards.iter_mut().zip(per_shard) {
            shard.graph.attach_journal(m.journal().clone());
            shard.metrics = Some(m);
        }
    }

    /// Applies one batch: parallel shard-local phase, exchange rounds to the
    /// global fixed point, then the sequential merge that emits the same
    /// deltas, counters, and serving pages a single engine would.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range, or if the exchange fails to
    /// quiesce within [`MAX_EXCHANGE_ROUNDS`] (a protocol bug, not an input
    /// condition).
    pub fn apply_batch(&mut self, batch: &EdgeBatch) -> BatchReport {
        let t0 = std::time::Instant::now();
        let subs = self.map.split_batch(batch);
        self.last_max_shard_staged = subs
            .iter()
            .map(|b| (b.insertions.len() + b.deletions.len()) as u64)
            .max()
            .unwrap_or(0);

        let map = &self.map;
        let seed = self.seed;
        let prio: &[u64] = &self.vertex_prio;
        let tasks: Vec<(&mut Shard, EdgeBatch)> = self.shards.iter_mut().zip(subs).collect();
        par_map_blocks(tasks, &|(shard, sub): (&mut Shard, EdgeBatch)| {
            shard.begin_commit(&sub, prio, seed, map)
        });
        let t_local = std::time::Instant::now();

        let mut rounds = 0u64;
        loop {
            let outboxes: Vec<Outbox> = self
                .shards
                .iter_mut()
                .map(|s| std::mem::take(&mut s.outbox))
                .collect();
            if outboxes.iter().all(Outbox::is_empty) {
                break;
            }
            rounds += 1;
            assert!(
                rounds <= MAX_EXCHANGE_ROUNDS,
                "cross-shard exchange failed to quiesce"
            );
            let outboxes = &outboxes;
            let tasks: Vec<(usize, &mut Shard)> = self.shards.iter_mut().enumerate().collect();
            par_map_blocks(tasks, &|(idx, shard): (usize, &mut Shard)| {
                shard.exchange_round(idx, outboxes, prio, seed, map)
            });
        }
        self.last_cross_shard_rounds = rounds;
        let t_exchange = std::time::Instant::now();

        self.merge_commit(batch, t0, t_local, t_exchange)
    }

    /// The sequential merge step: public slot assignment, global net deltas,
    /// counters, serving pages, stats, metrics.
    fn merge_commit(
        &mut self,
        _batch: &EdgeBatch,
        t0: std::time::Instant,
        t_local: std::time::Instant,
        t_exchange: std::time::Instant,
    ) -> BatchReport {
        // Globally merged effective lists, in the single arena's processing
        // order (canonical sort — `canonical_batch` sorts by edge key).
        let mut global_del: Vec<Edge> = Vec::new();
        let mut global_ins: Vec<Edge> = Vec::new();
        for shard in &mut self.shards {
            global_del.append(&mut shard.owned_del);
            global_ins.append(&mut shard.owned_ins);
        }
        global_del.sort_unstable_by_key(|e| e.sort_key());
        global_ins.sort_unstable_by_key(|e| e.sort_key());
        let mut freed: HashMap<u64, u32> = HashMap::new();
        for &e in &global_del {
            freed.insert(e.sort_key(), self.directory.free(e));
        }
        for &e in &global_ins {
            self.directory.alloc(e);
        }

        // Global MIS delta: owned entry maps are disjoint across shards.
        let mut mis_changed: Vec<u32> = Vec::new();
        for shard in &mut self.shards {
            for (v, entry) in shard.entry_mis.drain() {
                if shard.in_mis[v as usize] != entry {
                    mis_changed.push(v);
                }
            }
        }
        mis_changed.sort_unstable();

        // Global matching delta under public slot ids.
        let mut matching_changed: Vec<MatchDelta> = Vec::new();
        let directory = &self.directory;
        for shard in &mut self.shards {
            for (key, (edge, entry)) in shard.entry_match.drain() {
                let now = shard
                    .graph
                    .edge_slot(edge.u, edge.v)
                    .is_some_and(|s| shard.matching.matched_flag(s));
                if now != entry {
                    let slot = directory.id(key).unwrap_or_else(|| freed[&key]);
                    matching_changed.push(MatchDelta {
                        slot,
                        edge,
                        matched: now,
                    });
                }
            }
        }
        matching_changed.sort_unstable_by_key(|d| (d.slot, d.edge.sort_key()));

        // Counters and cumulative stats — same bookkeeping as the single
        // engine's apply_batch tail.
        self.num_edges = self.num_edges + global_ins.len() - global_del.len();
        for &v in &mis_changed {
            self.mis_size = if self.shards[0].in_mis[v as usize] {
                self.mis_size + 1
            } else {
                self.mis_size - 1
            };
        }
        for d in &matching_changed {
            self.matching_size = if d.matched {
                self.matching_size + 1
            } else {
                self.matching_size - 1
            };
        }

        let mut mis_repair = RepairStats::default();
        let mut matching_repair = RepairStats::default();
        for shard in &mut self.shards {
            let ms = std::mem::take(&mut shard.mis_stats);
            let mts = std::mem::take(&mut shard.matching_stats);
            if let Some(m) = &mut shard.metrics {
                m.record_batch(
                    &shard.graph,
                    shard.matching.pending_index_capacity(),
                    &ms,
                    &mts,
                );
            }
            accumulate(&mut mis_repair, ms);
            accumulate(&mut matching_repair, mts);
        }

        self.stats.batches += 1;
        self.stats.edges_inserted += global_ins.len() as u64;
        self.stats.edges_deleted += global_del.len() as u64;
        self.stats.mis_vertices_changed += mis_changed.len() as u64;
        self.stats.matching_edges_changed += matching_changed.len() as u64;
        self.stats.mis_redecisions += mis_repair.decided;
        self.stats.matching_redecisions += matching_repair.decided;

        // Copy-on-write publication off shard 0's arrays — identical on
        // every shard by the exchange invariant, so the refreshed pages are
        // byte-identical to the single engine's.
        let mut mis_pages: Vec<usize> = mis_changed
            .iter()
            .map(|&v| v as usize / PAGE_VERTICES)
            .collect();
        mis_pages.dedup();
        let mut partner_pages: Vec<usize> = matching_changed
            .iter()
            .flat_map(|d| [d.edge.u, d.edge.v])
            .map(|v| v as usize / PAGE_VERTICES)
            .collect();
        partner_pages.sort_unstable();
        partner_pages.dedup();
        self.serving
            .refresh_mis_pages(&mis_pages, &self.shards[0].in_mis);
        self.serving
            .refresh_partner_pages(&partner_pages, self.shards[0].matching.partners());
        self.serving
            .set_counts(self.num_edges, self.mis_size, self.matching_size);
        self.last_publication_pages = mis_pages.len() + partner_pages.len();
        self.last_timings = BatchTimings {
            graph_us: t_local.duration_since(t0).as_micros() as u64,
            matching_repair_us: t_exchange.duration_since(t_local).as_micros() as u64,
            mis_repair_us: t_exchange.elapsed().as_micros() as u64,
            page_repack_us: 0,
        };

        BatchReport {
            edges_inserted: global_ins.len(),
            edges_deleted: global_del.len(),
            mis_changed,
            matching_changed,
            mis_repair,
            matching_repair,
        }
    }

    /// The serving-shaped export — same COW pages contract as
    /// [`crate::engine::Engine::server_snapshot`].
    pub fn server_snapshot(&self) -> ServerSnapshot {
        self.serving.clone()
    }

    /// O(n) rebuild oracle for the COW export (see
    /// [`crate::engine::Engine::rebuild_server_snapshot`]).
    pub fn rebuild_server_snapshot(&self) -> ServerSnapshot {
        ServerSnapshot::build(
            self.num_edges,
            &self.shards[0].in_mis,
            self.shards[0].matching.partners(),
            self.matching_size,
        )
    }

    /// A consistent global snapshot (merges the owned edge sets).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            graph: self.global_graph(),
            mis: self.mis(),
            matching: self.matching(),
        }
    }

    fn global_graph(&self) -> Graph {
        let mut edges: Vec<Edge> = Vec::with_capacity(self.num_edges);
        for shard in &self.shards {
            edges.extend(
                shard
                    .graph
                    .to_edge_list()
                    .edges()
                    .iter()
                    .copied()
                    .filter(|e| shard.scope.owns(e.u)),
            );
        }
        Graph::from_edges(self.num_vertices(), &edges)
    }

    /// The current global edge set as a canonical [`EdgeList`].
    pub fn edge_list(&self) -> EdgeList {
        self.global_graph().to_edge_list()
    }

    /// The current greedy MIS, sorted ascending.
    pub fn mis(&self) -> Vec<u32> {
        self.shards[0]
            .in_mis
            .iter()
            .enumerate()
            .filter_map(|(v, &m)| m.then_some(v as u32))
            .collect()
    }

    /// The current greedy maximal matching, canonical edges sorted.
    pub fn matching(&self) -> Vec<Edge> {
        self.shards[0]
            .matching
            .partners()
            .iter()
            .enumerate()
            .filter(|&(v, &p)| p != u32::MAX && (v as u32) < p)
            .map(|(v, &p)| Edge::new(v as u32, p))
            .collect()
    }

    /// True when vertex `v` is currently in the MIS.
    pub fn in_mis(&self, v: u32) -> bool {
        self.shards[0].in_mis[v as usize]
    }

    /// Current MIS size (O(1), maintained by the merge step).
    pub fn mis_size(&self) -> usize {
        self.mis_size
    }

    /// Number of matched edges (O(1)).
    pub fn matching_size(&self) -> usize {
        self.matching_size
    }

    /// Cumulative work counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of vertices (fixed at construction).
    pub fn num_vertices(&self) -> usize {
        self.map.n as usize
    }

    /// Number of edges currently present (global).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The priority seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The vertex partition.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Exchange rounds the most recent commit needed.
    pub fn last_cross_shard_rounds(&self) -> u64 {
        self.last_cross_shard_rounds
    }

    /// Deepest per-shard staged sub-batch of the most recent commit.
    pub fn last_max_shard_staged(&self) -> u64 {
        self.last_max_shard_staged
    }

    /// Serving pages the most recent commit repacked.
    pub fn last_publication_pages(&self) -> usize {
        self.last_publication_pages
    }

    /// Wall-clock phases of the most recent commit: `graph_us` is the
    /// parallel shard-local phase (structural + first repairs),
    /// `matching_repair_us` the exchange rounds, `mis_repair_us` the merge.
    pub fn last_batch_timings(&self) -> BatchTimings {
        self.last_timings
    }

    /// Scratch flags the shards' most recent repairs reset, summed.
    pub fn mis_scratch_reset_items(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.scratch.last_reset_items())
            .sum()
    }
}

impl crate::engine::CommitEngine for ShardedEngine {
    fn apply_batch(&mut self, batch: &EdgeBatch) -> BatchReport {
        ShardedEngine::apply_batch(self, batch)
    }

    fn server_snapshot(&self) -> ServerSnapshot {
        ShardedEngine::server_snapshot(self)
    }

    fn stats(&self) -> &EngineStats {
        ShardedEngine::stats(self)
    }

    fn num_vertices(&self) -> usize {
        ShardedEngine::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        ShardedEngine::num_edges(self)
    }

    fn seed(&self) -> u64 {
        ShardedEngine::seed(self)
    }

    fn edge_list(&self) -> EdgeList {
        ShardedEngine::edge_list(self)
    }

    fn last_batch_timings(&self) -> BatchTimings {
        ShardedEngine::last_batch_timings(self)
    }

    fn last_publication_pages(&self) -> usize {
        ShardedEngine::last_publication_pages(self)
    }

    fn shard_count(&self) -> usize {
        ShardedEngine::shard_count(self)
    }

    fn last_max_shard_staged(&self) -> u64 {
        ShardedEngine::last_max_shard_staged(self)
    }

    fn last_cross_shard_rounds(&self) -> u64 {
        ShardedEngine::last_cross_shard_rounds(self)
    }

    fn attach_shard_metrics(&mut self, per_shard: Vec<EngineMetrics>) {
        self.attach_metrics(per_shard);
    }

    fn absorb_recovered(self, recovered: crate::engine::Engine) -> Self {
        let shards = self.shard_count();
        let rebuilt =
            ShardedEngine::from_graph(&recovered.snapshot().graph, recovered.seed(), shards);
        // The recovered engine's snapshot was byte-verified against the log;
        // the fixed point's uniqueness makes the re-partitioned build land on
        // the same state, and this check makes a violation loud at startup
        // instead of a silent divergence rounds later.
        assert_eq!(
            rebuilt.server_snapshot(),
            recovered.server_snapshot(),
            "re-partitioned recovery diverged from the recovered state"
        );
        rebuilt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use greedy_graph::gen::random::random_graph;
    use greedy_prims::random::hash64;

    /// Drives an [`Engine`] and a [`ShardedEngine`] through the same stream
    /// and asserts every externally visible artifact matches byte-for-byte.
    fn assert_equivalent_stream(n: usize, m: usize, shards: usize, seed: u64, batches: usize) {
        let g = random_graph(n, m, seed);
        let mut single = Engine::from_graph(&g, seed + 1);
        let mut sharded = ShardedEngine::from_graph(&g, seed + 1, shards);
        assert_eq!(single.server_snapshot(), sharded.server_snapshot());
        for b in 0..batches {
            let batch = stream_batch(n, seed, b);
            let rs = single.apply_batch(&batch);
            let rd = sharded.apply_batch(&batch);
            assert_eq!(rs.edges_inserted, rd.edges_inserted, "S={shards} batch {b}");
            assert_eq!(rs.edges_deleted, rd.edges_deleted, "S={shards} batch {b}");
            assert_eq!(rs.mis_changed, rd.mis_changed, "S={shards} batch {b}");
            assert_eq!(
                rs.matching_changed, rd.matching_changed,
                "S={shards} batch {b}"
            );
            assert_eq!(
                single.server_snapshot(),
                sharded.server_snapshot(),
                "S={shards} batch {b}: published snapshots diverged"
            );
            assert_eq!(
                sharded.server_snapshot(),
                sharded.rebuild_server_snapshot(),
                "S={shards} batch {b}: COW pages diverged from the rebuild oracle"
            );
        }
        assert_eq!(single.mis(), sharded.mis());
        assert_eq!(single.matching(), sharded.matching());
        assert_eq!(single.num_edges(), sharded.num_edges());
        // Work counters are S-dependent (ghost repairs); the effective-change
        // counters are not.
        assert_eq!(
            single.stats().edges_inserted,
            sharded.stats().edges_inserted
        );
        assert_eq!(single.stats().edges_deleted, sharded.stats().edges_deleted);
        assert_eq!(
            single.stats().mis_vertices_changed,
            sharded.stats().mis_vertices_changed
        );
        assert_eq!(
            single.stats().matching_edges_changed,
            sharded.stats().matching_edges_changed
        );
    }

    /// A deterministic mixed batch: inserts and deletes drawn from the same
    /// hash stream the determinism suite uses.
    fn stream_batch(n: usize, seed: u64, b: usize) -> EdgeBatch {
        let mut batch = EdgeBatch::new();
        let k = 24;
        for i in 0..k {
            let h = hash64(seed + 17, (b * k + i) as u64);
            let u = (h % n as u64) as u32;
            let v = ((h >> 20) % n as u64) as u32;
            if i % 3 == 0 {
                batch.delete(u, v);
            } else {
                batch.insert(u, v);
            }
        }
        batch
    }

    #[test]
    fn sharded_matches_single_engine_across_shard_counts() {
        for shards in [1, 2, 3, 7] {
            assert_equivalent_stream(200, 600, shards, 11, 12);
        }
    }

    #[test]
    fn sharded_matches_on_sparse_and_dense_graphs() {
        assert_equivalent_stream(50, 40, 3, 5, 10);
        assert_equivalent_stream(64, 900, 4, 7, 8);
    }

    #[test]
    fn empty_and_noop_batches_are_stable() {
        let mut e = ShardedEngine::new(30, 9, 3);
        let report = e.apply_batch(&EdgeBatch::new());
        assert_eq!(report.edges_inserted + report.edges_deleted, 0);
        assert!(report.mis_changed.is_empty());
        assert!(report.matching_changed.is_empty());
        assert_eq!(e.last_cross_shard_rounds(), 0);
        assert_eq!(e.mis().len(), 30, "edgeless graph: everyone is in");
    }

    #[test]
    fn cross_shard_path_converges() {
        // A path that zig-zags across every shard boundary: maximal
        // cross-shard traffic relative to its size.
        let n = 21;
        for shards in [2, 3, 7] {
            let mut single = Engine::new(n, 3);
            let mut sharded = ShardedEngine::new(n, 3, shards);
            let mut batch = EdgeBatch::new();
            for v in 0..(n as u32 - 1) {
                batch.insert(v, v + 1);
            }
            let rs = single.apply_batch(&batch);
            let rd = sharded.apply_batch(&batch);
            assert_eq!(rs.mis_changed, rd.mis_changed, "S={shards}");
            assert_eq!(rs.matching_changed, rd.matching_changed, "S={shards}");
            assert_eq!(single.server_snapshot(), sharded.server_snapshot());
            // Now delete the middle edge — repairs must cross shards again.
            let mid = (n / 2) as u32;
            let del = EdgeBatch::from_pairs([], [(mid, mid + 1)]);
            assert_eq!(
                single.apply_batch(&del).matching_changed,
                sharded.apply_batch(&del).matching_changed,
                "S={shards}"
            );
            assert_eq!(single.server_snapshot(), sharded.server_snapshot());
        }
    }

    #[test]
    fn shard_map_partitions_every_vertex_exactly_once() {
        for (n, s) in [(1usize, 1usize), (10, 3), (21, 7), (5, 8), (4096, 2)] {
            let map = ShardMap::new(n, s);
            for v in 0..n as u32 {
                let owner = map.shard_of(v);
                assert!(map.scope(owner).owns(v), "n={n} s={s} v={v}");
                let owning: Vec<u32> = (0..s as u32).filter(|&i| map.scope(i).owns(v)).collect();
                assert_eq!(owning, vec![owner], "n={n} s={s} v={v}");
            }
        }
    }

    #[test]
    fn split_batches_reassemble_to_the_original() {
        let map = ShardMap::new(100, 3);
        let batch = EdgeBatch::from_pairs(
            [(1, 99), (40, 41), (5, 5), (0, 50), (98, 99)],
            [(2, 70), (33, 34)],
        );
        let subs = map.split_batch(&batch);
        let reassemble = |pick: fn(&EdgeBatch) -> &Vec<Edge>| -> Vec<Edge> {
            let mut out: Vec<Edge> = subs
                .iter()
                .enumerate()
                .flat_map(|(i, sub)| {
                    let map = &map;
                    pick(sub)
                        .iter()
                        .copied()
                        .filter(move |e| map.owner(*e) == i as u32)
                })
                .collect();
            out.sort_unstable_by_key(|e| e.sort_key());
            out
        };
        let canonical = |edges: &[Edge]| -> Vec<Edge> {
            let mut out: Vec<Edge> = edges
                .iter()
                .filter(|e| !e.is_self_loop())
                .map(|e| e.canonical())
                .collect();
            out.sort_unstable_by_key(|e| e.sort_key());
            out
        };
        assert_eq!(reassemble(|b| &b.insertions), canonical(&batch.insertions));
        assert_eq!(reassemble(|b| &b.deletions), canonical(&batch.deletions));
        // Every cross edge is staged at both endpoint shards.
        for (i, sub) in subs.iter().enumerate() {
            for e in sub.insertions.iter().chain(&sub.deletions) {
                let scope = map.scope(i as u32);
                assert!(scope.owns(e.u) || scope.owns(e.v), "non-incident edge");
            }
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Owner-filtering the shard sub-batches reassembles the exact
            /// original batch (canonicalized, loop-free, order restored by
            /// edge key), for arbitrary batches and shard counts.
            #[test]
            fn split_batches_reassemble(
                n in 1usize..300,
                shards in 1usize..9,
                pairs in proptest::collection::vec(((0u32..300, 0u32..300), any::<bool>()), 0..80),
            ) {
                let map = ShardMap::new(n, shards);
                let mut batch = EdgeBatch::new();
                for &((u, v), del) in &pairs {
                    let (u, v) = (u % n as u32, v % n as u32);
                    if del {
                        batch.delete(u, v);
                    } else {
                        batch.insert(u, v);
                    }
                }
                let subs = map.split_batch(&batch);
                prop_assert_eq!(subs.len(), shards);
                let canonical = |edges: &[Edge]| -> Vec<Edge> {
                    let mut out: Vec<Edge> = edges
                        .iter()
                        .filter(|e| !e.is_self_loop())
                        .map(|e| e.canonical())
                        .collect();
                    out.sort_unstable_by_key(|e| e.sort_key());
                    out
                };
                for pick in [
                    (|b: &EdgeBatch| b.insertions.clone()) as fn(&EdgeBatch) -> Vec<Edge>,
                    |b: &EdgeBatch| b.deletions.clone(),
                ] {
                    let map = &map;
                    let mut owned: Vec<Edge> = subs
                        .iter()
                        .enumerate()
                        .flat_map(|(i, sub)| {
                            pick(sub)
                                .into_iter()
                                .filter(move |e| map.owner(*e) == i as u32)
                                .collect::<Vec<_>>()
                        })
                        .collect();
                    owned.sort_unstable_by_key(|e| e.sort_key());
                    prop_assert_eq!(owned, canonical(&pick(&batch)));
                    // Incidence: every routed edge touches its shard.
                    for (i, sub) in subs.iter().enumerate() {
                        let scope = map.scope(i as u32);
                        for e in pick(sub) {
                            prop_assert!(scope.owns(e.u) || scope.owns(e.v));
                        }
                    }
                }
            }
        }
    }
}
