//! The service-facing batch-dynamic engine.
//!
//! [`Engine`] owns a [`DynGraph`] plus the greedy MIS and maximal-matching
//! states for it under fixed hashed priorities, and exposes the three calls a
//! traffic-serving front-end needs: [`Engine::apply_batch`] (ingest a batch
//! of edge updates, repair both states, report the deltas),
//! [`Engine::snapshot`] (a consistent CSR view plus both solution sets), and
//! [`Engine::stats`] (cumulative work counters for capacity planning).
//!
//! After every batch the maintained states are **exactly** what a
//! from-scratch greedy run on the updated graph produces (the paper's unique
//! lexicographically-first solutions under the fixed priorities) — the
//! property the equivalence test suite checks against the static algorithms
//! — and they are byte-identical across thread counts.

use greedy_core::dag::{RepairScratch, RepairStats};
use greedy_graph::csr::Graph;
use greedy_graph::edge_list::{Edge, EdgeList};

use crate::dyn_graph::DynGraph;
use crate::matching::{matching_from_scratch, MatchDelta, MatchingState};
use crate::metrics::EngineMetrics;
use crate::mis::{mis_from_scratch, repair_mis, vertex_priorities};
use crate::snapshot::{ServerSnapshot, PAGE_VERTICES};

/// A batch of edge updates, applied atomically: deletions first, then
/// insertions (so a batch may delete and re-insert the same edge).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeBatch {
    /// Edges to insert (any orientation; self-loops and duplicates ignored).
    pub insertions: Vec<Edge>,
    /// Edges to delete (any orientation; absent edges ignored).
    pub deletions: Vec<Edge>,
}

impl EdgeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a batch from `(u, v)` pairs.
    pub fn from_pairs(
        insertions: impl IntoIterator<Item = (u32, u32)>,
        deletions: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        Self {
            insertions: insertions
                .into_iter()
                .map(|(u, v)| Edge::new(u, v))
                .collect(),
            deletions: deletions
                .into_iter()
                .map(|(u, v)| Edge::new(u, v))
                .collect(),
        }
    }

    /// Adds an insertion.
    pub fn insert(&mut self, u: u32, v: u32) -> &mut Self {
        self.insertions.push(Edge::new(u, v));
        self
    }

    /// Adds a deletion.
    pub fn delete(&mut self, u: u32, v: u32) -> &mut Self {
        self.deletions.push(Edge::new(u, v));
        self
    }

    /// True when the batch carries no updates.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }
}

/// What one [`Engine::apply_batch`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// Edges actually added (canonical, sorted; duplicates and already
    /// present edges excluded).
    pub edges_inserted: usize,
    /// Edges actually removed.
    pub edges_deleted: usize,
    /// Vertices whose MIS membership flipped, sorted ascending.
    pub mis_changed: Vec<u32>,
    /// Edges whose matching membership flipped, keyed by their stable slot
    /// ids and sorted by slot (deleted matched edges appear here too, under
    /// the slot they held).
    pub matching_changed: Vec<MatchDelta>,
    /// Round/re-decision counters of the MIS repair.
    pub mis_repair: RepairStats,
    /// Round/re-decision counters of the matching repair (same round
    /// machinery as the MIS since the slot refactor).
    pub matching_repair: RepairStats,
}

/// Cumulative counters across the engine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Batches applied.
    pub batches: u64,
    /// Effective edge insertions across all batches.
    pub edges_inserted: u64,
    /// Effective edge deletions across all batches.
    pub edges_deleted: u64,
    /// Net MIS membership flips across all batches.
    pub mis_vertices_changed: u64,
    /// Net matching membership flips across all batches.
    pub matching_edges_changed: u64,
    /// Vertex re-decisions performed by MIS repairs (including the initial
    /// from-scratch build).
    pub mis_redecisions: u64,
    /// Edge re-decisions performed by matching repairs (including the initial
    /// from-scratch build).
    pub matching_redecisions: u64,
}

/// Wall-clock breakdown of the most recent [`Engine::apply_batch`] call,
/// in whole microseconds.
///
/// Kept out of [`BatchReport`] on purpose: reports are equality-compared in
/// determinism tests and timings are inherently nondeterministic. Read the
/// breakdown through [`Engine::last_batch_timings`] instead.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchTimings {
    /// Structural graph update (deletions + insertions).
    pub graph_us: u64,
    /// Matching repair to the fixed point.
    pub matching_repair_us: u64,
    /// MIS seed computation + repair to the fixed point.
    pub mis_repair_us: u64,
    /// Copy-on-write page repack of the serving export.
    pub page_repack_us: u64,
}

/// A consistent view of the engine's state after some batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The current graph in CSR form.
    pub graph: Graph,
    /// The greedy MIS, sorted ascending.
    pub mis: Vec<u32>,
    /// The greedy maximal matching, canonical edges sorted lexicographically.
    pub matching: Vec<Edge>,
}

/// Batch-dynamic maintenance of greedy MIS and maximal matching.
#[derive(Debug, Clone)]
pub struct Engine {
    graph: DynGraph,
    seed: u64,
    /// Cached `hash64(seed, v)` per vertex.
    vertex_prio: Vec<u64>,
    /// MIS membership flags (the maintained fixed point).
    in_mis: Vec<bool>,
    /// Matching state (the maintained fixed point).
    matching: MatchingState,
    /// Repair working memory shared by the MIS (vertex-indexed) and matching
    /// (slot-indexed) repairs — both ride the same round machinery, and the
    /// scratch's flags are all-clear between repairs, so one allocation
    /// sized to the larger item space serves both. Kept across batches so a
    /// tiny batch's repair costs O(Δ) instead of re-zeroing O(n) flags.
    scratch: RepairScratch,
    /// Current MIS size, maintained by flips (so exports never recount).
    mis_size: usize,
    /// The maintained copy-on-write serving export: after each batch only
    /// the pages touched by the batch's deltas are repacked, so
    /// [`Engine::server_snapshot`] is O(pages touched), not O(n).
    serving: ServerSnapshot,
    /// Pages the most recent batch repacked (MIS + partner), for tests and
    /// benches asserting publication really is O(pages touched).
    last_publication_pages: usize,
    /// Wall-clock breakdown of the most recent batch (not in the report —
    /// see [`BatchTimings`]).
    last_timings: BatchTimings,
    stats: EngineStats,
    /// Optional internals instrumentation, recorded once per batch. Like
    /// [`BatchTimings`], deliberately outside [`BatchReport`]: reports stay
    /// equality-comparable in determinism tests.
    metrics: Option<EngineMetrics>,
}

impl Engine {
    /// An engine over an edgeless graph on `n` vertices. With no edges every
    /// vertex is in the MIS and the matching is empty.
    pub fn new(n: usize, seed: u64) -> Self {
        Self::from_dyn_graph(DynGraph::new(n), seed)
    }

    /// An engine initialized from an existing graph: both states are built
    /// from scratch (counted in [`EngineStats`]), then maintained
    /// incrementally.
    pub fn from_graph(graph: &Graph, seed: u64) -> Self {
        Self::from_dyn_graph(DynGraph::from_graph(graph), seed)
    }

    fn from_dyn_graph(graph: DynGraph, seed: u64) -> Self {
        let n = graph.num_vertices();
        let vertex_prio = vertex_priorities(n, seed);
        let mut scratch = RepairScratch::with_capacity(n.max(graph.num_slots()));
        // Matching first, MIS second — both from-scratch builds share the
        // scratch, and finishing on the MIS keeps
        // [`Engine::mis_scratch_reset_items`] describing the MIS repair.
        let (matching, matching_stats) = matching_from_scratch(&graph, seed, &mut scratch);
        let (in_mis, mis_stats) = mis_from_scratch(&graph, &vertex_prio, &mut scratch);
        let stats = EngineStats {
            mis_redecisions: mis_stats.decided,
            matching_redecisions: matching_stats.decided,
            ..EngineStats::default()
        };
        let mis_size = in_mis.iter().filter(|&&m| m).count();
        let serving = ServerSnapshot::build(
            graph.num_edges(),
            &in_mis,
            matching.partners(),
            matching.size(),
        );
        Self {
            graph,
            seed,
            vertex_prio,
            in_mis,
            matching,
            scratch,
            mis_size,
            serving,
            last_publication_pages: 0,
            last_timings: BatchTimings::default(),
            stats,
            metrics: None,
        }
    }

    /// Attaches engine-internals instrumentation: arena gauges, rebuild and
    /// relocation counters (per [`crate::dyn_graph::RebuildTrigger`]), and
    /// repair-work histograms are recorded after every
    /// [`Engine::apply_batch`]; arena rebuilds/relocations additionally feed
    /// the metrics' event journal as they happen. The caller keeps a clone of
    /// `metrics` for exposition — the instruments are shared through `Arc`s.
    pub fn attach_metrics(&mut self, metrics: EngineMetrics) {
        self.graph.attach_journal(metrics.journal().clone());
        self.metrics = Some(metrics);
    }

    /// Applies one batch of edge updates and repairs both maintained states
    /// to the greedy fixed point on the updated graph.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range for the engine's vertex set.
    pub fn apply_batch(&mut self, batch: &EdgeBatch) -> BatchReport {
        let t0 = std::time::Instant::now();
        // Graph first: deletions, then insertions (batch semantics). Each
        // effective update comes back with its stable slot id.
        let deleted = self.graph.delete_edges(&batch.deletions);
        let inserted = self.graph.insert_edges(&batch.insertions);
        let t_graph = std::time::Instant::now();

        // Matching repair reads the pre-repair matched state of the deleted
        // slots, so it runs directly off the effective lists.
        let (matching_changed, matching_repair) = self.matching.repair_batch(
            &self.graph,
            self.seed,
            &deleted,
            &inserted,
            &mut self.scratch,
        );
        let t_matching = std::time::Instant::now();

        // MIS dirty frontier: endpoints of effective changes whose decision
        // can actually move under the greedy rule at batch entry. An edge
        // change affects endpoint `x` only through the *earlier* endpoint
        // `y`, and only one way per direction: inserting `{x, y}` can evict
        // `x` only if both are in the MIS (x later); deleting it can admit
        // `x` only if `x` was out and the earlier `y` in. Everything else
        // keeps its fixed-point decision, and knock-on changes propagate
        // through the round driver's flip wake-ups.
        let prio = |x: u32| (self.vertex_prio[x as usize], x);
        let mut seeds: Vec<u32> = Vec::new();
        for upd in &deleted {
            for (x, y) in [(upd.edge.u, upd.edge.v), (upd.edge.v, upd.edge.u)] {
                if !self.in_mis[x as usize] && self.in_mis[y as usize] && prio(y) < prio(x) {
                    seeds.push(x);
                }
            }
        }
        for upd in &inserted {
            for (x, y) in [(upd.edge.u, upd.edge.v), (upd.edge.v, upd.edge.u)] {
                if self.in_mis[x as usize] && self.in_mis[y as usize] && prio(y) < prio(x) {
                    seeds.push(x);
                }
            }
        }
        seeds.sort_unstable();
        seeds.dedup();
        let (mis_changed, mis_repair) = repair_mis(
            &self.graph,
            &self.vertex_prio,
            &mut self.in_mis,
            &seeds,
            &mut self.scratch,
        );
        let t_mis = std::time::Instant::now();

        self.stats.batches += 1;
        self.stats.edges_inserted += inserted.len() as u64;
        self.stats.edges_deleted += deleted.len() as u64;
        self.stats.mis_vertices_changed += mis_changed.len() as u64;
        self.stats.matching_edges_changed += matching_changed.len() as u64;
        self.stats.mis_redecisions += mis_repair.decided;
        self.stats.matching_redecisions += matching_repair.decided;

        // Copy-on-write publication: repack exactly the snapshot pages this
        // batch's deltas touched. MIS flips dirty their own page; a matching
        // flip moves the partner entries of both endpoints (any partner entry
        // that changed is an endpoint of some flipped edge, because at the
        // fixed point each vertex has at most one matched incident edge).
        for &v in &mis_changed {
            self.mis_size = if self.in_mis[v as usize] {
                self.mis_size + 1
            } else {
                self.mis_size - 1
            };
        }
        let mut mis_pages: Vec<usize> = mis_changed
            .iter()
            .map(|&v| v as usize / PAGE_VERTICES)
            .collect();
        mis_pages.dedup(); // mis_changed is sorted, so pages arrive sorted
        let mut partner_pages: Vec<usize> = matching_changed
            .iter()
            .flat_map(|d| [d.edge.u, d.edge.v])
            .map(|v| v as usize / PAGE_VERTICES)
            .collect();
        partner_pages.sort_unstable();
        partner_pages.dedup();
        self.serving.refresh_mis_pages(&mis_pages, &self.in_mis);
        self.serving
            .refresh_partner_pages(&partner_pages, self.matching.partners());
        self.serving
            .set_counts(self.graph.num_edges(), self.mis_size, self.matching.size());
        self.last_publication_pages = mis_pages.len() + partner_pages.len();
        self.last_timings = BatchTimings {
            graph_us: t_graph.duration_since(t0).as_micros() as u64,
            matching_repair_us: t_matching.duration_since(t_graph).as_micros() as u64,
            mis_repair_us: t_mis.duration_since(t_matching).as_micros() as u64,
            page_repack_us: t_mis.elapsed().as_micros() as u64,
        };
        if let Some(m) = &mut self.metrics {
            m.record_batch(
                &self.graph,
                self.matching.pending_index_capacity(),
                &mis_repair,
                &matching_repair,
            );
        }

        BatchReport {
            edges_inserted: inserted.len(),
            edges_deleted: deleted.len(),
            mis_changed,
            matching_changed,
            mis_repair,
            matching_repair,
        }
    }

    /// A consistent snapshot of the current graph and both solution sets.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            graph: self.graph.to_graph(),
            mis: self.mis(),
            matching: self.matching(),
        }
    }

    /// The serving-shaped export: MIS bitset + matching partner array as
    /// copy-on-write pages. The engine maintains the pages across batches
    /// (only pages a batch's deltas touch get repacked), so this call is a
    /// per-page `Arc` clone — O(pages touched) amortized publication, never
    /// an O(n) copy. This is what the server publishes after each round.
    pub fn server_snapshot(&self) -> ServerSnapshot {
        self.serving.clone()
    }

    /// The old O(n) publication path: packs every page from the flat
    /// maintained state. Kept as the audit oracle (the COW export must stay
    /// byte-identical to it) and as the baseline the publication bench
    /// measures the paged path against.
    pub fn rebuild_server_snapshot(&self) -> ServerSnapshot {
        ServerSnapshot::build(
            self.num_edges(),
            &self.in_mis,
            self.matching.partners(),
            self.matching.size(),
        )
    }

    /// Snapshot pages the most recent [`Engine::apply_batch`] repacked —
    /// the real per-round publication cost, proportional to the deltas'
    /// page span and never to `n`.
    pub fn last_publication_pages(&self) -> usize {
        self.last_publication_pages
    }

    /// Wall-clock breakdown of the most recent [`Engine::apply_batch`] call
    /// (all zeros before the first batch). Nondeterministic by nature, hence
    /// separate from [`BatchReport`].
    pub fn last_batch_timings(&self) -> BatchTimings {
        self.last_timings
    }

    /// Current MIS size (O(1), maintained by flips).
    pub fn mis_size(&self) -> usize {
        self.mis_size
    }

    /// Cumulative work counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Flags the most recent MIS repair's scratch reset cleared —
    /// proportional to the vertices that repair touched, never to `n`
    /// (see [`RepairScratch`]). Exposed so benches and tests can assert
    /// small batches really pay O(Δ).
    pub fn mis_scratch_reset_items(&self) -> usize {
        self.scratch.last_reset_items()
    }

    /// The current greedy MIS, sorted ascending.
    pub fn mis(&self) -> Vec<u32> {
        self.in_mis
            .iter()
            .enumerate()
            .filter_map(|(v, &m)| m.then_some(v as u32))
            .collect()
    }

    /// The current greedy maximal matching, canonical and sorted.
    pub fn matching(&self) -> Vec<Edge> {
        self.matching.matched_edges()
    }

    /// Number of matched edges (O(1), without materializing the matching).
    pub fn matching_size(&self) -> usize {
        self.matching.size()
    }

    /// True when vertex `v` is currently in the MIS.
    pub fn in_mis(&self, v: u32) -> bool {
        self.in_mis[v as usize]
    }

    /// Number of vertices (fixed at construction).
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges currently present.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// The priority seed the engine was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Read access to the dynamic graph.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }
}

/// The engine surface the serving layer drives — implemented by both
/// execution strategies: the single-arena [`Engine`] and the
/// vertex-partitioned [`crate::sharded::ShardedEngine`].
///
/// Both maintain the **same** unique greedy fixed point (the paper's
/// lexicographically-first MIS and matching under fixed priorities), so a
/// server generic over this trait publishes byte-identical snapshots, delta
/// streams, and WAL records whichever implementation — and whatever shard
/// count — is behind it. Implementation-specific observables (shard count,
/// exchange rounds, staging skew) have defaults describing the single-arena
/// case, so [`Engine`] implements them for free.
pub trait CommitEngine: Send + 'static {
    /// Applies one batch of edge updates atomically and repairs both
    /// maintained states to the greedy fixed point on the updated graph.
    fn apply_batch(&mut self, batch: &EdgeBatch) -> BatchReport;

    /// The copy-on-write serving export after the most recent batch.
    fn server_snapshot(&self) -> ServerSnapshot;

    /// Cumulative work counters.
    fn stats(&self) -> &EngineStats;

    /// Number of vertices (fixed at construction).
    fn num_vertices(&self) -> usize;

    /// Number of edges currently present.
    fn num_edges(&self) -> usize;

    /// The priority seed the engine was built with.
    fn seed(&self) -> u64;

    /// The current edge set in canonical order — what WAL checkpoints
    /// persist (state is a pure function of edge set + seed).
    fn edge_list(&self) -> EdgeList;

    /// Wall-clock breakdown of the most recent batch.
    fn last_batch_timings(&self) -> BatchTimings;

    /// Snapshot pages the most recent batch repacked.
    fn last_publication_pages(&self) -> usize;

    /// Shards the engine partitions its vertices across (1 = single arena).
    fn shard_count(&self) -> usize {
        1
    }

    /// Largest per-shard sub-batch the most recent batch staged (0 for a
    /// single-arena engine, which does not split batches).
    fn last_max_shard_staged(&self) -> u64 {
        0
    }

    /// Cross-shard exchange rounds the most recent batch needed to reach
    /// global quiescence (0 for a single-arena engine).
    fn last_cross_shard_rounds(&self) -> u64 {
        0
    }

    /// Attaches one internals instrument set per shard; callers size the
    /// vector with [`CommitEngine::shard_count`]. A single-arena engine
    /// takes the first set.
    fn attach_shard_metrics(&mut self, per_shard: Vec<EngineMetrics>);

    /// Rebuilds this engine from WAL-recovered state, preserving the
    /// implementation's execution strategy: a single-arena engine adopts the
    /// recovered engine as-is, a sharded one re-partitions the recovered
    /// graph across its shard count (the unique fixed point guarantees the
    /// re-partitioned state equals the recovered one byte for byte).
    fn absorb_recovered(self, recovered: Engine) -> Self;
}

impl CommitEngine for Engine {
    fn apply_batch(&mut self, batch: &EdgeBatch) -> BatchReport {
        Engine::apply_batch(self, batch)
    }

    fn server_snapshot(&self) -> ServerSnapshot {
        Engine::server_snapshot(self)
    }

    fn stats(&self) -> &EngineStats {
        Engine::stats(self)
    }

    fn num_vertices(&self) -> usize {
        Engine::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        Engine::num_edges(self)
    }

    fn seed(&self) -> u64 {
        Engine::seed(self)
    }

    fn edge_list(&self) -> EdgeList {
        self.graph.to_edge_list()
    }

    fn last_batch_timings(&self) -> BatchTimings {
        Engine::last_batch_timings(self)
    }

    fn last_publication_pages(&self) -> usize {
        Engine::last_publication_pages(self)
    }

    fn attach_shard_metrics(&mut self, per_shard: Vec<EngineMetrics>) {
        let metrics = per_shard
            .into_iter()
            .next()
            .expect("attach_shard_metrics needs at least one instrument set");
        self.attach_metrics(metrics);
    }

    fn absorb_recovered(self, recovered: Engine) -> Self {
        recovered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::{edge_permutation, vertex_permutation};
    use greedy_core::matching::sequential::sequential_matching;
    use greedy_core::mis::sequential::sequential_mis;
    use greedy_core::mis::verify::verify_mis;
    use greedy_graph::gen::random::random_graph;

    /// Checks both maintained states against from-scratch static runs.
    fn assert_consistent(engine: &Engine) {
        let snap = engine.snapshot();
        let pi = vertex_permutation(engine.num_vertices(), engine.seed());
        assert_eq!(snap.mis, sequential_mis(&snap.graph, &pi), "MIS diverged");
        assert!(verify_mis(&snap.graph, &snap.mis));
        let el = snap.graph.to_edge_list();
        let pe = edge_permutation(engine.seed(), &el);
        let mut expected: Vec<Edge> = sequential_matching(&el, &pe)
            .into_iter()
            .map(|id| el.edge(id as usize))
            .collect();
        expected.sort_unstable_by_key(|e| e.sort_key());
        assert_eq!(snap.matching, expected, "matching diverged");
    }

    #[test]
    fn empty_engine_has_full_mis() {
        let engine = Engine::new(5, 1);
        assert_eq!(engine.mis(), vec![0, 1, 2, 3, 4]);
        assert!(engine.matching().is_empty());
        assert_eq!(engine.num_edges(), 0);
        assert_consistent(&engine);
    }

    #[test]
    fn engine_from_graph_is_consistent() {
        for seed in 0..3 {
            let g = random_graph(250, 800, seed);
            let engine = Engine::from_graph(&g, seed + 40);
            assert_consistent(&engine);
        }
    }

    #[test]
    fn mixed_batches_stay_consistent() {
        let mut engine = Engine::from_graph(&random_graph(120, 300, 1), 77);
        let batches = [
            EdgeBatch::from_pairs([(0, 60), (1, 61), (2, 62)], []),
            EdgeBatch::from_pairs([], [(0, 60), (1, 61)]),
            EdgeBatch::from_pairs([(5, 50), (5, 51), (5, 52)], [(2, 62)]),
            // Delete and re-insert the same edge in one batch.
            EdgeBatch::from_pairs([(5, 50)], [(5, 50)]),
        ];
        for (i, batch) in batches.iter().enumerate() {
            let report = engine.apply_batch(batch);
            assert_consistent(&engine);
            assert_eq!(
                engine.stats().batches,
                i as u64 + 1,
                "batch counter tracks calls"
            );
            // Deltas must be internally consistent with the report counters.
            assert!(report.mis_repair.rounds >= u64::from(!report.mis_changed.is_empty()));
        }
        assert_eq!(engine.stats().edges_inserted, 3 + 3 + 1);
    }

    #[test]
    fn reports_net_deltas() {
        let mut engine = Engine::new(4, 3);
        // Path 0-1-2-3 appears in one batch.
        let report = engine.apply_batch(&EdgeBatch::from_pairs([(0, 1), (1, 2), (2, 3)], []));
        assert_eq!(report.edges_inserted, 3);
        assert!(!report.mis_changed.is_empty(), "some vertex left the MIS");
        assert!(!report.matching_changed.is_empty(), "some edge got matched");
        assert_consistent(&engine);
        // Applying an empty batch changes nothing.
        let report = engine.apply_batch(&EdgeBatch::new());
        assert_eq!(report.edges_inserted + report.edges_deleted, 0);
        assert!(report.mis_changed.is_empty());
        assert!(report.matching_changed.is_empty());
    }

    #[test]
    fn duplicate_and_absent_updates_are_ignored() {
        let mut engine = Engine::new(6, 9);
        engine.apply_batch(&EdgeBatch::from_pairs([(0, 1)], []));
        let report = engine.apply_batch(&EdgeBatch::from_pairs(
            [(0, 1), (1, 0), (2, 2)],
            [(3, 4), (4, 4)],
        ));
        assert_eq!(report.edges_inserted, 0, "present/loop inserts ignored");
        assert_eq!(report.edges_deleted, 0, "absent/loop deletes ignored");
        assert!(report.mis_changed.is_empty());
        assert!(report.matching_changed.is_empty());
    }

    #[test]
    fn small_batch_repair_resets_o_delta_scratch() {
        // The engine-held scratch means a tiny batch's repair resets work
        // proportional to what it touched — not an O(n) re-zeroing.
        let n = 20_000;
        let mut engine = Engine::from_graph(&random_graph(n, 60_000, 4), 13);
        assert_eq!(
            engine.mis_scratch_reset_items(),
            n,
            "the from-scratch build touches every vertex"
        );
        engine.apply_batch(&EdgeBatch::from_pairs(
            [(0, 10_000), (1, 15_000)],
            [(0, 10_000)],
        ));
        assert!(
            engine.mis_scratch_reset_items() < n / 10,
            "2-edge batch reset {} of {n} flags",
            engine.mis_scratch_reset_items()
        );
        assert_consistent(&engine);
    }

    #[test]
    fn drain_graph_restores_full_mis() {
        let g = random_graph(80, 200, 5);
        let mut engine = Engine::from_graph(&g, 11);
        let all: Vec<(u32, u32)> = g
            .to_edge_list()
            .edges()
            .iter()
            .map(|e| (e.u, e.v))
            .collect();
        let report = engine.apply_batch(&EdgeBatch::from_pairs([], all));
        assert_eq!(report.edges_deleted, g.num_edges());
        assert_eq!(engine.num_edges(), 0);
        assert_eq!(engine.mis().len(), 80, "edgeless graph: everyone is in");
        assert!(engine.matching().is_empty());
        assert_consistent(&engine);
    }
}
