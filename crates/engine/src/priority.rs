//! The fixed random priorities the engine maintains its state under.
//!
//! The paper's determinism hinges on the priorities being *fixed*: the greedy
//! MIS/matching under a fixed total order is unique, so any repair schedule
//! must land on the same state. A dynamic engine additionally needs the
//! priorities to be **stable across updates** — an edge deleted and
//! re-inserted must come back with the same priority, and inserting one edge
//! must not shift any other edge's priority. Index-based permutations (ranks
//! of `0..m`) do not survive a changing edge set, so the engine draws
//! priorities from the stateless hash [`hash64`] instead:
//!
//! * vertex `v` gets `(hash64(seed, v), v)` — exactly the key order
//!   [`par_random_permutation`](greedy_prims::permutation::par_random_permutation)
//!   sorts by, so the engine's order *is* the order `random_permutation(n,
//!   seed)` encodes, and a from-scratch oracle can be built with the
//!   workspace's existing algorithms;
//! * edge `{u, v}` gets `(hash64(seed ⊕ SALT, key), key)` for the canonical
//!   packed key `u << 32 | v` — independent of when (or whether) the edge is
//!   currently present.
//!
//! [`vertex_permutation`] and [`edge_permutation`] materialize those orders
//! as [`Permutation`]s over a concrete vertex set / edge list; the
//! equivalence tests use them to run the static algorithms as oracles against
//! the incrementally maintained state.

use greedy_graph::edge_list::{Edge, EdgeList};
use greedy_prims::permutation::{par_random_permutation, Permutation};
use greedy_prims::random::hash64;
use greedy_prims::sort::sort_by_key_parallel;
use rayon::prelude::*;

/// Decorrelates the edge-priority stream from the vertex-priority stream
/// drawn from the same engine seed.
const EDGE_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// The priority key of vertex `v`; lexicographically smaller = earlier.
#[inline]
pub fn vertex_priority(seed: u64, v: u32) -> (u64, u32) {
    (hash64(seed, v as u64), v)
}

/// The canonical packed id of an edge (endpoints ordered, `u` in the high
/// half). Stable across updates — it depends only on the endpoints.
#[inline]
pub fn edge_key(e: Edge) -> u64 {
    e.canonical().sort_key()
}

/// The priority key of edge `e`; lexicographically smaller = earlier.
#[inline]
pub fn edge_priority(seed: u64, e: Edge) -> (u64, u64) {
    let key = edge_key(e);
    (hash64(seed ^ EDGE_SEED_SALT, key), key)
}

/// The vertex order the engine maintains MIS under, as a [`Permutation`] —
/// identical to `greedy_core::ordering::random_permutation(n, seed)`.
pub fn vertex_permutation(n: usize, seed: u64) -> Permutation {
    par_random_permutation(n, seed)
}

/// The edge order the engine maintains the matching under, restricted to a
/// concrete canonical [`EdgeList`]: edge ids sorted by [`edge_priority`].
///
/// # Panics
/// Panics if `edges` is not canonical (the id → key map must be injective
/// and monotone for the stable sort to reproduce the engine's tie-breaking).
pub fn edge_permutation(seed: u64, edges: &EdgeList) -> Permutation {
    assert!(
        edges.is_canonical(),
        "edge_permutation: edge list must be canonical"
    );
    let mut keyed: Vec<(u64, u32)> = edges
        .edges()
        .par_iter()
        .enumerate()
        .map(|(id, &e)| (edge_priority(seed, e).0, id as u32))
        .collect();
    // Stable sort by hash; ids are in canonical (key) order, so hash
    // collisions fall back to key order — the same tie-break as
    // `edge_priority`'s second component.
    sort_by_key_parallel(&mut keyed, |&(h, _)| h);
    Permutation::from_order(keyed.into_par_iter().map(|(_, id)| id).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_order_matches_random_permutation() {
        // The engine compares (hash, id) pairs; the permutation sorts by the
        // same key. Ranks must therefore order vertices identically.
        let n = 5_000;
        let pi = vertex_permutation(n, 9);
        for pair in [(0u32, 1u32), (17, 4_999), (123, 124), (2_500, 0)] {
            let (a, b) = pair;
            assert_eq!(
                vertex_priority(9, a) < vertex_priority(9, b),
                pi.rank_of(a) < pi.rank_of(b),
                "vertices {a}, {b}"
            );
        }
    }

    #[test]
    fn edge_priority_is_orientation_invariant_and_stable() {
        let e = edge_priority(7, Edge::new(3, 9));
        assert_eq!(e, edge_priority(7, Edge::new(9, 3)));
        assert_eq!(e, edge_priority(7, Edge::new(3, 9)));
        assert_ne!(e, edge_priority(8, Edge::new(3, 9)));
        assert_ne!(e, edge_priority(7, Edge::new(3, 8)));
    }

    #[test]
    fn edge_permutation_orders_ids_by_priority() {
        let el = EdgeList::from_pairs(50, (0..49).map(|i| (i, i + 1))).canonicalize();
        let pi = edge_permutation(3, &el);
        assert_eq!(pi.len(), el.num_edges());
        for pos in 1..pi.len() {
            let a = el.edge(pi.element_at(pos - 1) as usize);
            let b = el.edge(pi.element_at(pos) as usize);
            assert!(edge_priority(3, a) < edge_priority(3, b), "position {pos}");
        }
    }

    #[test]
    #[should_panic(expected = "must be canonical")]
    fn edge_permutation_rejects_non_canonical() {
        let el = EdgeList::from_pairs(4, vec![(2, 1)]);
        edge_permutation(1, &el);
    }
}
