//! Mutable adjacency under batched edge updates.
//!
//! [`DynGraph`] is the representation the engine edits between snapshots:
//! per-vertex neighbor lists kept strictly sorted, symmetric, loop-free and
//! duplicate-free — the same invariants as [`greedy_graph::csr::Graph`], so
//! the two convert back and forth losslessly.
//!
//! Batch updates follow the workspace's sorting discipline: the batch is
//! canonicalized (self-loops dropped, endpoints ordered, duplicates removed)
//! with the parallel radix sort from `greedy_prims::sort`, filtered against
//! the current edge set in parallel, expanded into arcs, radix-sorted by
//! source, and then *merged* into the per-vertex lists — one sorted merge per
//! touched vertex, fanned out with `par_map_blocks` so distinct vertices
//! update concurrently while each list stays a single owner's work. Every
//! phase is deterministic, so the resulting adjacency is byte-identical
//! across thread counts.

use greedy_graph::csr::Graph;
use greedy_graph::edge_list::{Edge, EdgeList};
use greedy_prims::pack::par_dedup_adjacent;
use greedy_prims::sort::sort_by_key_parallel;
use greedy_prims::util::par_map_blocks;
use rayon::prelude::*;

/// An undirected graph under batched edge insertions and deletions.
///
/// The vertex set is fixed at construction; edges come and go in batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynGraph {
    adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl DynGraph {
    /// An edgeless dynamic graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(
            n <= u32::MAX as usize,
            "DynGraph::new: too many vertices for u32 ids"
        );
        Self {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds the dynamic form of a CSR graph.
    pub fn from_graph(graph: &Graph) -> Self {
        Self {
            adj: graph.to_adjacency_lists(),
            num_edges: graph.num_edges(),
        }
    }

    /// Snapshots the current edge set back into CSR form.
    pub fn to_graph(&self) -> Graph {
        Graph::from_sorted_adjacency(&self.adj)
    }

    /// The current edge set as a canonical [`EdgeList`].
    pub fn to_edge_list(&self) -> EdgeList {
        self.to_graph().to_edge_list()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges currently present.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// The sorted neighbors of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// True if `{u, v}` is currently an edge.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Inserts a batch of edges. Self-loops, duplicates within the batch, and
    /// edges already present are ignored. Returns the edges that were
    /// actually added, canonical and sorted — the *effective* insertions.
    pub fn insert_edges(&mut self, edges: &[Edge]) -> Vec<Edge> {
        let batch = self.canonical_batch(edges, /* want_present: */ false);
        if batch.is_empty() {
            return batch;
        }
        self.apply_arcs(&batch, merge_insert);
        self.num_edges += batch.len();
        batch
    }

    /// Deletes a batch of edges. Self-loops, duplicates within the batch, and
    /// edges not present are ignored. Returns the edges that were actually
    /// removed, canonical and sorted — the *effective* deletions.
    pub fn delete_edges(&mut self, edges: &[Edge]) -> Vec<Edge> {
        let batch = self.canonical_batch(edges, /* want_present: */ true);
        if batch.is_empty() {
            return batch;
        }
        self.apply_arcs(&batch, merge_delete);
        self.num_edges -= batch.len();
        batch
    }

    /// Canonicalizes a raw batch and keeps the edges whose presence in the
    /// current graph matches `want_present`: radix sort + parallel dedup +
    /// parallel membership filter.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    fn canonical_batch(&self, edges: &[Edge], want_present: bool) -> Vec<Edge> {
        let n = self.num_vertices();
        let mut batch: Vec<Edge> = edges
            .par_iter()
            .filter(|e| !e.is_self_loop())
            .map(|e| e.canonical())
            .collect();
        for e in &batch {
            assert!(
                (e.v as usize) < n,
                "DynGraph: edge ({}, {}) out of range for n={n}",
                e.u,
                e.v
            );
        }
        sort_by_key_parallel(&mut batch, |e| e.sort_key());
        let batch = par_dedup_adjacent(batch);
        batch
            .into_par_iter()
            .filter(|e| self.has_edge(e.u, e.v) == want_present)
            .collect()
    }

    /// Expands `batch` into arcs grouped by source and applies `update` to
    /// each touched vertex's list, in parallel over the touched vertices.
    fn apply_arcs(&mut self, batch: &[Edge], update: impl Fn(&mut Vec<u32>, &[u32]) + Sync) {
        // Arcs keyed by `source << 32 | target`: after the radix sort they
        // are grouped by source with sorted targets inside every group.
        let mut arcs: Vec<(u32, u32)> = batch
            .par_iter()
            .flat_map_iter(|e| [(e.u, e.v), (e.v, e.u)])
            .collect();
        sort_by_key_parallel(&mut arcs, |&(u, v)| ((u as u64) << 32) | v as u64);
        let targets: Vec<u32> = arcs.par_iter().map(|&(_, v)| v).collect();

        // Per-source group boundaries, then one merge task per touched
        // vertex. The `iter_mut` walk hands each task exclusive ownership of
        // its vertex's list (sources are strictly increasing), so the merges
        // run in parallel without synchronization.
        let mut groups: Vec<(u32, std::ops::Range<usize>)> = Vec::new();
        let mut start = 0;
        while start < arcs.len() {
            let source = arcs[start].0;
            let mut end = start + 1;
            while end < arcs.len() && arcs[end].0 == source {
                end += 1;
            }
            groups.push((source, start..end));
            start = end;
        }
        let mut tasks: Vec<(&mut Vec<u32>, &[u32])> = Vec::with_capacity(groups.len());
        {
            let mut lists = self.adj.iter_mut().enumerate();
            for (source, range) in groups {
                let list = loop {
                    let (i, list) = lists.next().expect("source vertex in range");
                    if i == source as usize {
                        break list;
                    }
                };
                tasks.push((list, &targets[range]));
            }
        }
        par_map_blocks(tasks, &|(list, arcs): (&mut Vec<u32>, &[u32])| {
            update(list, arcs)
        });
    }
}

/// Merges the sorted, disjoint `add` targets into the sorted `list`.
fn merge_insert(list: &mut Vec<u32>, add: &[u32]) {
    let old = std::mem::take(list);
    let mut merged = Vec::with_capacity(old.len() + add.len());
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < add.len() {
        if old[i] < add[j] {
            merged.push(old[i]);
            i += 1;
        } else {
            debug_assert_ne!(old[i], add[j], "merge_insert: target already present");
            merged.push(add[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&old[i..]);
    merged.extend_from_slice(&add[j..]);
    *list = merged;
}

/// Removes the sorted `remove` targets (all present) from the sorted `list`.
fn merge_delete(list: &mut Vec<u32>, remove: &[u32]) {
    let old = std::mem::take(list);
    let mut kept = Vec::with_capacity(old.len() - remove.len());
    let mut j = 0;
    for x in old {
        if j < remove.len() && remove[j] == x {
            j += 1;
        } else {
            kept.push(x);
        }
    }
    debug_assert_eq!(j, remove.len(), "merge_delete: target not present");
    *list = kept;
}

#[cfg(test)]
mod tests {
    use super::*;
    use greedy_graph::gen::random::{random_edge_list, random_graph};
    use greedy_prims::random::hash64;

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs.iter().map(|&(u, v)| Edge::new(u, v)).collect()
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = DynGraph::new(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.to_graph(), Graph::empty(4));
    }

    #[test]
    fn insert_dedups_canonicalizes_and_skips_loops() {
        let mut g = DynGraph::new(5);
        let added = g.insert_edges(&edges(&[(1, 0), (0, 1), (2, 2), (3, 4), (4, 3)]));
        assert_eq!(added, edges(&[(0, 1), (3, 4)]));
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(2, 2));
        // Re-inserting present edges is a no-op.
        let added = g.insert_edges(&edges(&[(0, 1), (1, 2)]));
        assert_eq!(added, edges(&[(1, 2)]));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn delete_skips_absent_edges() {
        let mut g = DynGraph::new(4);
        g.insert_edges(&edges(&[(0, 1), (1, 2), (2, 3)]));
        let removed = g.delete_edges(&edges(&[(1, 2), (0, 3), (2, 1)]));
        assert_eq!(removed, edges(&[(1, 2)]));
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(1, 2));
        assert!(g.has_edge(0, 1) && g.has_edge(2, 3));
    }

    #[test]
    fn csr_roundtrip_after_updates() {
        let base = random_graph(200, 600, 7);
        let mut g = DynGraph::from_graph(&base);
        assert_eq!(g.to_graph(), base);
        g.insert_edges(&edges(&[(0, 199), (5, 17)]));
        g.delete_edges(&[base.to_edge_list().edges()[0]]);
        let snap = g.to_graph();
        assert!(snap.validate().is_ok());
        assert_eq!(snap.num_edges(), g.num_edges());
        assert_eq!(DynGraph::from_graph(&snap), g);
    }

    #[test]
    fn batched_updates_match_rebuilt_graph() {
        // Applying random insert/delete batches must leave exactly the edge
        // set a from-scratch build of the surviving edges produces.
        let n = 300;
        let mut g = DynGraph::new(n);
        let mut reference: std::collections::BTreeSet<(u32, u32)> = Default::default();
        for round in 0..10u64 {
            let ins = random_edge_list(n, 150, hash64(1, round)).into_parts().1;
            let del: Vec<Edge> = random_edge_list(n, 80, hash64(2, round)).into_parts().1;
            g.delete_edges(&del);
            for e in &del {
                let c = e.canonical();
                if !c.is_self_loop() {
                    reference.remove(&(c.u, c.v));
                }
            }
            g.insert_edges(&ins);
            for e in &ins {
                let c = e.canonical();
                if !c.is_self_loop() {
                    reference.insert((c.u, c.v));
                }
            }
            let expected: Vec<Edge> = reference.iter().map(|&(u, v)| Edge::new(u, v)).collect();
            assert_eq!(
                g.to_graph(),
                Graph::from_edges(n, &expected),
                "round {round}"
            );
            assert_eq!(g.num_edges(), reference.len());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_rejects_out_of_range() {
        DynGraph::new(3).insert_edges(&edges(&[(0, 3)]));
    }
}
