//! Mutable adjacency under batched edge updates: a flat slack-CSR arena with
//! a stable edge-slot allocator.
//!
//! [`DynGraph`] is the representation the engine edits between snapshots. It
//! keeps the same logical invariants as [`greedy_graph::csr::Graph`] — per
//! vertex a strictly sorted, symmetric, loop- and duplicate-free neighbor
//! list — but stores them in **one flat arena** instead of `Vec<Vec<u32>>`:
//!
//! * `nbr` / `slot` are two parallel arrays; vertex `v` owns the *segment*
//!   `seg_start[v] .. seg_start[v] + seg_cap[v]`, its live entries
//!   front-packed and sorted in the first `seg_len[v]` positions. The tail
//!   of each segment is *slack* (PMA-style gaps), so a batch insert usually
//!   shuffles entries locally inside the segment instead of touching
//!   anything else;
//! * a vertex that outgrows its segment is **relocated**: its merged list is
//!   appended at the arena tail with fresh slack — an O(degree) local move
//!   that orphans the old segment as *dead space*. When dead space piles up
//!   (or a batch touches so many overflowing vertices that local moves would
//!   thrash), the whole arena is **rebuilt in parallel** with fresh
//!   per-vertex slack — an amortized cost fanned out over vertex blocks with
//!   [`par_map_blocks`];
//! * every live edge `{u, v}` owns a **stable dense slot id**, handed out by
//!   a free-list allocator: the id survives every batch that does not delete
//!   the edge itself (local shuffles, relocations, and arena rebuilds move
//!   the *arc entries*, never the id), and freed ids are recycled
//!   deterministically. Both arcs of an edge carry its slot (`slot[i]` is
//!   the slot of edge `{v, nbr[i]}`), so slot lookup is the same binary
//!   search as a membership probe.
//!
//! Stable slot ids are what let the matching repair run as a
//! [`greedy_core::dag::ConflictDag`] over dense edge items (see
//! `crate::matching`); the flat layout cuts the pointer chase on the hot
//! membership probes.
//!
//! Batch updates keep the workspace's sorting discipline: the batch is
//! canonicalized (self-loops dropped, endpoints ordered, duplicates removed)
//! with the parallel radix sort from `greedy_prims::sort`, filtered against
//! the current edge set in parallel, expanded into arcs, radix-sorted by
//! source, and merged per touched vertex — one in-segment merge per vertex,
//! fanned out with [`par_map_blocks`] so distinct vertices update
//! concurrently while each segment stays a single owner's work. Every phase
//! (including slot allocation and segment relocation, which walk the
//! canonical batch in order) is deterministic, so the adjacency *and the
//! slot assignment* are byte-identical across thread counts.

use greedy_graph::csr::Graph;
use greedy_graph::edge_list::{Edge, EdgeList};
use greedy_obs::{EventJournal, EventKind};
use greedy_prims::pack::par_dedup_adjacent;
use greedy_prims::scan::counts_to_offsets;
use greedy_prims::sort::sort_by_key_parallel;
use greedy_prims::util::{blocks, default_num_blocks, par_map_blocks};
use rayon::prelude::*;
use std::sync::Arc;

/// Sentinel key marking a free slot in the allocator table. Never collides
/// with a live edge's packed key: `u64::MAX` packs to the self-loop
/// `{u32::MAX, u32::MAX}`, which no canonical batch admits.
const FREE_KEY: u64 = u64::MAX;

/// Why a full arena rebuild ran. Every [`DynGraph::rebuild`] site names its
/// trigger so the per-reason counters (and the event journal's
/// `arena_rebuild` entries) can tell amortization pathologies apart: a
/// workload rebuilding on `DeadSpace` every batch is thrashing relocations,
/// one rebuilding on `InsertOverflow` is growing densely — same counter
/// total, opposite fixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildTrigger {
    /// The initial bulk build from an existing graph ([`DynGraph::from_graph`]).
    Initial,
    /// An insert batch overflowed most of the segments it touched, so one
    /// parallel rebuild beat thrashing the tail with relocations.
    InsertOverflow,
    /// Dead space orphaned by relocations passed the compaction threshold.
    DeadSpace,
    /// Mass deletion left the arena mostly non-live; compacted to track the
    /// live edge set.
    Shrink,
}

impl RebuildTrigger {
    /// Every trigger, in counter order.
    pub const ALL: [RebuildTrigger; 4] = [
        RebuildTrigger::Initial,
        RebuildTrigger::InsertOverflow,
        RebuildTrigger::DeadSpace,
        RebuildTrigger::Shrink,
    ];

    /// The trigger's stable snake_case label, used as the metric-name suffix
    /// and the journal event's `reason=` field.
    pub fn label(self) -> &'static str {
        match self {
            RebuildTrigger::Initial => "initial",
            RebuildTrigger::InsertOverflow => "insert_overflow",
            RebuildTrigger::DeadSpace => "dead_space",
            RebuildTrigger::Shrink => "shrink",
        }
    }

    fn index(self) -> usize {
        match self {
            RebuildTrigger::Initial => 0,
            RebuildTrigger::InsertOverflow => 1,
            RebuildTrigger::DeadSpace => 2,
            RebuildTrigger::Shrink => 3,
        }
    }
}

/// One effective edge update, as reported by [`DynGraph::insert_edges`] /
/// [`DynGraph::delete_edges`]: the canonical edge plus the stable slot id it
/// was assigned (insert) or gave up (delete).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotUpdate {
    /// The canonical edge (`u <= v`).
    pub edge: Edge,
    /// Its stable slot id.
    pub slot: u32,
}

/// An undirected graph under batched edge insertions and deletions, stored
/// as a flat slack-CSR arena with stable per-edge slot ids.
///
/// The vertex set is fixed at construction; edges come and go in batches.
#[derive(Debug, Clone)]
pub struct DynGraph {
    /// Neighbor arena; live entries of `v` are
    /// `nbr[seg_start[v] .. seg_start[v] + seg_len[v]]`, strictly sorted.
    nbr: Vec<u32>,
    /// Slot arena, parallel to `nbr`: `slot[i]` is the slot id of the edge
    /// `{v, nbr[i]}` for `i` inside `v`'s live prefix.
    slot: Vec<u32>,
    /// Segment start per vertex. Segments are disjoint but **not** ordered by
    /// vertex id — a relocated vertex lives at the arena tail.
    seg_start: Vec<usize>,
    /// Segment capacity per vertex (live entries + slack).
    seg_cap: Vec<usize>,
    /// Live entries per vertex.
    seg_len: Vec<usize>,
    /// Arena entries belonging to no segment (orphaned by relocations).
    dead: usize,
    num_edges: usize,
    /// Slot table: packed canonical key of the live edge occupying each slot,
    /// or [`FREE_KEY`]. Indexed by slot id; never shrinks, so ids are dense.
    slot_key: Vec<u64>,
    /// Freed slot ids, reused LIFO. Deterministic: frees and allocations both
    /// walk canonical batch order.
    free_slots: Vec<u32>,
    /// Full arena rebuilds performed so far (amortization observability).
    rebuilds: u64,
    /// Rebuilds by [`RebuildTrigger`], indexed by `RebuildTrigger::index`.
    rebuilds_by: [u64; 4],
    /// Single-segment tail relocations performed so far.
    relocations: u64,
    /// Parallel block tasks the most recent rebuild fanned out — tests assert
    /// even small-vertex rebalances split into multiple tasks.
    last_rebuild_tasks: usize,
    /// Optional event journal: rebuilds and relocations are rare enough to
    /// keep individually (see [`EventJournal`]). Excluded from `PartialEq`
    /// (logical equality) like the rest of the history-dependent state.
    journal: Option<Arc<EventJournal>>,
    /// Shard id stamped onto journal events (0 for a single-engine arena).
    shard_tag: u32,
}

/// Logical equality: same vertex count and same live adjacency. Slack layout
/// and slot assignment are history-dependent and deliberately excluded.
impl PartialEq for DynGraph {
    fn eq(&self, other: &Self) -> bool {
        self.num_vertices() == other.num_vertices()
            && self.num_edges == other.num_edges
            && (0..self.num_vertices() as u32).all(|v| self.neighbors(v) == other.neighbors(v))
    }
}

impl Eq for DynGraph {}

/// Slack granted to a vertex on rebuild/relocation, as a function of its live
/// degree: half the degree again, at least 2 — so repeated inserts into one
/// vertex amortize, and a previously-empty vertex can absorb a couple of
/// arcs without moving.
fn slack_for(len: usize) -> usize {
    (len / 2).max(2)
}

/// Packs an arc `(source, target)` into the radix key that groups by source
/// with sorted targets inside every group.
#[inline]
fn arc_key(source: u32, target: u32) -> u64 {
    ((source as u64) << 32) | target as u64
}

/// An insertion arc: `(source, target, slot of the edge)`.
type InsArc = (u32, u32, u32);

/// Per-source arc group ranges; sources strictly increasing.
type ArcGroups = Vec<(u32, std::ops::Range<usize>)>;

impl DynGraph {
    /// An edgeless dynamic graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(
            n <= u32::MAX as usize,
            "DynGraph::new: too many vertices for u32 ids"
        );
        Self {
            nbr: Vec::new(),
            slot: Vec::new(),
            seg_start: vec![0; n],
            seg_cap: vec![0; n],
            seg_len: vec![0; n],
            dead: 0,
            num_edges: 0,
            slot_key: Vec::new(),
            free_slots: Vec::new(),
            rebuilds: 0,
            rebuilds_by: [0; 4],
            relocations: 0,
            last_rebuild_tasks: 0,
            journal: None,
            shard_tag: 0,
        }
    }

    /// Builds the dynamic form of a CSR graph. Edge `i` of the graph's
    /// canonical edge list gets slot `i`.
    pub fn from_graph(graph: &Graph) -> Self {
        let mut g = Self::new(graph.num_vertices());
        let edges = graph.to_edge_list().into_parts().1;
        let updates: Vec<SlotUpdate> = edges
            .iter()
            .map(|&e| SlotUpdate {
                edge: e,
                slot: g.alloc_slot(e),
            })
            .collect();
        let (arcs, groups) = arcs_of(&updates);
        g.rebuild(&arcs, &groups, RebuildTrigger::Initial);
        g.num_edges = edges.len();
        g
    }

    /// Snapshots the current edge set back into CSR form (compacts the live
    /// prefixes; the slack never leaves the arena).
    pub fn to_graph(&self) -> Graph {
        let offsets = counts_to_offsets(&self.seg_len);
        let neighbors: Vec<u32> = (0..self.num_vertices() as u32)
            .into_par_iter()
            .flat_map_iter(|v| self.neighbors(v).iter().copied())
            .collect();
        Graph::from_csr_arrays(offsets, neighbors)
    }

    /// The current edge set as a canonical [`EdgeList`].
    pub fn to_edge_list(&self) -> EdgeList {
        self.to_graph().to_edge_list()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.seg_len.len()
    }

    /// Number of undirected edges currently present.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of slots ever allocated (live + free). Slot ids are dense in
    /// `0..num_slots()`; this is the item count of the matching's
    /// conflict DAG.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.slot_key.len()
    }

    /// The degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.seg_len[v as usize]
    }

    /// The sorted neighbors of vertex `v` — a contiguous arena slice.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let start = self.seg_start[v as usize];
        &self.nbr[start..start + self.seg_len[v as usize]]
    }

    /// The slot ids of `v`'s incident edges, parallel to
    /// [`DynGraph::neighbors`].
    #[inline]
    pub fn neighbor_slots(&self, v: u32) -> &[u32] {
        let start = self.seg_start[v as usize];
        &self.slot[start..start + self.seg_len[v as usize]]
    }

    /// True if `{u, v}` is currently an edge: one binary search in the
    /// smaller endpoint's live prefix, touching only the neighbor arena.
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// The stable slot id of edge `{u, v}`, or `None` when absent.
    #[inline]
    pub fn edge_slot(&self, u: u32, v: u32) -> Option<u32> {
        if u == v {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a)
            .binary_search(&b)
            .ok()
            .map(|i| self.neighbor_slots(a)[i])
    }

    /// The edge occupying `slot`, or `None` when the slot is free.
    ///
    /// # Panics
    /// Panics if `slot` was never allocated.
    pub fn slot_edge(&self, slot: u32) -> Option<Edge> {
        let key = self.slot_key[slot as usize];
        (key != FREE_KEY).then(|| Edge::new((key >> 32) as u32, key as u32))
    }

    /// Every live edge with its slot, in slot-id order.
    pub fn live_slot_updates(&self) -> Vec<SlotUpdate> {
        self.slot_key
            .par_iter()
            .enumerate()
            .filter_map(|(s, &key)| {
                (key != FREE_KEY).then(|| SlotUpdate {
                    edge: Edge::new((key >> 32) as u32, key as u32),
                    slot: s as u32,
                })
            })
            .collect()
    }

    /// Full arena rebuilds performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Rebuilds attributed to one trigger; the four reasons sum to
    /// [`DynGraph::rebuilds`].
    pub fn rebuilds_for(&self, trigger: RebuildTrigger) -> u64 {
        self.rebuilds_by[trigger.index()]
    }

    /// Single-segment relocations (local overflow fixes) performed so far.
    pub fn relocations(&self) -> u64 {
        self.relocations
    }

    /// Arena entries belonging to no segment (orphaned by relocations and
    /// reclaimed by the next rebuild).
    pub fn dead_entries(&self) -> usize {
        self.dead
    }

    /// Freed slot ids currently awaiting reuse.
    pub fn free_list_len(&self) -> usize {
        self.free_slots.len()
    }

    /// Feeds arena rebuilds and relocations into `journal` from here on.
    /// Recording is a no-op in `obs-off` builds.
    pub fn attach_journal(&mut self, journal: Arc<EventJournal>) {
        self.journal = Some(journal);
    }

    /// Stamps journal events from this arena with a shard id (a sharded
    /// engine tags each shard's arena; single-engine arenas stay at 0).
    pub fn set_shard_tag(&mut self, shard: u32) {
        self.shard_tag = shard;
    }

    /// Parallel block tasks the most recent rebuild fanned out over
    /// [`par_map_blocks`] (0 before any rebuild).
    pub fn last_rebuild_tasks(&self) -> usize {
        self.last_rebuild_tasks
    }

    /// Total arena size (live + slack + dead entries).
    pub fn arena_capacity(&self) -> usize {
        self.nbr.len()
    }

    /// Inserts a batch of edges. Self-loops, duplicates within the batch, and
    /// edges already present are ignored. Returns the edges actually added,
    /// canonical and sorted, each with its freshly assigned stable slot.
    pub fn insert_edges(&mut self, edges: &[Edge]) -> Vec<SlotUpdate> {
        let batch = self.canonical_batch(edges, /* want_present: */ false);
        if batch.is_empty() {
            return Vec::new();
        }
        let updates: Vec<SlotUpdate> = batch
            .iter()
            .map(|&e| SlotUpdate {
                edge: e,
                slot: self.alloc_slot(e),
            })
            .collect();
        let (arcs, groups) = arcs_of(&updates);
        let (fits, overflows): (Vec<_>, Vec<_>) = groups.into_iter().partition(|&(v, ref r)| {
            self.seg_len[v as usize] + r.len() <= self.seg_cap[v as usize]
        });
        // A batch that overflows most of what it touches (the dense-growth
        // case — e.g. the first batch into a fresh graph) rebuilds outright:
        // one parallel pass beats thrashing the tail with relocations.
        if overflows.len() > fits.len().max(4) {
            let mut groups = fits;
            groups.extend(overflows);
            groups.sort_unstable_by_key(|&(v, _)| v);
            self.rebuild(&arcs, &groups, RebuildTrigger::InsertOverflow);
        } else {
            self.merge_insert_groups(&arcs, &fits);
            for &(v, ref range) in &overflows {
                self.relocate_with_merge(v, &arcs[range.clone()]);
            }
            // Relocations orphan their old segments; compact once the dead
            // space dominates (amortized: a third of the arena must die
            // between rebuilds).
            if self.dead > 64 && self.dead * 3 > self.nbr.len() {
                self.rebuild(&[], &[], RebuildTrigger::DeadSpace);
            }
        }
        self.num_edges += updates.len();
        updates
    }

    /// Deletes a batch of edges. Self-loops, duplicates within the batch, and
    /// edges not present are ignored. Returns the edges actually removed,
    /// canonical and sorted, each with the slot id it held (now freed).
    pub fn delete_edges(&mut self, edges: &[Edge]) -> Vec<SlotUpdate> {
        let batch = self.canonical_batch(edges, /* want_present: */ true);
        if batch.is_empty() {
            return Vec::new();
        }
        let updates: Vec<SlotUpdate> = batch
            .par_iter()
            .map(|&e| SlotUpdate {
                edge: e,
                slot: self.edge_slot(e.u, e.v).expect("filtered to present edges"),
            })
            .collect();

        // Arcs grouped by source; one in-segment compaction per touched
        // vertex, distinct segments in parallel.
        let mut arcs: Vec<(u32, u32)> = batch
            .par_iter()
            .flat_map_iter(|e| [(e.u, e.v), (e.v, e.u)])
            .collect();
        sort_by_key_parallel(&mut arcs, |&(u, v)| arc_key(u, v));
        let groups = group_by_source(arcs.len(), |i| arcs[i].0);
        let segments = split_segments(
            &mut self.nbr,
            &mut self.slot,
            &self.seg_start,
            &self.seg_cap,
            groups.iter().map(|&(v, _)| v),
        );
        let tasks: Vec<_> = segments
            .into_iter()
            .zip(&groups)
            .map(|((seg_n, seg_s), &(v, ref range))| {
                let targets: Vec<u32> = arcs[range.clone()].iter().map(|&(_, t)| t).collect();
                (seg_n, seg_s, self.seg_len[v as usize], targets)
            })
            .collect();
        let new_lens = par_map_blocks(tasks, &|(seg_n, seg_s, live, targets): (
            &mut [u32],
            &mut [u32],
            usize,
            Vec<u32>,
        )| {
            remove_from_segment(seg_n, seg_s, live, &targets)
        });
        for (&(v, _), new_len) in groups.iter().zip(new_lens) {
            self.seg_len[v as usize] = new_len;
        }
        self.num_edges -= updates.len();
        for u in &updates {
            self.free_slot(u.slot);
        }

        // Compact when the arena is mostly non-live, so memory tracks the
        // live edge set. The bound leaves the baseline slack (≈ live/2 + 2n)
        // alone and keeps rebuild cost amortized.
        let live_entries = 2 * self.num_edges;
        if self.nbr.len() > 64 && self.nbr.len() > 3 * live_entries + 4 * self.num_vertices() {
            self.rebuild(&[], &[], RebuildTrigger::Shrink);
        }
        updates
    }

    /// Checks every representation invariant; returns a description of the
    /// first violation. Meant for tests and the property suite — O(m log m).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.seg_start.len() != n || self.seg_cap.len() != n || self.seg_len.len() != n {
            return Err("per-vertex arrays have the wrong length".into());
        }
        if self.nbr.len() != self.slot.len() {
            return Err("nbr and slot arenas differ in length".into());
        }
        // Segments must be disjoint and, with the dead space, tile the arena.
        let mut spans: Vec<(usize, usize, u32)> = (0..n)
            .map(|v| (self.seg_start[v], self.seg_cap[v], v as u32))
            .collect();
        spans.sort_unstable();
        let mut covered = 0usize;
        for w in spans.windows(2) {
            let (start, cap, v) = w[0];
            if start + cap > w[1].0 {
                return Err(format!("segment of {v} overlaps the next segment"));
            }
        }
        for &(start, cap, _) in &spans {
            if start + cap > self.nbr.len() {
                return Err("segment exceeds the arena".into());
            }
            covered += cap;
        }
        if covered + self.dead != self.nbr.len() {
            return Err(format!(
                "segments cover {covered} + dead {} != arena {}",
                self.dead,
                self.nbr.len()
            ));
        }
        let mut live_arcs = 0usize;
        for v in 0..n as u32 {
            let len = self.seg_len[v as usize];
            if len > self.seg_cap[v as usize] {
                return Err(format!("vertex {v} live prefix exceeds its segment"));
            }
            live_arcs += len;
            let nbrs = self.neighbors(v);
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {v} is not strictly sorted"));
            }
            for (&w, &s) in nbrs.iter().zip(self.neighbor_slots(v)) {
                if w == v {
                    return Err(format!("self-loop at {v}"));
                }
                if w as usize >= n {
                    return Err(format!("vertex {v} has out-of-range neighbor {w}"));
                }
                let key = Edge::new(v, w).canonical().sort_key();
                if self.slot_key.get(s as usize) != Some(&key) {
                    return Err(format!(
                        "arc {v}->{w} carries slot {s} but the slot table disagrees"
                    ));
                }
                if self.edge_slot(w, v) != Some(s) {
                    return Err(format!("arc {v}->{w} has no symmetric twin with slot {s}"));
                }
            }
        }
        if live_arcs != 2 * self.num_edges {
            return Err(format!(
                "live arc count {live_arcs} != 2 * num_edges {}",
                self.num_edges
            ));
        }
        let free = self.slot_key.iter().filter(|&&k| k == FREE_KEY).count();
        if free != self.free_slots.len() {
            return Err(format!(
                "{free} slots marked free but the free list holds {}",
                self.free_slots.len()
            ));
        }
        if self.slot_key.len() - free != self.num_edges {
            return Err("live slot count != num_edges".into());
        }
        let mut seen = vec![false; self.slot_key.len()];
        for &s in &self.free_slots {
            if self.slot_key[s as usize] != FREE_KEY {
                return Err(format!("free list holds live slot {s}"));
            }
            if std::mem::replace(&mut seen[s as usize], true) {
                return Err(format!("free list holds slot {s} twice"));
            }
        }
        Ok(())
    }

    /// Allocates a slot for canonical edge `e`: recycles the most recently
    /// freed id, else grows the table.
    fn alloc_slot(&mut self, e: Edge) -> u32 {
        debug_assert!(e.u < e.v, "alloc_slot: edge must be canonical");
        let key = e.sort_key();
        match self.free_slots.pop() {
            Some(s) => {
                debug_assert_eq!(self.slot_key[s as usize], FREE_KEY);
                self.slot_key[s as usize] = key;
                s
            }
            None => {
                let s = u32::try_from(self.slot_key.len()).expect("slot ids exceed u32");
                self.slot_key.push(key);
                s
            }
        }
    }

    /// Returns `slot` to the free list.
    fn free_slot(&mut self, slot: u32) {
        debug_assert_ne!(self.slot_key[slot as usize], FREE_KEY);
        self.slot_key[slot as usize] = FREE_KEY;
        self.free_slots.push(slot);
    }

    /// Canonicalizes a raw batch and keeps the edges whose presence in the
    /// current graph matches `want_present`: radix sort + parallel dedup +
    /// parallel membership filter.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    fn canonical_batch(&self, edges: &[Edge], want_present: bool) -> Vec<Edge> {
        let n = self.num_vertices();
        let mut batch: Vec<Edge> = edges
            .par_iter()
            .filter(|e| !e.is_self_loop())
            .map(|e| e.canonical())
            .collect();
        for e in &batch {
            assert!(
                (e.v as usize) < n,
                "DynGraph: edge ({}, {}) out of range for n={n}",
                e.u,
                e.v
            );
        }
        sort_by_key_parallel(&mut batch, |e| e.sort_key());
        let batch = par_dedup_adjacent(batch);
        batch
            .into_par_iter()
            .filter(|e| self.has_edge(e.u, e.v) == want_present)
            .collect()
    }

    /// In-segment path: every listed vertex has room, so each group merges
    /// into its own segment (a local back-to-front shuffle across the slack),
    /// distinct segments in parallel.
    fn merge_insert_groups(&mut self, arcs: &[InsArc], groups: &[(u32, std::ops::Range<usize>)]) {
        let segments = split_segments(
            &mut self.nbr,
            &mut self.slot,
            &self.seg_start,
            &self.seg_cap,
            groups.iter().map(|&(v, _)| v),
        );
        let tasks: Vec<_> = segments
            .into_iter()
            .zip(groups)
            .map(|((seg_n, seg_s), &(v, ref range))| {
                (seg_n, seg_s, self.seg_len[v as usize], &arcs[range.clone()])
            })
            .collect();
        par_map_blocks(tasks, &|(seg_n, seg_s, live, add): (
            &mut [u32],
            &mut [u32],
            usize,
            &[InsArc],
        )| {
            merge_into_segment(seg_n, seg_s, live, add);
        });
        for &(v, ref range) in groups {
            self.seg_len[v as usize] += range.len();
        }
    }

    /// Local overflow fix: appends `v`'s merged list (old live prefix + the
    /// sorted `add` arcs) at the arena tail with fresh slack, orphaning the
    /// old segment as dead space. O(degree), touches nothing else.
    fn relocate_with_merge(&mut self, v: u32, add: &[InsArc]) {
        let v = v as usize;
        let live = self.seg_len[v];
        let old_start = self.seg_start[v];
        let new_len = live + add.len();
        let new_cap = new_len + slack_for(new_len);
        let new_start = self.nbr.len();
        self.nbr.resize(new_start + new_cap, 0);
        self.slot.resize(new_start + new_cap, 0);
        // The old segment lies entirely before `new_start` (the pre-resize
        // arena length), so splitting there yields disjoint read/write
        // regions for the merge.
        let (head_n, tail_n) = self.nbr.split_at_mut(new_start);
        let (head_s, tail_s) = self.slot.split_at_mut(new_start);
        merge_live_with_arcs(
            &head_n[old_start..old_start + live],
            &head_s[old_start..old_start + live],
            add,
            &mut tail_n[..new_len],
            &mut tail_s[..new_len],
        );
        self.dead += self.seg_cap[v];
        self.seg_start[v] = new_start;
        self.seg_cap[v] = new_cap;
        self.seg_len[v] = new_len;
        self.relocations += 1;
        if let Some(j) = &self.journal {
            j.record(EventKind::ArenaRelocation {
                vertex: v as u64,
                new_cap: new_cap as u64,
            });
        }
    }

    /// Rebuilds the whole arena with fresh per-vertex slack, merging the
    /// pending insertion `arcs` (may be empty — pure compaction) into the
    /// live prefixes on the way. Fanned out over contiguous vertex blocks
    /// with [`par_map_blocks`]; each block writes a disjoint region of the
    /// new arena, so the copy is race-free and deterministic.
    fn rebuild(
        &mut self,
        arcs: &[InsArc],
        groups: &[(u32, std::ops::Range<usize>)],
        trigger: RebuildTrigger,
    ) {
        let n = self.num_vertices();
        // Additions per vertex (sparse -> dense walk of the sorted groups).
        let mut add_range: Vec<std::ops::Range<usize>> = vec![0..0; n];
        for &(v, ref r) in groups {
            add_range[v as usize] = r.clone();
        }
        let caps: Vec<usize> = self
            .seg_len
            .par_iter()
            .zip(add_range.par_iter())
            .map(|(&len, r)| {
                let new_len = len + r.len();
                new_len + slack_for(new_len)
            })
            .collect();
        let new_start = counts_to_offsets(&caps);
        let total = new_start[n];
        let mut new_nbr = vec![0u32; total];
        let mut new_slot = vec![0u32; total];

        // One coarse task per vertex block; block b owns the new-arena region
        // [new_start[block.start], new_start[block.end]).
        let vblocks = blocks(n, 8, default_num_blocks());
        self.last_rebuild_tasks = vblocks.len();
        let mut tasks = Vec::with_capacity(vblocks.len());
        {
            let mut rest_nbr: &mut [u32] = &mut new_nbr;
            let mut rest_slot: &mut [u32] = &mut new_slot;
            let mut consumed = 0usize;
            for vb in vblocks {
                let end = new_start[vb.end];
                let (chunk_n, rem_n) = std::mem::take(&mut rest_nbr).split_at_mut(end - consumed);
                let (chunk_s, rem_s) = std::mem::take(&mut rest_slot).split_at_mut(end - consumed);
                rest_nbr = rem_n;
                rest_slot = rem_s;
                let base = consumed;
                consumed = end;
                tasks.push((vb, base, chunk_n, chunk_s));
            }
        }
        let this = &*self;
        let new_start_ref = &new_start;
        let add_range_ref = &add_range;
        par_map_blocks(tasks, &|(vb, base, chunk_n, chunk_s): (
            std::ops::Range<usize>,
            usize,
            &mut [u32],
            &mut [u32],
        )| {
            for v in vb {
                let dst = new_start_ref[v] - base;
                let live = this.seg_len[v];
                let src = this.seg_start[v];
                let add = &arcs[add_range_ref[v].clone()];
                merge_live_with_arcs(
                    &this.nbr[src..src + live],
                    &this.slot[src..src + live],
                    add,
                    &mut chunk_n[dst..dst + live + add.len()],
                    &mut chunk_s[dst..dst + live + add.len()],
                );
            }
        });
        for (len, r) in self.seg_len.iter_mut().zip(&add_range) {
            *len += r.len();
        }
        self.nbr = new_nbr;
        self.slot = new_slot;
        self.seg_start = new_start[..n].to_vec();
        self.seg_cap = caps;
        self.dead = 0;
        self.rebuilds += 1;
        self.rebuilds_by[trigger.index()] += 1;
        if let Some(j) = &self.journal {
            j.record(EventKind::ArenaRebuild {
                shard: self.shard_tag as u64,
                reason: trigger.label(),
                capacity: self.nbr.len() as u64,
                tasks: self.last_rebuild_tasks as u64,
            });
        }
    }
}

/// Hands out exclusive `(nbr, slot)` sub-slices of the listed vertices'
/// segments — the ownership split that lets per-vertex merges run in
/// parallel without synchronization. Segments are disjoint but not ordered
/// by vertex id (relocations move vertices to the tail), so the split walks
/// them in arena order and restores the caller's order at the end.
fn split_segments<'a>(
    nbr: &'a mut [u32],
    slot: &'a mut [u32],
    seg_start: &[usize],
    seg_cap: &[usize],
    sources: impl Iterator<Item = u32>,
) -> Vec<(&'a mut [u32], &'a mut [u32])> {
    let mut order: Vec<(usize, usize, usize)> = sources
        .enumerate()
        .map(|(i, v)| (seg_start[v as usize], seg_cap[v as usize], i))
        .collect();
    order.sort_unstable();
    let mut out: Vec<Option<(&'a mut [u32], &'a mut [u32])>> =
        (0..order.len()).map(|_| None).collect();
    let mut rest_nbr = nbr;
    let mut rest_slot = slot;
    let mut consumed = 0usize;
    for (start, cap, i) in order {
        let (_, rem_n) = std::mem::take(&mut rest_nbr).split_at_mut(start - consumed);
        let (_, rem_s) = std::mem::take(&mut rest_slot).split_at_mut(start - consumed);
        let (seg_n, rem_n) = rem_n.split_at_mut(cap);
        let (seg_s, rem_s) = rem_s.split_at_mut(cap);
        rest_nbr = rem_n;
        rest_slot = rem_s;
        consumed = start + cap;
        out[i] = Some((seg_n, seg_s));
    }
    out.into_iter()
        .map(|s| s.expect("every source got its segment"))
        .collect()
}

/// Expands effective insertions into `(source, target, slot)` arcs grouped by
/// source (radix sort), plus the per-source group ranges.
fn arcs_of(updates: &[SlotUpdate]) -> (Vec<InsArc>, ArcGroups) {
    let mut arcs: Vec<InsArc> = updates
        .par_iter()
        .flat_map_iter(|u| [(u.edge.u, u.edge.v, u.slot), (u.edge.v, u.edge.u, u.slot)])
        .collect();
    sort_by_key_parallel(&mut arcs, |&(s, t, _)| arc_key(s, t));
    let groups = group_by_source(arcs.len(), |i| arcs[i].0);
    (arcs, groups)
}

/// Walks sorted arcs and returns `(source, range)` per maximal same-source
/// run. Sources come out strictly increasing.
fn group_by_source(len: usize, source_at: impl Fn(usize) -> u32) -> ArcGroups {
    let mut groups = Vec::new();
    let mut start = 0;
    while start < len {
        let source = source_at(start);
        let mut end = start + 1;
        while end < len && source_at(end) == source {
            end += 1;
        }
        groups.push((source, start..end));
        start = end;
    }
    groups
}

/// Front-to-back merge of a sorted live prefix with sorted, disjoint
/// insertion arcs into a separate destination region of exactly
/// `src_n.len() + add.len()` entries — the copy both segment relocation and
/// the arena rebuild perform per vertex.
fn merge_live_with_arcs(
    src_n: &[u32],
    src_s: &[u32],
    add: &[InsArc],
    dst_n: &mut [u32],
    dst_s: &mut [u32],
) {
    debug_assert_eq!(src_n.len() + add.len(), dst_n.len());
    let (mut i, mut j, mut w) = (0, 0, 0);
    while i < src_n.len() && j < add.len() {
        if src_n[i] < add[j].1 {
            dst_n[w] = src_n[i];
            dst_s[w] = src_s[i];
            i += 1;
        } else {
            debug_assert_ne!(src_n[i], add[j].1, "target already present");
            dst_n[w] = add[j].1;
            dst_s[w] = add[j].2;
            j += 1;
        }
        w += 1;
    }
    while i < src_n.len() {
        dst_n[w] = src_n[i];
        dst_s[w] = src_s[i];
        i += 1;
        w += 1;
    }
    for &(_, t, s) in &add[j..] {
        dst_n[w] = t;
        dst_s[w] = s;
        w += 1;
    }
}

/// Merges the sorted, disjoint `add` arcs into the segment's live prefix of
/// length `live`, in place, back to front — the local shuffle across the
/// segment's slack. The caller guarantees `live + add.len()` fits the
/// segment.
fn merge_into_segment(seg_n: &mut [u32], seg_s: &mut [u32], live: usize, add: &[InsArc]) {
    let mut i = live;
    let mut j = add.len();
    let mut w = live + add.len();
    while j > 0 {
        if i > 0 && seg_n[i - 1] > add[j - 1].1 {
            w -= 1;
            i -= 1;
            seg_n[w] = seg_n[i];
            seg_s[w] = seg_s[i];
        } else {
            debug_assert!(
                i == 0 || seg_n[i - 1] != add[j - 1].1,
                "target already present"
            );
            w -= 1;
            j -= 1;
            seg_n[w] = add[j].1;
            seg_s[w] = add[j].2;
        }
    }
}

/// Removes the sorted `targets` (all present) from the segment's live prefix
/// of length `live`, compacting toward the front. Returns the new live
/// length.
fn remove_from_segment(
    seg_n: &mut [u32],
    seg_s: &mut [u32],
    live: usize,
    targets: &[u32],
) -> usize {
    let mut w = 0usize;
    let mut j = 0usize;
    for i in 0..live {
        if j < targets.len() && targets[j] == seg_n[i] {
            j += 1;
        } else {
            seg_n[w] = seg_n[i];
            seg_s[w] = seg_s[i];
            w += 1;
        }
    }
    debug_assert_eq!(j, targets.len(), "remove_from_segment: target not present");
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use greedy_graph::gen::random::{random_edge_list, random_graph};
    use greedy_prims::random::hash64;

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs.iter().map(|&(u, v)| Edge::new(u, v)).collect()
    }

    fn edges_of(updates: &[SlotUpdate]) -> Vec<Edge> {
        updates.iter().map(|u| u.edge).collect()
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = DynGraph::new(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.to_graph(), Graph::empty(4));
        g.validate().unwrap();
    }

    #[test]
    fn insert_dedups_canonicalizes_and_skips_loops() {
        let mut g = DynGraph::new(5);
        let added = g.insert_edges(&edges(&[(1, 0), (0, 1), (2, 2), (3, 4), (4, 3)]));
        assert_eq!(edges_of(&added), edges(&[(0, 1), (3, 4)]));
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(2, 2));
        // Re-inserting present edges is a no-op.
        let added = g.insert_edges(&edges(&[(0, 1), (1, 2)]));
        assert_eq!(edges_of(&added), edges(&[(1, 2)]));
        assert_eq!(g.num_edges(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn delete_skips_absent_edges() {
        let mut g = DynGraph::new(4);
        g.insert_edges(&edges(&[(0, 1), (1, 2), (2, 3)]));
        let removed = g.delete_edges(&edges(&[(1, 2), (0, 3), (2, 1)]));
        assert_eq!(edges_of(&removed), edges(&[(1, 2)]));
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(1, 2));
        assert!(g.has_edge(0, 1) && g.has_edge(2, 3));
        g.validate().unwrap();
    }

    #[test]
    fn csr_roundtrip_after_updates() {
        let base = random_graph(200, 600, 7);
        let mut g = DynGraph::from_graph(&base);
        assert_eq!(g.to_graph(), base);
        g.insert_edges(&edges(&[(0, 199), (5, 17)]));
        g.delete_edges(&[base.to_edge_list().edges()[0]]);
        let snap = g.to_graph();
        assert!(snap.validate().is_ok());
        assert_eq!(snap.num_edges(), g.num_edges());
        assert_eq!(DynGraph::from_graph(&snap), g);
        g.validate().unwrap();
    }

    #[test]
    fn batched_updates_match_rebuilt_graph() {
        // Applying random insert/delete batches must leave exactly the edge
        // set a from-scratch build of the surviving edges produces.
        let n = 300;
        let mut g = DynGraph::new(n);
        let mut reference: std::collections::BTreeSet<(u32, u32)> = Default::default();
        for round in 0..10u64 {
            let ins = random_edge_list(n, 150, hash64(1, round)).into_parts().1;
            let del: Vec<Edge> = random_edge_list(n, 80, hash64(2, round)).into_parts().1;
            g.delete_edges(&del);
            for e in &del {
                let c = e.canonical();
                if !c.is_self_loop() {
                    reference.remove(&(c.u, c.v));
                }
            }
            g.insert_edges(&ins);
            for e in &ins {
                let c = e.canonical();
                if !c.is_self_loop() {
                    reference.insert((c.u, c.v));
                }
            }
            let expected: Vec<Edge> = reference.iter().map(|&(u, v)| Edge::new(u, v)).collect();
            assert_eq!(
                g.to_graph(),
                Graph::from_edges(n, &expected),
                "round {round}"
            );
            assert_eq!(g.num_edges(), reference.len());
            g.validate().unwrap();
        }
    }

    #[test]
    fn slots_are_stable_across_unrelated_batches() {
        let mut g = DynGraph::new(100);
        let first = g.insert_edges(&edges(&[(0, 1), (2, 3), (4, 5)]));
        let before: Vec<(Edge, u32)> = first.iter().map(|u| (u.edge, u.slot)).collect();
        // Unrelated inserts and deletes — including ones that force local
        // shuffles and relocations — must not move the original slots.
        g.insert_edges(&edges(&[(0, 7), (0, 9), (2, 9), (4, 80)]));
        g.delete_edges(&edges(&[(0, 7)]));
        g.insert_edges(&edges(&(10..60).map(|i| (i, i + 20)).collect::<Vec<_>>()));
        for (e, s) in before {
            assert_eq!(g.edge_slot(e.u, e.v), Some(s), "slot of {e:?} moved");
            assert_eq!(g.slot_edge(s), Some(e));
        }
        g.validate().unwrap();
    }

    #[test]
    fn freed_slots_are_recycled_deterministically() {
        let mut g = DynGraph::new(10);
        let a = g.insert_edges(&edges(&[(0, 1), (1, 2)]));
        g.delete_edges(&edges(&[(0, 1), (1, 2)]));
        // LIFO recycling: the most recently freed id goes out first.
        let b = g.insert_edges(&edges(&[(3, 4)]));
        assert_eq!(b[0].slot, a[1].slot);
        let c = g.insert_edges(&edges(&[(5, 6)]));
        assert_eq!(c[0].slot, a[0].slot);
        g.validate().unwrap();
    }

    #[test]
    fn heavy_single_vertex_growth_relocates_locally() {
        // A star grown one batch at a time overflows its hub segment
        // repeatedly; the overflow fix must be the O(degree) relocation, not
        // a full rebuild per batch, and the structure stays valid.
        let mut g = DynGraph::new(2_000);
        for b in 0..40u32 {
            let batch: Vec<Edge> = (0..40).map(|i| Edge::new(0, 1 + b * 40 + i)).collect();
            g.insert_edges(&batch);
        }
        assert_eq!(g.degree(0), 1_600);
        assert!(
            g.relocations() >= 5,
            "hub growth performed only {} relocations",
            g.relocations()
        );
        assert!(
            g.rebuilds() <= 5,
            "{} full rebuilds for 40 hub batches — overflow handling is not local",
            g.rebuilds()
        );
        g.validate().unwrap();
    }

    #[test]
    fn small_rebalance_still_fans_out_in_blocks() {
        // ROADMAP's shim-grain note: coarse fan-outs must ride
        // `par_map_blocks`, because the shim's `par_iter` runs short vectors
        // sequentially. A 64-vertex arena rebalance must therefore split
        // into multiple block tasks (the prims-level regression test proves
        // those tasks land on distinct threads).
        let mut g = DynGraph::new(64);
        // Dense enough that the first batch overflows every fresh segment
        // and takes the bulk-rebuild path.
        let batch: Vec<Edge> = (0u32..64)
            .flat_map(|u| {
                (u + 1..64)
                    .filter(move |v| (u + v) % 3 == 0)
                    .map(move |v| Edge::new(u, v))
            })
            .collect();
        g.insert_edges(&batch);
        assert!(g.rebuilds() >= 1, "the dense batch never rebuilt the arena");
        assert!(
            g.last_rebuild_tasks() >= 2,
            "a 64-vertex rebalance ran as {} block task(s) — the fan-out is not splitting",
            g.last_rebuild_tasks()
        );
        g.validate().unwrap();
    }

    #[test]
    fn mass_deletion_compacts_the_arena() {
        let base = random_graph(500, 5_000, 3);
        let mut g = DynGraph::from_graph(&base);
        let cap_before = g.arena_capacity();
        let all: Vec<Edge> = base.to_edge_list().into_parts().1;
        g.delete_edges(&all[..4_800]);
        assert!(
            g.arena_capacity() < cap_before / 2,
            "arena stayed at {} of {cap_before} after deleting 96% of edges",
            g.arena_capacity()
        );
        g.validate().unwrap();
    }

    #[test]
    fn relocation_garbage_is_eventually_collected() {
        // Streams of hub-heavy inserts keep relocating segments; the dead
        // space they orphan must be bounded by the rebuild trigger instead
        // of growing without limit.
        let mut g = DynGraph::new(50);
        for b in 0..200u64 {
            let v = 1 + (hash64(3, b) % 49) as u32;
            g.insert_edges(&[Edge::new(0, v)]);
            if b % 3 == 0 {
                g.delete_edges(&[Edge::new(0, v)]);
            }
        }
        assert!(
            g.arena_capacity() <= 6 * (2 * g.num_edges() + 2 * 50) + 64,
            "arena of {} entries for {} live edges — dead space is leaking",
            g.arena_capacity(),
            g.num_edges()
        );
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_rejects_out_of_range() {
        DynGraph::new(3).insert_edges(&edges(&[(0, 3)]));
    }

    #[test]
    fn rebuild_triggers_are_attributed_and_sum_to_total() {
        // Initial bulk build.
        let base = random_graph(200, 2_000, 9);
        let mut g = DynGraph::from_graph(&base);
        assert_eq!(g.rebuilds_for(RebuildTrigger::Initial), 1);
        // Mass deletion shrinks.
        let all: Vec<Edge> = base.to_edge_list().into_parts().1;
        g.delete_edges(&all[..1_900]);
        assert!(
            g.rebuilds_for(RebuildTrigger::Shrink) >= 1,
            "no shrink rebuild"
        );
        // A dense batch into a fresh graph overflows most touched segments.
        let mut h = DynGraph::new(64);
        let batch: Vec<Edge> = (0u32..64)
            .flat_map(|u| (u + 1..64).map(move |v| Edge::new(u, v)))
            .collect();
        h.insert_edges(&batch);
        assert!(
            h.rebuilds_for(RebuildTrigger::InsertOverflow) >= 1,
            "dense growth not attributed to insert_overflow"
        );
        for g in [&g, &h] {
            let by_reason: u64 = RebuildTrigger::ALL.iter().map(|&t| g.rebuilds_for(t)).sum();
            assert_eq!(
                by_reason,
                g.rebuilds(),
                "per-reason counts must tile the total"
            );
        }
    }

    #[test]
    fn attached_journal_sees_rebuilds_and_relocations() {
        let journal = Arc::new(EventJournal::default());
        let mut g = DynGraph::new(2_000);
        g.attach_journal(journal.clone());
        // Hub growth: repeated relocations, occasionally a dead-space rebuild.
        for b in 0..40u32 {
            let batch: Vec<Edge> = (0..40).map(|i| Edge::new(0, 1 + b * 40 + i)).collect();
            g.insert_edges(&batch);
        }
        if !greedy_obs::ENABLED {
            assert!(journal.is_empty());
            return;
        }
        let events = journal.recent();
        let relocations = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ArenaRelocation { vertex: 0, .. }))
            .count();
        assert!(
            relocations as u64 >= g.relocations().min(5),
            "hub relocations missing from the journal"
        );
        assert!(
            events
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::ArenaRebuild {
                        reason, capacity, ..
                    } => Some((reason, capacity)),
                    _ => None,
                })
                .all(|(reason, capacity)| !reason.is_empty() && capacity > 0),
            "rebuild events must carry their trigger label and capacity"
        );
    }
}
