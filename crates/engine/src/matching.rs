//! Incremental maintenance of the greedy maximal matching.
//!
//! The maintained invariant is greedy on the line graph: edge `e` is matched
//! iff no adjacent edge with earlier priority is. Unlike vertices, edges have
//! no stable dense ids under insertion/deletion, so instead of the
//! round-based [`greedy_core::dag::repair_fixed_point`] this maintainer runs
//! the same fixed-point computation as a priority-ordered worklist over
//! *edge keys*: a min-heap on [`edge_priority`] keys.
//!
//! Correctness rests on one invariant: **every push performed while
//! processing a popped edge has strictly later priority than that edge**
//! (pushes target the later-priority incident edges of a decision that
//! flipped). Pops are therefore globally nondecreasing in priority, so when
//! an edge pops, every earlier-priority decision that could still change has
//! already settled — its re-decision is final. An edge can be pushed (and
//! popped) more than once; redundant pops find a consistent decision and do
//! nothing. The repair is sequential and trivially deterministic; per batch
//! it touches only the affected edges, not the whole graph.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use greedy_graph::edge_list::Edge;

use crate::dyn_graph::DynGraph;
use crate::priority::{edge_key, edge_priority};

/// Unpacks a canonical packed edge key back into its endpoints.
#[inline]
fn unpack(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// The matched-edge state: each vertex's partner, or `u32::MAX` if unmatched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct MatchingState {
    partner: Vec<u32>,
    size: usize,
}

impl MatchingState {
    /// An empty matching over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            partner: vec![u32::MAX; n],
            size: 0,
        }
    }

    /// Number of matched edges.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The raw partner array (`u32::MAX` = unmatched) — the serving export
    /// copies this directly.
    pub(crate) fn partners(&self) -> &[u32] {
        &self.partner
    }

    /// True when edge `{u, v}` is currently matched.
    #[inline]
    pub fn is_matched(&self, u: u32, v: u32) -> bool {
        self.partner[u as usize] == v
    }

    /// The matching as canonical edges, sorted lexicographically.
    pub fn matched_edges(&self) -> Vec<Edge> {
        self.partner
            .iter()
            .enumerate()
            .filter(|&(v, &p)| p != u32::MAX && (v as u32) < p)
            .map(|(v, &p)| Edge::new(v as u32, p))
            .collect()
    }

    /// Repairs the matching after `deleted` edges left and `inserted` edges
    /// entered `graph` (both lists canonical, already applied to the graph).
    /// Returns the net-changed edges (membership flipped relative to entry),
    /// canonical and sorted, plus the number of re-decisions performed.
    pub fn repair_batch(
        &mut self,
        graph: &DynGraph,
        seed: u64,
        deleted: &[Edge],
        inserted: &[Edge],
    ) -> (Vec<Edge>, u64) {
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        // Decision of each touched edge at batch entry, keyed by packed edge
        // key; the net delta is computed against these at the end.
        let mut original: HashMap<u64, bool> = HashMap::new();

        // A deleted edge that was matched frees both endpoints; every
        // surviving incident edge with later priority may now flip in. A
        // deleted unmatched edge constrained nothing and needs no repair.
        for &e in deleted {
            if self.is_matched(e.u, e.v) {
                self.unmatch(e.u, e.v);
                original.insert(edge_key(e), true);
                let p = edge_priority(seed, e);
                for x in [e.u, e.v] {
                    push_later_incident(&mut heap, graph, seed, x, p);
                }
            }
        }
        // An inserted edge is a new item whose decision starts `false`
        // (unmatched); re-deciding it propagates onward if it flips in.
        for &e in inserted {
            heap.push(Reverse(edge_priority(seed, e)));
        }

        let mut redecisions = 0u64;
        while let Some(Reverse((h, key))) = heap.pop() {
            redecisions += 1;
            let (u, v) = unpack(key);
            let currently = self.is_matched(u, v);
            // Blocked iff some earlier-priority adjacent edge is matched; a
            // matched adjacent edge is unique per endpoint (the partner).
            let blocked = self.blocks(seed, u, v, (h, key)) || self.blocks(seed, v, u, (h, key));
            let decision = !blocked;
            if decision == currently {
                continue;
            }
            original.entry(key).or_insert(currently);
            if decision {
                // Accept {u, v}: any currently matched edge at u or v has
                // later priority (an earlier one would have blocked us) and
                // is knocked out; its freed far endpoint's later incident
                // edges must then be re-decided.
                for x in [u, v] {
                    let p = self.partner[x as usize];
                    if p != u32::MAX {
                        let out = Edge::new(x, p);
                        let out_prio = edge_priority(seed, out);
                        debug_assert!(out_prio > (h, key), "knocked-out edge must be later");
                        self.unmatch(x, p);
                        original.entry(edge_key(out)).or_insert(true);
                        push_later_incident(&mut heap, graph, seed, p, out_prio);
                    }
                }
                self.partner[u as usize] = v;
                self.partner[v as usize] = u;
                self.size += 1;
            } else {
                self.unmatch(u, v);
            }
            // Either way the decision of {u, v} flipped: later incident edges
            // of both endpoints see a changed earlier frontier.
            for x in [u, v] {
                push_later_incident(&mut heap, graph, seed, x, (h, key));
            }
        }

        let mut changed: Vec<(u64, Edge)> = original
            .into_iter()
            .filter_map(|(key, before)| {
                let (u, v) = unpack(key);
                let now = graph.has_edge(u, v) && self.is_matched(u, v);
                (now != before).then_some((key, Edge::new(u, v)))
            })
            .collect();
        changed.sort_unstable_by_key(|&(key, _)| key);
        (changed.into_iter().map(|(_, e)| e).collect(), redecisions)
    }

    /// True when endpoint `x` is matched by an edge earlier than `prio`
    /// (other than to `y` itself).
    #[inline]
    fn blocks(&self, seed: u64, x: u32, y: u32, prio: (u64, u64)) -> bool {
        let p = self.partner[x as usize];
        p != u32::MAX && p != y && edge_priority(seed, Edge::new(x, p)) < prio
    }

    /// Clears the matched pair `{u, v}`.
    #[inline]
    fn unmatch(&mut self, u: u32, v: u32) {
        debug_assert!(self.is_matched(u, v) && self.is_matched(v, u));
        self.partner[u as usize] = u32::MAX;
        self.partner[v as usize] = u32::MAX;
        self.size -= 1;
    }
}

/// Pushes every edge incident to `x` with priority strictly later than
/// `after` — the downstream frontier of a decision flip at an edge of `x`.
fn push_later_incident(
    heap: &mut BinaryHeap<Reverse<(u64, u64)>>,
    graph: &DynGraph,
    seed: u64,
    x: u32,
    after: (u64, u64),
) {
    for &w in graph.neighbors(x) {
        let p = edge_priority(seed, Edge::new(x, w));
        if p > after {
            heap.push(Reverse(p));
        }
    }
}

/// Builds the greedy matching from scratch: every current edge seeded as an
/// "insertion" over an empty matching. Used at engine construction.
pub(crate) fn matching_from_scratch(graph: &DynGraph, seed: u64) -> (MatchingState, u64) {
    let mut state = MatchingState::new(graph.num_vertices());
    let all: Vec<Edge> = graph.to_edge_list().into_parts().1;
    let (_, redecisions) = state.repair_batch(graph, seed, &[], &all);
    (state, redecisions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::edge_permutation;
    use greedy_core::matching::sequential::sequential_matching;
    use greedy_graph::gen::random::random_graph;

    /// From-scratch oracle: the static sequential greedy matching under the
    /// engine's hashed edge order.
    fn oracle(graph: &DynGraph, seed: u64) -> Vec<Edge> {
        let el = graph.to_edge_list();
        let pi = edge_permutation(seed, &el);
        let mut m: Vec<Edge> = sequential_matching(&el, &pi)
            .into_iter()
            .map(|id| el.edge(id as usize))
            .collect();
        m.sort_unstable_by_key(|e| e.sort_key());
        m
    }

    #[test]
    fn scratch_matching_equals_sequential_oracle() {
        for seed in 0..4 {
            let g = DynGraph::from_graph(&random_graph(300, 1_000, seed));
            let (state, _) = matching_from_scratch(&g, seed + 31);
            assert_eq!(state.matched_edges(), oracle(&g, seed + 31), "seed {seed}");
        }
    }

    #[test]
    fn insert_and_delete_repair_to_oracle() {
        let mut g = DynGraph::from_graph(&random_graph(150, 400, 2));
        let seed = 99;
        let (mut state, _) = matching_from_scratch(&g, seed);
        // A few single-edge updates, each checked against the oracle.
        for (ins, del) in [
            (vec![Edge::new(0, 149)], vec![]),
            (vec![], vec![Edge::new(0, 149)]),
            (vec![Edge::new(7, 90), Edge::new(7, 91)], vec![]),
            (vec![], vec![Edge::new(7, 90)]),
        ] {
            let deleted = g.delete_edges(&del);
            let inserted = g.insert_edges(&ins);
            let before = state.matched_edges();
            let (changed, _) = state.repair_batch(&g, seed, &deleted, &inserted);
            assert_eq!(state.matched_edges(), oracle(&g, seed));
            // The reported delta is exactly the symmetric difference.
            let after = state.matched_edges();
            let mut sym: Vec<Edge> = before
                .iter()
                .filter(|e| !after.contains(e))
                .chain(after.iter().filter(|e| !before.contains(e)))
                .copied()
                .collect();
            sym.sort_unstable_by_key(|e| e.sort_key());
            assert_eq!(changed, sym);
        }
    }

    #[test]
    fn deleting_matched_edge_lets_neighbors_in() {
        // Path 0-1-2-3; force a state, delete the matched middle edge.
        let mut g = DynGraph::new(4);
        g.insert_edges(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]);
        for seed in 0..20 {
            let (mut state, _) = matching_from_scratch(&g, seed);
            let m = state.matched_edges();
            let deleted = g.delete_edges(&[m[0]]);
            let (_, _) = state.repair_batch(&g, seed, &deleted, &[]);
            assert_eq!(state.matched_edges(), oracle(&g, seed), "seed {seed}");
            g.insert_edges(&deleted);
            let re_inserted = deleted;
            let (_, _) = state.repair_batch(&g, seed, &[], &re_inserted);
            assert_eq!(state.matched_edges(), oracle(&g, seed), "seed {seed} back");
        }
    }

    #[test]
    fn empty_batches_are_noops() {
        let g = DynGraph::from_graph(&random_graph(50, 120, 3));
        let (mut state, _) = matching_from_scratch(&g, 5);
        let before = state.clone();
        let (changed, redecisions) = state.repair_batch(&g, 5, &[], &[]);
        assert!(changed.is_empty());
        assert_eq!(redecisions, 0);
        assert_eq!(state, before);
    }
}
