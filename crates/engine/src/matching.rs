//! Incremental maintenance of the greedy maximal matching, on the shared
//! parallel round machinery.
//!
//! The maintained invariant is greedy on the line graph: edge `e` is matched
//! iff no adjacent edge with earlier priority is. Earlier revisions ran this
//! fixed point as a *sequential* priority heap because edges had no stable
//! dense ids; the slack-CSR [`DynGraph`] now assigns every live edge a stable
//! [`slot`](crate::dyn_graph::SlotUpdate) id, so the matching is simply a
//! [`ConflictDag`] over slots — items are slot ids, two slots conflict when
//! their edges share an endpoint — driven by the same
//! [`repair_fixed_point_with_scratch`] rounds that repair the MIS. MIS and
//! matching share one round engine and one [`RepairScratch`].
//!
//! Priorities are carried over unchanged from the heap implementation:
//! `(hash64(seed ⊕ SALT, key), key)` for the packed canonical endpoint key,
//! so the order is a property of the *edge* (stable under deletion and
//! re-insertion, independent of which slot the edge currently occupies) and
//! the maintained matching stays equal to the static greedy oracle. Free
//! slots are inert: they sit in no adjacency list, are never seeded, and thus
//! never enter a repair.
//!
//! Per batch, the dirty frontier is: every freshly inserted slot, plus —
//! for each deleted edge that was *matched* — every surviving slot incident
//! to its endpoints (a deleted unmatched edge constrained nothing and needs
//! no repair). The round driver propagates to later conflicting slots
//! whenever a decision flips, and every parallel step is order-preserving,
//! so the repaired matching is byte-identical across thread counts.

use greedy_core::dag::{repair_fixed_point_with_scratch, ConflictDag, RepairScratch, RepairStats};
use greedy_graph::edge_list::Edge;

use crate::dyn_graph::{DynGraph, SlotUpdate};
use crate::priority::edge_priority;
use crate::sharded::ShardScope;

/// One net matching change of a batch: the stable slot id, its edge, and the
/// membership *after* the batch. For an edge that was deleted while matched,
/// `slot` is the id it held (now freed) and `matched` is `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchDelta {
    /// Stable slot id of the edge (its freed id when the edge was deleted).
    pub slot: u32,
    /// The canonical edge.
    pub edge: Edge,
    /// Matching membership after the batch.
    pub matched: bool,
}

/// [`ConflictDag`] view of the current edge set: items are slot ids, two
/// slots conflict when their edges share an endpoint.
struct MatchingDag<'a> {
    graph: &'a DynGraph,
    seed: u64,
    /// Cached [`edge_priority`] per slot — priority queries are loads, not
    /// hashes. Stale at free slots (inert) and filled for every live slot.
    prio: &'a [(u64, u64)],
    /// Per-vertex far endpoint of the **earliest accepted incident edge**,
    /// `u32::MAX` when none — maintained through [`ConflictDag::on_flip`],
    /// which makes [`ConflictDag::decide`] two O(1) partner probes instead
    /// of two adjacency walks (the same trick the retired sequential heap
    /// used). At the fixed point each vertex has at most one accepted
    /// incident edge, so this is exactly the matching's partner array.
    partner: &'a mut [u32],
    /// Per-vertex list of **pending** incident slots — the pending-conflict
    /// index behind [`ConflictDag::for_each_pending_conflict`], maintained
    /// through the enter/retire hooks. Each pending slot appears in both
    /// endpoints' lists; the lists are empty between repairs (the pending
    /// set drains to nothing).
    pending_at: &'a mut [Vec<u32>],
    /// When set, conflicts (and therefore wake-ups) are confined to slots
    /// whose edge this shard *owns* (its min endpoint is in scope);
    /// propagation across the boundary rides the sharded engine's exchange
    /// rounds instead. The decision rule itself stays global — it probes
    /// partner entries, which the exchange keeps in sync.
    scope: Option<ShardScope>,
    /// Partner entries written during this repair (both endpoints of every
    /// flip), recorded so the sharded engine can broadcast them. `None`
    /// outside a sharded run.
    dirty: Option<&'a mut Vec<u32>>,
}

impl MatchingDag<'_> {
    /// True when this shard owns slot `s`'s edge (always true unscoped).
    #[inline]
    fn owns_slot(&self, s: u32) -> bool {
        match self.scope {
            None => true,
            Some(scope) => self.graph.slot_edge(s).is_some_and(|e| scope.owns(e.u)),
        }
    }

    #[inline]
    fn mark_dirty(&mut self, x: u32) {
        if let Some(d) = self.dirty.as_mut() {
            d.push(x);
        }
    }
}

impl ConflictDag for MatchingDag<'_> {
    /// `(hash, packed canonical key)` — the edge's own identity breaks ties,
    /// not its slot, so the order survives delete + re-insert cycles.
    type Priority = (u64, u64);

    fn len(&self) -> usize {
        self.graph.num_slots()
    }

    fn priority(&self, item: u32) -> (u64, u64) {
        self.prio[item as usize]
    }

    fn for_each_conflict(&self, item: u32, f: &mut dyn FnMut(u32)) {
        if let Some(e) = self.graph.slot_edge(item) {
            for x in [e.u, e.v] {
                for &s in self.graph.neighbor_slots(x) {
                    if s != item && self.owns_slot(s) {
                        f(s);
                    }
                }
            }
        }
    }

    /// Blocked iff either endpoint's earliest accepted incident edge is
    /// earlier than `item`. Equivalent to the default conflict scan: the
    /// earliest accepted incident edge is the only possible earlier blocker
    /// at that endpoint, and a strict comparison excludes `item` itself.
    fn decide(&self, item: u32, _accepted: &[bool]) -> bool {
        let e = self.graph.slot_edge(item).expect("decided slot is live");
        let p = self.prio[item as usize];
        ![e.u, e.v].into_iter().any(|x| {
            let m = self.partner[x as usize];
            m != u32::MAX && edge_priority(self.seed, Edge::new(x, m)) < p
        })
    }

    /// O(pending incident) pending-conflict walk over the per-vertex index
    /// instead of the default O(degree) adjacency filter.
    fn for_each_pending_conflict(&self, item: u32, _pending_flag: &[bool], f: &mut dyn FnMut(u32)) {
        let e = self.graph.slot_edge(item).expect("walked slot is live");
        for x in [e.u, e.v] {
            for &s in &self.pending_at[x as usize] {
                if s != item {
                    f(s);
                }
            }
        }
    }

    fn on_enter_pending(&mut self, item: u32) {
        let e = self.graph.slot_edge(item).expect("pending slot is live");
        self.pending_at[e.u as usize].push(item);
        self.pending_at[e.v as usize].push(item);
    }

    fn on_retire_pending(&mut self, item: u32) {
        let e = self.graph.slot_edge(item).expect("pending slot is live");
        for x in [e.u, e.v] {
            let list = &mut self.pending_at[x as usize];
            let i = list.iter().position(|&s| s == item).expect("indexed");
            list.swap_remove(i);
        }
    }

    /// Keeps the earliest-accepted invariant: a flip *in* is unblocked, so
    /// it is earlier than every accepted incident edge and becomes the new
    /// minimum at both endpoints outright; a flip *out* rescans an endpoint
    /// only when the flipped edge was that endpoint's recorded minimum.
    fn on_flip(&mut self, item: u32, accepted_now: bool, accepted: &[bool]) {
        let e = self.graph.slot_edge(item).expect("flipped slot is live");
        if accepted_now {
            // A flip *in* is unblocked per the local partner entries, so at
            // every *owned* endpoint (where those entries are authoritative)
            // it is the new minimum outright. A foreign endpoint's entry is
            // never written here — partner entries have a single writer, the
            // endpoint's owner, and every other shard's copy moves only via
            // that owner's broadcasts; a locally plausible write could
            // clobber a correct earlier-priority value the owner knows about
            // and oscillate against it forever.
            for (x, y) in [(e.u, e.v), (e.v, e.u)] {
                if self.scope.is_some_and(|sc| !sc.owns(x)) {
                    continue;
                }
                self.partner[x as usize] = y;
                self.mark_dirty(x);
            }
        } else {
            for (x, y) in [(e.u, e.v), (e.v, e.u)] {
                if self.partner[x as usize] == y {
                    // A flip-*out* rescan needs `x`'s full adjacency, which
                    // only `x`'s owner holds. Scoped runs leave a foreign
                    // endpoint's entry stale (conservatively still blocking)
                    // — the owner sees this flip through the exchange,
                    // recomputes, and broadcasts the true value.
                    if self.scope.is_some_and(|sc| !sc.owns(x)) {
                        continue;
                    }
                    let mut best: Option<((u64, u64), u32)> = None;
                    for (&w, &s) in self
                        .graph
                        .neighbors(x)
                        .iter()
                        .zip(self.graph.neighbor_slots(x))
                    {
                        if accepted[s as usize] {
                            let p = self.prio[s as usize];
                            if best.is_none_or(|(bp, _)| p < bp) {
                                best = Some((p, w));
                            }
                        }
                    }
                    self.partner[x as usize] = best.map_or(u32::MAX, |(_, w)| w);
                    self.mark_dirty(x);
                }
            }
        }
    }
}

/// The matched-edge state: per-slot membership flags (the fixed point the
/// round machinery maintains) plus the derived per-vertex partner array the
/// serving export copies out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct MatchingState {
    /// `matched[s]` — slot `s`'s edge is in the matching. Indexed by slot id;
    /// grows with the slot table, `false` at free slots.
    matched: Vec<bool>,
    /// Cached [`edge_priority`] per slot, refreshed when a slot is (re)used
    /// by an insertion. Values at free slots are stale and never read (free
    /// slots are inert in the DAG).
    prio: Vec<(u64, u64)>,
    /// Matched partner per vertex, `u32::MAX` when unmatched.
    partner: Vec<u32>,
    /// Per-vertex pending-slot lists for the repair's conflict index; all
    /// empty between repairs. Kept here so the allocation is reused.
    pending_at: Vec<Vec<u32>>,
    size: usize,
    /// Shard ownership range when this state is one shard of a
    /// [`crate::sharded::ShardedEngine`]; `None` for the single engine.
    scope: Option<ShardScope>,
    /// Vertices whose partner entry was written since the last
    /// [`MatchingState::drain_dirty_partners`] (tracked only when scoped).
    dirty_partner: Vec<u32>,
}

impl MatchingState {
    /// An empty matching over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            matched: Vec::new(),
            prio: Vec::new(),
            partner: vec![u32::MAX; n],
            pending_at: vec![Vec::new(); n],
            size: 0,
            scope: None,
            dirty_partner: Vec::new(),
        }
    }

    /// A shard's matching state bootstrapped from a known-good global fixed
    /// point: `graph` is the shard's arena (every edge incident to an owned
    /// vertex) and `partner` the full global partner array. Per-slot flags
    /// and priorities derive from them; subsequent repairs run scoped.
    pub(crate) fn bootstrap(
        graph: &DynGraph,
        seed: u64,
        partner: Vec<u32>,
        scope: ShardScope,
    ) -> Self {
        let n = graph.num_vertices();
        debug_assert_eq!(partner.len(), n);
        let mut matched = vec![false; graph.num_slots()];
        let mut prio = vec![(u64::MAX, u64::MAX); graph.num_slots()];
        let mut size = 0;
        for upd in graph.live_slot_updates() {
            prio[upd.slot as usize] = edge_priority(seed, upd.edge);
            if partner[upd.edge.u as usize] == upd.edge.v {
                matched[upd.slot as usize] = true;
                size += 1;
            }
        }
        Self {
            matched,
            prio,
            partner,
            pending_at: vec![Vec::new(); n],
            size,
            scope: Some(scope),
            dirty_partner: Vec::new(),
        }
    }

    /// True when this state owns edge `e` (always true unscoped).
    #[inline]
    fn owns_edge(&self, e: Edge) -> bool {
        self.scope.is_none_or(|sc| sc.owns(e.u))
    }

    /// Number of matched edges.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The raw partner array (`u32::MAX` = unmatched) — the serving export
    /// copies this directly.
    pub(crate) fn partners(&self) -> &[u32] {
        &self.partner
    }

    /// Total capacity retained across the per-vertex pending-slot lists —
    /// the repair working memory this state keeps allocated between batches
    /// (the lists drain to *empty* after every repair but keep their
    /// buffers). Exposed as an engine-internals gauge.
    pub(crate) fn pending_index_capacity(&self) -> usize {
        self.pending_at.iter().map(|l| l.capacity()).sum()
    }

    /// True when edge `{u, v}` is currently matched.
    #[inline]
    pub fn is_matched(&self, u: u32, v: u32) -> bool {
        self.partner[u as usize] == v
    }

    /// The matching as canonical edges, sorted lexicographically.
    pub fn matched_edges(&self) -> Vec<Edge> {
        self.partner
            .iter()
            .enumerate()
            .filter(|&(v, &p)| p != u32::MAX && (v as u32) < p)
            .map(|(v, &p)| Edge::new(v as u32, p))
            .collect()
    }

    /// Repairs the matching after `deleted` edges left and `inserted` edges
    /// entered `graph` (both lists effective, already applied to the graph).
    /// Runs the shared round machinery over the slot-indexed conflict DAG
    /// with the caller's scratch. Returns the net-changed edges (membership
    /// flipped relative to batch entry) sorted by slot id, plus the repair's
    /// work counters.
    pub fn repair_batch(
        &mut self,
        graph: &DynGraph,
        seed: u64,
        deleted: &[SlotUpdate],
        inserted: &[SlotUpdate],
        scratch: &mut RepairScratch,
    ) -> (Vec<MatchDelta>, RepairStats) {
        self.matched.resize(graph.num_slots(), false);
        self.prio.resize(graph.num_slots(), (u64::MAX, u64::MAX));
        for upd in inserted {
            self.prio[upd.slot as usize] = edge_priority(seed, upd.edge);
        }

        // (edge, slot at touch time, membership at batch entry) — first
        // occurrence per edge wins when computing the net delta.
        let mut touched: Vec<(Edge, u32, bool)> = Vec::new();
        let mut seeds: Vec<u32> = Vec::new();

        // Seed pre-filter: an edge that is *blocked at batch entry* — some
        // endpoint's currently matched edge has earlier priority — already
        // holds its fixed-point decision (`false`), so it needs no seeding:
        // if its blocker ever flips out during this repair, the flip
        // propagates to it through the round driver. The partner array is
        // exactly the entry state the repair starts from (deleted matched
        // edges are cleared out of it first), so this is an O(1) test that
        // keeps the pending set proportional to the edges that can actually
        // flip — the same trick that made the retired sequential heap's
        // blocked-test cheap, applied at seed time.
        let blocked_at_entry = |partner: &[u32], e: Edge, p: (u64, u64)| {
            [e.u, e.v].into_iter().any(|x| {
                let m = partner[x as usize];
                m != u32::MAX && edge_priority(seed, Edge::new(x, m)) < p
            })
        };

        // A deleted edge that was matched frees both endpoints; every
        // surviving incident slot with *later* priority that is not blocked
        // elsewhere may flip in, so those are seeded. (Earlier incident
        // slots were unmatched — the deleted edge would have been blocked
        // otherwise — and an unmatched item's removal changes no earlier
        // decision. A deleted unmatched edge blocked nothing and needs no
        // repair at all.) The deleted slot itself is already free — dead
        // slots never enter the repair — so its flip out of the matching is
        // applied right here. Note its priority is recomputed from the
        // edge, not read from the cache: a same-batch insertion may have
        // recycled the slot already.
        for upd in deleted {
            if self.matched[upd.slot as usize] {
                self.matched[upd.slot as usize] = false;
                self.size -= 1;
                self.clear_partner(upd.edge);
                if self.owns_edge(upd.edge) {
                    touched.push((upd.edge, upd.slot, true));
                }
                let gone = edge_priority(seed, upd.edge);
                for x in [upd.edge.u, upd.edge.v] {
                    for (&w, &s) in graph.neighbors(x).iter().zip(graph.neighbor_slots(x)) {
                        let p = self.prio[s as usize];
                        if p > gone
                            && self.owns_edge(Edge::new(x, w).canonical())
                            && !blocked_at_entry(&self.partner, Edge::new(x, w), p)
                        {
                            seeds.push(s);
                        }
                    }
                }
            }
        }
        // An inserted slot is a new item whose decision starts `false`; if
        // it is not blocked at entry the driver re-decides it and
        // propagates onward when it flips in. (On slot reuse within a batch
        // the deletion loop above already reset the recycled flag.) A scoped
        // run seeds only owned slots: a ghost insertion is decided by its
        // owner and arrives back as an exchange flip.
        for upd in inserted {
            debug_assert!(!self.matched[upd.slot as usize]);
            if self.owns_edge(upd.edge)
                && !blocked_at_entry(&self.partner, upd.edge, self.prio[upd.slot as usize])
            {
                seeds.push(upd.slot);
            }
        }

        self.run_and_report(graph, seed, &seeds, touched, scratch)
    }

    /// Runs the round driver over `seeds` (plus the pre-recorded `touched`
    /// first-occurrence bookkeeping) and reports the net delta versus entry.
    fn run_and_report(
        &mut self,
        graph: &DynGraph,
        seed: u64,
        seeds: &[u32],
        mut touched: Vec<(Edge, u32, bool)>,
        scratch: &mut RepairScratch,
    ) -> (Vec<MatchDelta>, RepairStats) {
        let mut dag = MatchingDag {
            graph,
            seed,
            prio: &self.prio,
            partner: &mut self.partner,
            pending_at: &mut self.pending_at,
            scope: self.scope,
            dirty: self.scope.is_some().then_some(&mut self.dirty_partner),
        };
        let (changed, stats) =
            repair_fixed_point_with_scratch(&mut dag, &mut self.matched, seeds, scratch);

        // The partner array was maintained in-flight by the DAG's flip hook;
        // only the size and the first-touch bookkeeping derive from the net
        // changed set.
        for &s in &changed {
            let e = graph.slot_edge(s).expect("changed slot is live");
            if self.matched[s as usize] {
                self.size += 1;
                touched.push((e, s, false));
            } else {
                self.size -= 1;
                touched.push((e, s, true));
            }
        }

        // Net delta versus batch entry. An edge can be touched twice only
        // via delete + re-insert in one batch; the deletion was pushed
        // first, so keeping the first occurrence keys the delta off the
        // true entry state.
        let mut seen = std::collections::HashSet::new();
        let mut deltas: Vec<MatchDelta> = Vec::new();
        for (edge, slot, before) in touched {
            if !seen.insert(edge.sort_key()) {
                continue;
            }
            let current = graph.edge_slot(edge.u, edge.v);
            let now = current.is_some_and(|s| self.matched[s as usize]);
            if now != before {
                deltas.push(MatchDelta {
                    slot: current.unwrap_or(slot),
                    edge,
                    matched: now,
                });
            }
        }
        // Keyed on `(slot, edge)` — a batch can free a matched edge's slot
        // and re-issue it to a different edge, putting the same slot id in
        // the delta twice; the edge key makes the order total (and thus
        // identical across shard counts).
        deltas.sort_unstable_by_key(|d| (d.slot, d.edge.sort_key()));
        (deltas, stats)
    }

    /// An exchange-round repair: re-decides `seeds` (owned slots woken by
    /// incoming boundary flips) and everything downstream, with no
    /// structural changes. Returns the net delta of *this pass*.
    pub(crate) fn repair_seeded(
        &mut self,
        graph: &DynGraph,
        seed: u64,
        seeds: &[u32],
        scratch: &mut RepairScratch,
    ) -> (Vec<MatchDelta>, RepairStats) {
        self.run_and_report(graph, seed, seeds, Vec::new(), scratch)
    }

    /// Clears the partner entries pointing across `e` after the matched edge
    /// was deleted. Scoped runs clear (and dirty) only the endpoints this
    /// shard owns — the single-writer rule; a foreign endpoint's entry stays
    /// stale (conservatively blocking) until its owner, which sees the same
    /// deletion, broadcasts the recomputed value.
    #[inline]
    fn clear_partner(&mut self, e: Edge) {
        debug_assert!(self.is_matched(e.u, e.v) && self.is_matched(e.v, e.u));
        for x in [e.u, e.v] {
            if self.scope.is_some_and(|sc| !sc.owns(x)) {
                continue;
            }
            self.partner[x as usize] = u32::MAX;
            if self.scope.is_some() {
                self.dirty_partner.push(x);
            }
        }
    }

    // ---- sharded-engine exchange hooks (all scoped-only call sites) ----

    /// Current matched flag of slot `s`.
    #[inline]
    pub(crate) fn matched_flag(&self, s: u32) -> bool {
        self.matched[s as usize]
    }

    /// Current partner of vertex `x` (`u32::MAX` = unmatched).
    #[inline]
    pub(crate) fn partner_of(&self, x: u32) -> u32 {
        self.partner[x as usize]
    }

    /// The greedy decision for live slot `s` on the current partner entries:
    /// matched iff no earlier-priority edge is matched at either endpoint.
    /// Used to gate wake-ups derived from incoming boundary flips.
    pub(crate) fn decide_slot(&self, graph: &DynGraph, seed: u64, s: u32) -> bool {
        let e = graph.slot_edge(s).expect("decided slot is live");
        let p = self.prio[s as usize];
        ![e.u, e.v].into_iter().any(|x| {
            let m = self.partner[x as usize];
            m != u32::MAX && edge_priority(seed, Edge::new(x, m)) < p
        })
    }

    /// Applies a matched-flip received from the owning shard for an edge
    /// this arena also holds. Sets the flag, adjusts the size, and
    /// *reconciles* the partner entry of every endpoint this shard owns
    /// against the local matched flags — the sender's flip was based on its
    /// own (possibly stale) view, so the incoming edge is not necessarily
    /// the endpoint's true minimum here; a blind write could clobber a
    /// correct earlier-priority entry and oscillate against the owner's
    /// corrections forever. Foreign endpoints are never written (the
    /// single-writer rule — their owners broadcast the truth). Returns
    /// `true` when the flag actually changed.
    pub(crate) fn apply_matched_flip(
        &mut self,
        graph: &DynGraph,
        s: u32,
        e: Edge,
        matched_now: bool,
    ) -> bool {
        if self.matched[s as usize] == matched_now {
            return false;
        }
        let scope = self.scope.expect("exchange hooks are scoped-only");
        self.matched[s as usize] = matched_now;
        if matched_now {
            self.size += 1;
        } else {
            self.size -= 1;
        }
        for x in [e.u, e.v] {
            if scope.owns(x) {
                self.reconcile_partner(graph, x);
            }
        }
        true
    }

    /// Applies a partner broadcast `(x, p)` from `x`'s owning shard.
    /// Change-gated; returns `true` when the entry moved.
    pub(crate) fn apply_partner_update(&mut self, x: u32, p: u32) -> bool {
        if self.partner[x as usize] == p {
            return false;
        }
        self.partner[x as usize] = p;
        true
    }

    /// Recomputes `partner[x]` as the far endpoint of `x`'s earliest matched
    /// incident slot and dirties the entry when it moved — valid only where
    /// the arena holds `x`'s full adjacency (i.e. this shard owns `x`).
    fn reconcile_partner(&mut self, graph: &DynGraph, x: u32) {
        let mut best: Option<((u64, u64), u32)> = None;
        for (&w, &s) in graph.neighbors(x).iter().zip(graph.neighbor_slots(x)) {
            if self.matched[s as usize] {
                let p = self.prio[s as usize];
                if best.is_none_or(|(bp, _)| p < bp) {
                    best = Some((p, w));
                }
            }
        }
        let new = best.map_or(u32::MAX, |(_, w)| w);
        if self.partner[x as usize] != new {
            self.partner[x as usize] = new;
            self.dirty_partner.push(x);
        }
    }

    /// Drains the vertices whose partner entries this shard wrote since the
    /// last drain, sorted and deduplicated (ownership filtering is the
    /// caller's job — foreign writes are tracked too but never broadcast).
    pub(crate) fn drain_dirty_partners(&mut self) -> Vec<u32> {
        let mut d = std::mem::take(&mut self.dirty_partner);
        d.sort_unstable();
        d.dedup();
        d
    }
}

/// Builds the greedy matching from scratch: every live slot seeded as an
/// "insertion" over an empty matching — exactly the rounds algorithm on the
/// line graph. Used at engine construction.
pub(crate) fn matching_from_scratch(
    graph: &DynGraph,
    seed: u64,
    scratch: &mut RepairScratch,
) -> (MatchingState, RepairStats) {
    let mut state = MatchingState::new(graph.num_vertices());
    let all = graph.live_slot_updates();
    let (_, stats) = state.repair_batch(graph, seed, &[], &all, scratch);
    (state, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::edge_permutation;
    use greedy_core::matching::sequential::sequential_matching;
    use greedy_graph::gen::random::random_graph;

    fn scratch() -> RepairScratch {
        RepairScratch::new()
    }

    /// From-scratch oracle: the static sequential greedy matching under the
    /// engine's hashed edge order.
    fn oracle(graph: &DynGraph, seed: u64) -> Vec<Edge> {
        let el = graph.to_edge_list();
        let pi = edge_permutation(seed, &el);
        let mut m: Vec<Edge> = sequential_matching(&el, &pi)
            .into_iter()
            .map(|id| el.edge(id as usize))
            .collect();
        m.sort_unstable_by_key(|e| e.sort_key());
        m
    }

    #[test]
    fn scratch_matching_equals_sequential_oracle() {
        for seed in 0..4 {
            let g = DynGraph::from_graph(&random_graph(300, 1_000, seed));
            let (state, stats) = matching_from_scratch(&g, seed + 31, &mut scratch());
            assert_eq!(state.matched_edges(), oracle(&g, seed + 31), "seed {seed}");
            assert!(stats.rounds >= 1, "from-scratch run must take rounds");
        }
    }

    #[test]
    fn insert_and_delete_repair_to_oracle() {
        let mut g = DynGraph::from_graph(&random_graph(150, 400, 2));
        let seed = 99;
        let mut sc = scratch();
        let (mut state, _) = matching_from_scratch(&g, seed, &mut sc);
        // A few single-edge updates, each checked against the oracle.
        for (ins, del) in [
            (vec![Edge::new(0, 149)], vec![]),
            (vec![], vec![Edge::new(0, 149)]),
            (vec![Edge::new(7, 90), Edge::new(7, 91)], vec![]),
            (vec![], vec![Edge::new(7, 90)]),
        ] {
            let deleted = g.delete_edges(&del);
            let inserted = g.insert_edges(&ins);
            let before = state.matched_edges();
            let (changed, _) = state.repair_batch(&g, seed, &deleted, &inserted, &mut sc);
            assert_eq!(state.matched_edges(), oracle(&g, seed));
            // The reported delta is exactly the symmetric difference, and
            // each entry's `matched` flag reflects the post-batch state.
            let after = state.matched_edges();
            let mut sym: Vec<Edge> = before
                .iter()
                .filter(|e| !after.contains(e))
                .chain(after.iter().filter(|e| !before.contains(e)))
                .copied()
                .collect();
            sym.sort_unstable_by_key(|e| e.sort_key());
            let mut reported: Vec<Edge> = changed.iter().map(|d| d.edge).collect();
            reported.sort_unstable_by_key(|e| e.sort_key());
            assert_eq!(reported, sym);
            for d in &changed {
                assert_eq!(d.matched, after.contains(&d.edge), "flag of {:?}", d.edge);
            }
        }
    }

    #[test]
    fn deleting_matched_edge_lets_neighbors_in() {
        // Path 0-1-2-3; force a state, delete the matched middle edge.
        let mut g = DynGraph::new(4);
        g.insert_edges(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]);
        for seed in 0..20 {
            let mut sc = scratch();
            let (mut state, _) = matching_from_scratch(&g, seed, &mut sc);
            let m = state.matched_edges();
            let deleted = g.delete_edges(&[m[0]]);
            let (_, _) = state.repair_batch(&g, seed, &deleted, &[], &mut sc);
            assert_eq!(state.matched_edges(), oracle(&g, seed), "seed {seed}");
            let re_inserted = g.insert_edges(&[m[0]]);
            let (_, _) = state.repair_batch(&g, seed, &[], &re_inserted, &mut sc);
            assert_eq!(state.matched_edges(), oracle(&g, seed), "seed {seed} back");
        }
    }

    #[test]
    fn delete_and_reinsert_in_one_batch_reports_net_delta() {
        // An edge deleted and re-inserted (reusing its slot) whose final
        // membership equals its entry membership must NOT appear in the
        // delta — the net report keys off batch entry, like the old
        // hashed-key report did.
        let mut g = DynGraph::new(4);
        g.insert_edges(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]);
        for seed in 0..10 {
            let mut sc = scratch();
            let (mut state, _) = matching_from_scratch(&g, seed, &mut sc);
            let before = state.matched_edges();
            let e = before[0];
            let deleted = g.delete_edges(&[e]);
            let inserted = g.insert_edges(&[e]);
            let (changed, _) = state.repair_batch(&g, seed, &deleted, &inserted, &mut sc);
            assert_eq!(state.matched_edges(), before, "state must return");
            assert!(
                changed.is_empty(),
                "seed {seed}: net delta must be empty, got {changed:?}"
            );
        }
    }

    #[test]
    fn empty_batches_are_noops() {
        let g = DynGraph::from_graph(&random_graph(50, 120, 3));
        let mut sc = scratch();
        let (mut state, _) = matching_from_scratch(&g, 5, &mut sc);
        let before = state.clone();
        let (changed, stats) = state.repair_batch(&g, 5, &[], &[], &mut sc);
        assert!(changed.is_empty());
        assert_eq!(stats.decided, 0);
        assert_eq!(state, before);
    }
}
