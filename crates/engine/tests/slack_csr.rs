//! Property tests of the slack-CSR arena and the edge-slot allocator —
//! the representation invariants the batch-dynamic engine's correctness
//! rests on, probed directly on [`DynGraph`] under random batch streams:
//!
//! * after every batch the arena is internally consistent
//!   ([`DynGraph::validate`]: segments cover the arena, live prefixes
//!   strictly sorted and front-packed, every arc's slot agrees with the slot
//!   table and has a symmetric twin, free list exact);
//! * the arena always compacts to exactly the sorted-adjacency form: the CSR
//!   snapshot equals a from-scratch build of the surviving edge set;
//! * **no live slot id is ever reused or moved**: while an edge is present
//!   its slot keeps resolving to it, and a slot handed to a new edge was
//!   freed by a deletion first.

use std::collections::BTreeMap;

use greedy_engine::prelude::*;
use greedy_graph::csr::Graph;
use greedy_graph::edge_list::Edge;
use greedy_prims::random::hash64;
use proptest::prelude::*;

/// Tracks the ground truth the arena must agree with: the surviving edge set
/// and the slot each live edge was assigned.
#[derive(Default)]
struct Reference {
    /// Canonical packed edge key -> slot id, for live edges.
    live: BTreeMap<u64, u32>,
    /// Slots seen freed since their last allocation.
    freed: Vec<bool>,
}

impl Reference {
    fn check_batch(&mut self, inserted: &[SlotUpdate], deleted: &[SlotUpdate]) {
        for upd in deleted {
            let slot = self
                .live
                .remove(&upd.edge.sort_key())
                .expect("deleted edge was live");
            assert_eq!(slot, upd.slot, "deletion reported a moved slot");
            if self.freed.len() <= slot as usize {
                self.freed.resize(slot as usize + 1, false);
            }
            self.freed[slot as usize] = true;
        }
        for upd in inserted {
            // A recycled id must have gone through the free list; a fresh id
            // extends the table.
            if (upd.slot as usize) < self.freed.len() && !self.freed[upd.slot as usize] {
                assert!(
                    !self.live.values().any(|&s| s == upd.slot),
                    "slot {} handed out while still live",
                    upd.slot
                );
            }
            if self.freed.len() <= upd.slot as usize {
                self.freed.resize(upd.slot as usize + 1, false);
            }
            self.freed[upd.slot as usize] = false;
            let prev = self.live.insert(upd.edge.sort_key(), upd.slot);
            assert!(prev.is_none(), "insertion of an already-live edge");
        }
    }

    fn check_graph(&self, g: &DynGraph) {
        // Every live edge still resolves through its original slot, in both
        // directions — ids never move while the edge lives.
        for (&key, &slot) in &self.live {
            let e = Edge::new((key >> 32) as u32, key as u32);
            assert_eq!(g.edge_slot(e.u, e.v), Some(slot), "slot of {e:?} moved");
            assert_eq!(g.slot_edge(slot), Some(e));
        }
        // The arena compacts to exactly the sorted-adjacency form of the
        // surviving edge set.
        let expected: Vec<Edge> = self
            .live
            .keys()
            .map(|&key| Edge::new((key >> 32) as u32, key as u32))
            .collect();
        assert_eq!(
            g.to_graph(),
            Graph::from_edges(g.num_vertices(), &expected),
            "compacted arena diverges from the sorted adjacency"
        );
        assert_eq!(g.num_edges(), self.live.len());
    }
}

/// One deterministic raw batch: hashed endpoint pairs (insertions) and a
/// sample of currently-present edges (deletions).
fn raw_batch(
    g: &DynGraph,
    seed: u64,
    round: u64,
    n_ins: u64,
    n_del: u64,
) -> (Vec<Edge>, Vec<Edge>) {
    let n = g.num_vertices() as u64;
    let ins: Vec<Edge> = (0..n_ins)
        .map(|i| {
            Edge::new(
                (hash64(seed, round * 1_000 + 2 * i) % n) as u32,
                (hash64(seed, round * 1_000 + 2 * i + 1) % n) as u32,
            )
        })
        .collect();
    let present = g.to_edge_list().into_parts().1;
    let del: Vec<Edge> = if present.is_empty() {
        Vec::new()
    } else {
        (0..n_del)
            .map(|i| {
                present
                    [(hash64(seed ^ 0xDE1E7E, round * 1_000 + i) % present.len() as u64) as usize]
            })
            .collect()
    };
    (ins, del)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]
    #[test]
    fn prop_arena_and_slot_invariants_under_batch_streams(
        n in 4usize..60,
        seed in any::<u64>(),
        ins_per_round in 1u64..25,
        del_per_round in 0u64..15,
    ) {
        let mut g = DynGraph::new(n);
        let mut reference = Reference::default();
        for round in 0..12u64 {
            let (ins, del) = raw_batch(&g, seed, round, ins_per_round, del_per_round);
            let deleted = g.delete_edges(&del);
            let inserted = g.insert_edges(&ins);
            reference.check_batch(&inserted, &deleted);
            g.validate().unwrap_or_else(|e| panic!("round {round}: {e}"));
            reference.check_graph(&g);
        }
    }
}

#[test]
fn rebuilds_preserve_slots_and_adjacency() {
    // Force repeated arena rebuilds (hub overflow + mass deletion shrink)
    // and check the stable-slot contract survives each one.
    let mut g = DynGraph::new(400);
    let mut reference = Reference::default();
    for round in 0..30u64 {
        // Hub-heavy insertions overflow vertex 0's segment often.
        let ins: Vec<Edge> = (0..20)
            .map(|i| Edge::new(0, 1 + ((hash64(9, round * 100 + i) % 399) as u32)))
            .chain((0..10).map(|i| {
                Edge::new(
                    (hash64(10, round * 100 + 2 * i) % 400) as u32,
                    (hash64(10, round * 100 + 2 * i + 1) % 400) as u32,
                )
            }))
            .collect();
        let present = g.to_edge_list().into_parts().1;
        let del: Vec<Edge> = present
            .iter()
            .enumerate()
            .filter(|(i, _)| hash64(11, round * 1_000 + *i as u64).is_multiple_of(3))
            .map(|(_, &e)| e)
            .collect();
        let deleted = g.delete_edges(&del);
        let inserted = g.insert_edges(&ins);
        reference.check_batch(&inserted, &deleted);
        g.validate()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        reference.check_graph(&g);
    }
    assert!(g.rebuilds() >= 1, "the stream never exercised a rebuild");
}
