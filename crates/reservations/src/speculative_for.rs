//! The `speculative_for` deterministic-reservations loop.
//!
//! A greedy sequential loop `for i in 0..n { body(i) }` whose iterations may
//! conflict is parallelized by processing prefixes of the *remaining*
//! iterates: each round, every pending iterate in the prefix runs a
//! [`ReservationStep::reserve`] phase (claiming the shared state it needs via
//! priority writes), a barrier, then a [`ReservationStep::commit`] phase
//! (checking it still holds its claims and applying its update). Iterates
//! whose commit fails are carried into the next round, *ahead of* fresh
//! iterates, so the effective processing order is always the original one —
//! which is what makes the result identical to the sequential loop.
//!
//! The prefix size is the same work/parallelism dial as in the paper's
//! Algorithm 3: size 1 is the sequential loop; the full range is the maximally
//! speculative loop.

use rayon::prelude::*;

use greedy_core::stats::WorkStats;

/// One speculative loop body. `i` is the iterate index in the *sequential*
/// order (0 = highest priority). Implementations use interior mutability
/// (atomics / [`crate::reserve_cell::ReserveCell`]) for shared state.
pub trait ReservationStep: Sync {
    /// Phase 1 of a round: attempt to reserve whatever iterate `i` needs.
    /// Returning `false` means the iterate already knows it cannot commit
    /// this round (it will be retried next round without committing).
    fn reserve(&self, i: usize) -> bool;

    /// Phase 2 of a round: check the reservations and apply the update.
    /// Returning `true` means iterate `i` is finished (successfully or
    /// because it discovered it has nothing to do); `false` means retry in
    /// the next round.
    fn commit(&self, i: usize) -> bool;
}

/// Runs iterates `0..num_iterates` of `step` with deterministic reservations,
/// processing `granularity` pending iterates per round. Returns round/work
/// counters (`rounds` = rounds executed, `vertex_work` = iterate executions,
/// i.e. reserve+commit attempts).
///
/// # Panics
/// Panics if `granularity == 0`, or if a round makes no progress (which would
/// mean the `ReservationStep` implementation can livelock).
pub fn speculative_for<S: ReservationStep>(
    step: &S,
    num_iterates: usize,
    granularity: usize,
) -> WorkStats {
    assert!(
        granularity > 0,
        "speculative_for: granularity must be positive"
    );
    let mut stats = WorkStats::new();
    // Pending iterates carried over from the previous round, in priority order.
    let mut pending: Vec<usize> = Vec::new();
    // Next fresh iterate not yet issued.
    let mut next = 0usize;

    while !pending.is_empty() || next < num_iterates {
        stats.rounds += 1;
        stats.steps += 1;

        // This round's prefix: carried-over iterates first (they are the
        // earliest), topped up with fresh ones to `granularity`.
        let fresh = granularity
            .saturating_sub(pending.len())
            .min(num_iterates - next);
        let mut round: Vec<usize> = Vec::with_capacity(pending.len() + fresh);
        round.append(&mut pending);
        round.extend(next..next + fresh);
        next += fresh;
        stats.vertex_work += round.len() as u64;

        // Phase 1: reserve.
        let reserved: Vec<bool> = round.par_iter().map(|&i| step.reserve(i)).collect();
        // Phase 2: commit (only iterates whose reserve succeeded commit this
        // round; the rest are retried).
        let done: Vec<bool> = round
            .par_iter()
            .zip(reserved.par_iter())
            .map(|(&i, &r)| if r { step.commit(i) } else { false })
            .collect();

        let before = round.len();
        pending = round
            .into_iter()
            .zip(done)
            .filter_map(|(i, d)| (!d).then_some(i))
            .collect();
        assert!(
            pending.len() < before || before == 0,
            "speculative_for: no progress in a round — the step implementation livelocks"
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    /// A trivially conflict-free step: every iterate adds its index to a sum.
    struct SumStep {
        total: AtomicU64,
    }

    impl ReservationStep for SumStep {
        fn reserve(&self, _i: usize) -> bool {
            true
        }
        fn commit(&self, i: usize) -> bool {
            self.total.fetch_add(i as u64, Ordering::Relaxed);
            true
        }
    }

    #[test]
    fn conflict_free_loop_runs_every_iterate_once() {
        for granularity in [1usize, 7, 100, 10_000] {
            let step = SumStep {
                total: AtomicU64::new(0),
            };
            let stats = speculative_for(&step, 1_000, granularity);
            assert_eq!(step.total.load(Ordering::Relaxed), 1_000 * 999 / 2);
            assert_eq!(stats.vertex_work, 1_000);
            assert_eq!(stats.rounds as usize, 1_000usize.div_ceil(granularity));
        }
    }

    #[test]
    fn empty_loop() {
        let step = SumStep {
            total: AtomicU64::new(0),
        };
        let stats = speculative_for(&step, 0, 16);
        assert_eq!(stats.rounds, 0);
        assert_eq!(step.total.load(Ordering::Relaxed), 0);
    }

    /// A step where iterate i must observe that all iterates j < i in the
    /// same "group" have committed before it can commit — exercising retries.
    struct ChainStep {
        committed: Vec<AtomicUsize>, // 0 = pending, 1 = done
    }

    impl ReservationStep for ChainStep {
        fn reserve(&self, _i: usize) -> bool {
            true
        }
        fn commit(&self, i: usize) -> bool {
            if i == 0 || self.committed[i - 1].load(Ordering::SeqCst) == 1 {
                self.committed[i].store(1, Ordering::SeqCst);
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn chained_dependences_retry_until_resolved() {
        let n = 200;
        let step = ChainStep {
            committed: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        };
        let stats = speculative_for(&step, n, 50);
        assert!(step.committed.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        // Every iterate runs at least once; how many retries occur depends on
        // the schedule (none when commits happen to execute in index order),
        // but the loop must always terminate with all iterates done.
        assert!(stats.vertex_work >= n as u64);
        assert!(stats.rounds >= (n as u64).div_ceil(50));
    }

    #[test]
    #[should_panic(expected = "granularity must be positive")]
    fn zero_granularity_panics() {
        let step = SumStep {
            total: AtomicU64::new(0),
        };
        speculative_for(&step, 10, 0);
    }

    /// A step that never commits: must be detected as a livelock rather than
    /// spinning forever.
    struct StuckStep;
    impl ReservationStep for StuckStep {
        fn reserve(&self, _i: usize) -> bool {
            true
        }
        fn commit(&self, _i: usize) -> bool {
            false
        }
    }

    #[test]
    #[should_panic(expected = "no progress")]
    fn livelock_is_detected() {
        speculative_for(&StuckStep, 5, 5);
    }
}
