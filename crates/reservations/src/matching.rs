//! Maximal matching as a deterministic-reservations loop.
//!
//! The loop body for iterate `i` (the edge with priority rank `i`): if either
//! endpoint is already matched, the edge is out. Otherwise it *reserves* both
//! endpoints with its rank (a write-with-min), and at commit time it wins iff
//! it still holds both reservations — i.e. it is the earliest live edge at
//! both endpoints, exactly the condition under which the sequential greedy
//! algorithm accepts it. Losers release nothing (cells are reset lazily per
//! round by re-reservation) and retry. This is the `maximalMatching` plug-in
//! of the PBBS deterministic-reservations benchmark.

use std::sync::atomic::{AtomicBool, Ordering};

use greedy_core::stats::WorkStats;
use greedy_graph::edge_list::EdgeList;
use greedy_prims::permutation::Permutation;

use crate::reserve_cell::ReserveTable;
use crate::speculative_for::{speculative_for, ReservationStep};

struct MatchingStep<'a> {
    edges: &'a EdgeList,
    /// rank → edge id.
    order: &'a [u32],
    /// Per-vertex reservation cells holding the smallest competing edge rank.
    reservations: ReserveTable,
    vertex_matched: Vec<AtomicBool>,
    in_matching: Vec<AtomicBool>,
}

impl MatchingStep<'_> {
    fn endpoints(&self, i: usize) -> (usize, usize) {
        let e = self.edges.edge(self.order[i] as usize);
        (e.u as usize, e.v as usize)
    }

    fn dead(&self, i: usize) -> bool {
        let (u, v) = self.endpoints(i);
        self.vertex_matched[u].load(Ordering::SeqCst)
            || self.vertex_matched[v].load(Ordering::SeqCst)
    }
}

impl ReservationStep for MatchingStep<'_> {
    fn reserve(&self, i: usize) -> bool {
        if self.dead(i) {
            // Nothing to reserve; commit will record the edge as out.
            return true;
        }
        let (u, v) = self.endpoints(i);
        self.reservations.reserve(u, i as u64);
        self.reservations.reserve(v, i as u64);
        true
    }

    fn commit(&self, i: usize) -> bool {
        let (u, v) = self.endpoints(i);
        if self.dead(i) {
            // Knocked out by an adjacent matched edge. Release any cell this
            // edge still holds from its reserve phase, otherwise its (now
            // irrelevant) rank would block later edges forever.
            if self.reservations.holds(u, i as u64) {
                self.reservations.reset(u);
            }
            if self.reservations.holds(v, i as u64) {
                self.reservations.reset(v);
            }
            return true;
        }
        if self.reservations.holds(u, i as u64) && self.reservations.holds(v, i as u64) {
            // Earliest live edge at both endpoints: matched, exactly as the
            // sequential greedy algorithm would decide.
            self.in_matching[self.order[i] as usize].store(true, Ordering::SeqCst);
            self.vertex_matched[u].store(true, Ordering::SeqCst);
            self.vertex_matched[v].store(true, Ordering::SeqCst);
            // Release the cells so later rounds start clean.
            self.reservations.reset(u);
            self.reservations.reset(v);
            true
        } else {
            // Lost at least one endpoint to an earlier edge; if that edge
            // commits, `dead` will be true next round, otherwise we compete
            // again. Reset our own claim where we still hold it so stale
            // ranks do not linger.
            if self.reservations.holds(u, i as u64) {
                self.reservations.reset(u);
            }
            if self.reservations.holds(v, i as u64) {
                self.reservations.reset(v);
            }
            false
        }
    }
}

/// Computes the greedy maximal matching with the deterministic reservations
/// framework, processing `granularity` pending edges per round. Identical
/// output to [`greedy_core::matching::sequential::sequential_matching`].
pub fn reservation_matching_with_granularity(
    edges: &EdgeList,
    pi: &Permutation,
    granularity: usize,
) -> (Vec<u32>, WorkStats) {
    let m = edges.num_edges();
    assert_eq!(
        pi.len(),
        m,
        "reservation_matching: permutation covers {} elements but there are {} edges",
        pi.len(),
        m
    );
    let step = MatchingStep {
        edges,
        order: pi.order(),
        reservations: ReserveTable::new(edges.num_vertices()),
        vertex_matched: (0..edges.num_vertices())
            .map(|_| AtomicBool::new(false))
            .collect(),
        in_matching: (0..m).map(|_| AtomicBool::new(false)).collect(),
    };
    let stats = speculative_for(&step, m, granularity.max(1));
    let matching = step
        .in_matching
        .iter()
        .enumerate()
        .filter_map(|(e, b)| b.load(Ordering::SeqCst).then_some(e as u32))
        .collect();
    (matching, stats)
}

/// [`reservation_matching_with_granularity`] with a default granularity of
/// max(1024, m/50).
pub fn reservation_matching(edges: &EdgeList, pi: &Permutation) -> Vec<u32> {
    let m = edges.num_edges();
    reservation_matching_with_granularity(edges, pi, (m / 50).max(1024)).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use greedy_core::matching::sequential::sequential_matching;
    use greedy_core::matching::verify::verify_maximal_matching;
    use greedy_core::ordering::{identity_permutation, random_edge_permutation};
    use greedy_graph::gen::random::random_edge_list;
    use greedy_graph::gen::rmat::{rmat_edge_list, RmatParams};
    use greedy_graph::gen::structured::{
        complete_edge_list, cycle_edge_list, path_edge_list, star_edge_list,
    };
    use greedy_graph::EdgeList;

    #[test]
    fn empty_and_single_edge() {
        let el = EdgeList::empty(3);
        assert!(reservation_matching(&el, &identity_permutation(0)).is_empty());
        let el = EdgeList::from_pairs(2, vec![(0, 1)]);
        assert_eq!(reservation_matching(&el, &identity_permutation(1)), vec![0]);
    }

    #[test]
    fn matches_sequential_on_random_graphs_across_granularities() {
        for seed in 0..4 {
            let el = random_edge_list(300, 1_200, seed);
            let pi = random_edge_permutation(el.num_edges(), seed + 23);
            let expected = sequential_matching(&el, &pi);
            for granularity in [1usize, 29, 200, 2_000] {
                let (mm, _) = reservation_matching_with_granularity(&el, &pi, granularity);
                assert_eq!(mm, expected, "seed {seed} granularity {granularity}");
                assert!(verify_maximal_matching(&el, &mm));
            }
        }
    }

    #[test]
    fn matches_sequential_on_structured_graphs() {
        for el in [
            path_edge_list(60),
            cycle_edge_list(57),
            star_edge_list(45),
            complete_edge_list(18),
            rmat_edge_list(9, 3_000, RmatParams::default(), 2),
        ] {
            let pi = random_edge_permutation(el.num_edges(), 5);
            assert_eq!(
                reservation_matching(&el, &pi),
                sequential_matching(&el, &pi)
            );
        }
    }

    #[test]
    fn identity_order_also_matches() {
        let el = random_edge_list(200, 800, 9);
        let pi = identity_permutation(el.num_edges());
        assert_eq!(
            reservation_matching(&el, &pi),
            sequential_matching(&el, &pi)
        );
    }

    #[test]
    fn granularity_one_behaves_sequentially() {
        let el = random_edge_list(100, 400, 3);
        let pi = random_edge_permutation(el.num_edges(), 4);
        let (_, stats) = reservation_matching_with_granularity(&el, &pi, 1);
        assert_eq!(stats.rounds, 400);
        assert_eq!(stats.vertex_work, 400);
    }
}
