//! # greedy-reservations
//!
//! The **deterministic reservations** framework — the generic programming
//! abstraction behind the paper's prefix-based algorithms — plus MIS and
//! maximal-matching backends built on it.
//!
//! The paper's companion work ("Internally deterministic parallel algorithms
//! can be fast", reference [2] of the SPAA paper) packages the prefix
//! technique as a reusable primitive called `speculative_for`: a loop whose
//! iterates may conflict, executed greedily over prefixes of the remaining
//! iterates. Each round, every pending iterate in the prefix *reserves* the
//! shared state it needs (a priority write that the lowest-numbered iterate
//! wins) and then *commits* if it still holds its reservations; losers retry
//! in the next round. Because reservations always resolve in iterate order,
//! the final state is identical to running the loop sequentially — which is
//! exactly the determinism property the SPAA paper proves cheap for MIS and
//! MM under random orders.
//!
//! This crate provides:
//!
//! * [`speculative_for::speculative_for`] — the generic framework, usable for
//!   other greedy loops (the paper suggests spanning forest as future work);
//! * [`reserve_cell::ReserveCell`] — the write-with-min priority reservation
//!   cell;
//! * [`mis::reservation_mis`] and [`matching::reservation_matching`] —
//!   alternative backends for the paper's two problems, returning bit-identical
//!   results to `greedy_core`'s sequential implementations (the integration
//!   tests verify this).
//!
//! ```
//! use greedy_core::ordering::random_permutation;
//! use greedy_core::mis::sequential::sequential_mis;
//! use greedy_graph::gen::random::random_graph;
//! use greedy_reservations::mis::reservation_mis;
//!
//! let g = random_graph(300, 1_200, 1);
//! let pi = random_permutation(g.num_vertices(), 2);
//! assert_eq!(reservation_mis(&g, &pi), sequential_mis(&g, &pi));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod matching;
pub mod mis;
pub mod reserve_cell;
pub mod speculative_for;
