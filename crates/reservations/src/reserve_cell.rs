//! Priority reservation cells.
//!
//! A [`ReserveCell`] holds the smallest priority written to it since the last
//! reset — the shared-memory realization of the CRCW PRAM "priority write"
//! the paper assumes. Iterates reserve a resource by writing their own
//! priority; after all reservations of a round are in, the iterate whose
//! priority the cell still holds owns the resource for that round.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel meaning "no reservation".
pub const EMPTY: u64 = u64::MAX;

/// A write-with-min cell.
#[derive(Debug)]
pub struct ReserveCell {
    value: AtomicU64,
}

impl Default for ReserveCell {
    fn default() -> Self {
        Self::new()
    }
}

impl ReserveCell {
    /// A cell holding no reservation.
    pub fn new() -> Self {
        Self {
            value: AtomicU64::new(EMPTY),
        }
    }

    /// Attempts to reserve with `priority` (smaller wins). Returns `true` if
    /// this call lowered the cell's value.
    pub fn reserve(&self, priority: u64) -> bool {
        let mut current = self.value.load(Ordering::SeqCst);
        while priority < current {
            match self.value.compare_exchange_weak(
                current,
                priority,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
        false
    }

    /// The currently held (smallest) priority, or [`EMPTY`].
    pub fn current(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }

    /// True if `priority` holds the reservation.
    pub fn holds(&self, priority: u64) -> bool {
        self.current() == priority
    }

    /// Clears the reservation (used between rounds).
    pub fn reset(&self) {
        self.value.store(EMPTY, Ordering::SeqCst);
    }
}

/// A fixed-size array of reservation cells.
#[derive(Debug, Default)]
pub struct ReserveTable {
    cells: Vec<ReserveCell>,
}

impl ReserveTable {
    /// Creates `len` empty cells.
    pub fn new(len: usize) -> Self {
        Self {
            cells: (0..len).map(|_| ReserveCell::new()).collect(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the table has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell at `index`.
    pub fn cell(&self, index: usize) -> &ReserveCell {
        &self.cells[index]
    }

    /// Reserves cell `index` with `priority` (smaller wins).
    pub fn reserve(&self, index: usize, priority: u64) -> bool {
        self.cells[index].reserve(priority)
    }

    /// True if `priority` holds cell `index`.
    pub fn holds(&self, index: usize, priority: u64) -> bool {
        self.cells[index].holds(priority)
    }

    /// Clears the given cells.
    pub fn reset(&self, index: usize) {
        self.cells[index].reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn lowest_priority_wins() {
        let cell = ReserveCell::new();
        assert!(cell.reserve(10));
        assert!(
            !cell.reserve(20),
            "larger priority must not displace a smaller one"
        );
        assert!(cell.reserve(5));
        assert_eq!(cell.current(), 5);
        assert!(cell.holds(5));
        assert!(!cell.holds(10));
    }

    #[test]
    fn reset_clears() {
        let cell = ReserveCell::new();
        cell.reserve(3);
        cell.reset();
        assert_eq!(cell.current(), EMPTY);
        assert!(cell.reserve(100));
    }

    #[test]
    fn concurrent_reservations_resolve_to_minimum() {
        let cell = ReserveCell::new();
        (0..10_000u64).into_par_iter().for_each(|p| {
            cell.reserve(p);
        });
        assert_eq!(cell.current(), 0);
    }

    #[test]
    fn table_indexes_cells_independently() {
        let table = ReserveTable::new(4);
        assert_eq!(table.len(), 4);
        assert!(!table.is_empty());
        table.reserve(0, 7);
        table.reserve(1, 3);
        assert!(table.holds(0, 7));
        assert!(table.holds(1, 3));
        assert_eq!(table.cell(2).current(), EMPTY);
        table.reset(0);
        assert_eq!(table.cell(0).current(), EMPTY);
    }

    #[test]
    fn empty_table() {
        let table = ReserveTable::new(0);
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
    }
}
