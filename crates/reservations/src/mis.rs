//! MIS as a deterministic-reservations loop.
//!
//! The loop body for iterate `i` (the vertex with priority rank `i`): look at
//! the earlier neighbors; if any is in the MIS the vertex is out, if any is
//! still undecided the iterate retries next round, otherwise the vertex joins
//! the MIS. No reservation cell is needed — the decision is owner-written —
//! so `reserve` is a no-op and all the logic sits in `commit`. This is the
//! MIS plug-in of the PBBS deterministic-reservations benchmark, and it
//! returns exactly the lexicographically-first MIS.

use std::sync::atomic::{AtomicU8, Ordering};

use greedy_core::stats::WorkStats;
use greedy_graph::csr::Graph;
use greedy_prims::permutation::Permutation;

use crate::speculative_for::{speculative_for, ReservationStep};

const UNDECIDED: u8 = 0;
const IN_MIS: u8 = 1;
const OUT: u8 = 2;

struct MisStep<'a> {
    graph: &'a Graph,
    /// rank → vertex id (the iterate order).
    order: &'a [u32],
    /// vertex id → rank.
    rank: &'a [u32],
    state: Vec<AtomicU8>,
}

impl ReservationStep for MisStep<'_> {
    fn reserve(&self, _i: usize) -> bool {
        true
    }

    fn commit(&self, i: usize) -> bool {
        let v = self.order[i];
        let my_rank = self.rank[v as usize];
        let mut blocked = false;
        for &w in self.graph.neighbors(v) {
            if self.rank[w as usize] < my_rank {
                match self.state[w as usize].load(Ordering::SeqCst) {
                    IN_MIS => {
                        self.state[v as usize].store(OUT, Ordering::SeqCst);
                        return true;
                    }
                    UNDECIDED => blocked = true,
                    _ => {}
                }
            }
        }
        if blocked {
            false
        } else {
            self.state[v as usize].store(IN_MIS, Ordering::SeqCst);
            true
        }
    }
}

/// Computes the lexicographically-first MIS with the deterministic
/// reservations framework, processing `granularity` pending vertices per
/// round. Identical output to
/// [`greedy_core::mis::sequential::sequential_mis`].
pub fn reservation_mis_with_granularity(
    graph: &Graph,
    pi: &Permutation,
    granularity: usize,
) -> (Vec<u32>, WorkStats) {
    let n = graph.num_vertices();
    assert_eq!(
        pi.len(),
        n,
        "reservation_mis: permutation covers {} elements but the graph has {} vertices",
        pi.len(),
        n
    );
    let step = MisStep {
        graph,
        order: pi.order(),
        rank: pi.rank(),
        state: (0..n).map(|_| AtomicU8::new(UNDECIDED)).collect(),
    };
    let stats = speculative_for(&step, n, granularity.max(1));
    let mis = step
        .state
        .iter()
        .enumerate()
        .filter_map(|(v, s)| (s.load(Ordering::SeqCst) == IN_MIS).then_some(v as u32))
        .collect();
    (mis, stats)
}

/// [`reservation_mis_with_granularity`] with a default granularity of
/// max(1024, n/50), matching the prefix sizes that work well in Figure 1.
pub fn reservation_mis(graph: &Graph, pi: &Permutation) -> Vec<u32> {
    let n = graph.num_vertices();
    reservation_mis_with_granularity(graph, pi, (n / 50).max(1024)).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use greedy_core::mis::sequential::sequential_mis;
    use greedy_core::mis::verify::verify_mis;
    use greedy_core::ordering::{identity_permutation, random_permutation};
    use greedy_graph::gen::random::random_graph;
    use greedy_graph::gen::rmat::rmat_graph;
    use greedy_graph::gen::structured::{complete_graph, cycle_graph, path_graph, star_graph};
    use greedy_graph::Graph;

    #[test]
    fn empty_and_edgeless() {
        assert!(reservation_mis(&Graph::empty(0), &identity_permutation(0)).is_empty());
        assert_eq!(
            reservation_mis(&Graph::empty(5), &identity_permutation(5)),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn matches_sequential_on_random_graphs_across_granularities() {
        for seed in 0..4 {
            let g = random_graph(400, 1_600, seed);
            let pi = random_permutation(400, seed + 17);
            let expected = sequential_mis(&g, &pi);
            for granularity in [1usize, 13, 100, 1_000] {
                let (mis, _) = reservation_mis_with_granularity(&g, &pi, granularity);
                assert_eq!(mis, expected, "seed {seed} granularity {granularity}");
                assert!(verify_mis(&g, &mis));
            }
        }
    }

    #[test]
    fn matches_sequential_on_structured_graphs() {
        for g in [
            path_graph(80),
            cycle_graph(81),
            star_graph(60),
            complete_graph(40),
            rmat_graph(9, 2_000, 1),
        ] {
            let pi = random_permutation(g.num_vertices(), 3);
            assert_eq!(reservation_mis(&g, &pi), sequential_mis(&g, &pi));
        }
    }

    #[test]
    fn identity_order_also_matches() {
        let g = random_graph(300, 1_000, 5);
        let pi = identity_permutation(300);
        assert_eq!(reservation_mis(&g, &pi), sequential_mis(&g, &pi));
    }

    #[test]
    fn granularity_one_has_n_rounds() {
        let g = random_graph(150, 500, 6);
        let pi = random_permutation(150, 7);
        let (_, stats) = reservation_mis_with_granularity(&g, &pi, 1);
        assert_eq!(stats.rounds, 150);
        assert_eq!(stats.vertex_work, 150);
    }
}
