//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and type surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size`, `throughput`, `bench_function` with [`BenchmarkId`], and
//! [`Bencher::iter`] — with a simple measurement loop instead of criterion's
//! statistical machinery: per benchmark it warms up, times `sample_size`
//! samples, and prints min/median/throughput to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function(BenchmarkId::from_parameter("default"), f);
        group.finish();
    }
}

/// Units for reporting throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier distinguishing benchmarks within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        samples.sort_unstable();
        let (min, median) = match samples.as_slice() {
            [] => (Duration::ZERO, Duration::ZERO),
            s => (s[0], s[s.len() / 2]),
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  {:.3e} elem/s", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!("  {:.3e} B/s", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: min {:?}  median {:?}  ({} samples){}",
            self.name,
            id.id,
            min,
            median,
            samples.len(),
            rate
        );
        self
    }

    /// Ends the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Measures `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a bench target from its group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| calls += 1)
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }
}
