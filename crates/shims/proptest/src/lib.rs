//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro (with an optional `#![proptest_config(..)]` inner attribute),
//! `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, range and tuple
//! strategies, and `proptest::collection::vec`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: each test function derives a fixed RNG seed from its module path
//! and name, so runs are deterministic and a failure reproduces by simply
//! re-running the test. Failing inputs are reported via the panic message of
//! the underlying `assert!`.

use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite snappy while
        // still exercising the size/degeneracy spectrum of each strategy.
        Self { cases: 64 }
    }
}

/// The deterministic RNG driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from an arbitrary label (the test's full path).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` may be 0, yielding 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u128).saturating_sub(self.start as u128) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

/// Marker returned by [`any`]; the strategy for "any value of `T`".
pub struct Any<T>(PhantomData<T>);

/// Strategy producing arbitrary values of `T`.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vectors of `elem` values with a length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Asserts a property holds (plain `assert!`; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two expressions differ (plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// The imports property tests expect in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn range_values_in_range(x in 5u32..17) {
            prop_assert!((5..17).contains(&x));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn tuples_and_any(pair in (0u32..3, 1u64..4), seed in any::<u64>()) {
            prop_assert!(pair.0 < 3);
            prop_assert!(pair.1 >= 1 && pair.1 < 4);
            let _ = seed;
        }
    }

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let mut c = crate::TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }
}
