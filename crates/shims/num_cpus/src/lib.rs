//! Offline stand-in for the `num_cpus` crate.
//!
//! This workspace builds in environments with no crates.io access; the shims
//! under `crates/shims/` provide the API subset the workspace uses. This one
//! maps `num_cpus::get()` onto `std::thread::available_parallelism`.

/// Number of logical CPUs available to this process (at least 1).
pub fn get() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of physical CPUs. The standard library exposes only logical
/// parallelism, so this returns the same value as [`get`].
pub fn get_physical() -> usize {
    get()
}

#[cfg(test)]
mod tests {
    #[test]
    fn at_least_one() {
        assert!(super::get() >= 1);
        assert!(super::get_physical() >= 1);
    }
}
