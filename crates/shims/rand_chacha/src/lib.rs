//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator (D. J. Bernstein's
//! ChaCha with 8 rounds) behind the small [`rand`] shim traits. The word
//! stream is a faithful ChaCha8 keystream for the expanded key; the
//! `seed_from_u64` key expansion is a SplitMix64 fill, so streams are not
//! bit-identical to the upstream crate's — nothing in this workspace
//! depends on that, only on fixed-seed determinism and statistical quality.

use rand::{RngCore, SeedableRng};

/// "expand 32-byte k" — the ChaCha constant words.
const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 2 counter words, 2 nonce words.
    state: [u32; 16],
    /// Current output block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..4 {
            // One double round: 4 column rounds then 4 diagonal rounds.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (o, (&a, &b)) in self.buf.iter_mut().zip(x.iter().zip(self.state.iter())) {
            *o = a.wrapping_add(b);
        }
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 key expansion (the rand crate seeds sub-u64 states the
        // same way).
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..4 {
            let w = next();
            state[4 + 2 * i] = w as u32;
            state[5 + 2 * i] = (w >> 32) as u32;
        }
        // Counter and nonce start at zero.
        Self {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn output_crosses_block_boundaries() {
        // 16 words per block; draw enough u64s to force several refills.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            seen.insert(rng.next_u64());
        }
        assert!(seen.len() > 250, "keystream should look non-repeating");
    }

    #[test]
    fn low_bit_is_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let ones = (0..10_000).filter(|_| rng.next_u32() & 1 == 1).count();
        assert!((4_500..5_500).contains(&ones), "ones = {ones}");
    }
}
