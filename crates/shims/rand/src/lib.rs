//! Offline stand-in for the `rand` crate.
//!
//! Provides the core traits ([`RngCore`], [`SeedableRng`]) and the
//! [`seq::SliceRandom::shuffle`] helper this workspace uses. Concrete
//! generators live in the sibling `rand_chacha` shim.

/// A source of random 32/64-bit values.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sequence-related helpers.
pub mod seq {
    use crate::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates), driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Unbiased-enough widening-multiply reduction to 0..=i.
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::RngCore;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A crude LCG: enough to exercise shuffle determinism.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        a.shuffle(&mut Counter(7));
        b.shuffle(&mut Counter(7));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, sorted, "a 100-element shuffle should move something");
    }
}
