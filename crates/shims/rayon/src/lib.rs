//! Offline stand-in for the `rayon` crate.
//!
//! This workspace must build in environments with no crates.io access, so the
//! shims under `crates/shims/` provide the API subset the workspace uses.
//! This one reimplements the rayon surface the algorithms rely on with **real
//! data parallelism** on `std::thread::scope`:
//!
//! * a parallel iterator ([`Par`]) over slices, mutable slices, chunks,
//!   integer ranges, and vectors, with the adapters the workspace uses
//!   (`map`, `filter`, `filter_map`, `flat_map_iter`, `copied`, `zip`,
//!   `enumerate`) and parallel terminals (`collect`, `for_each`, `sum`,
//!   `count`, `min`, `max`, `all`, `any`, `reduce`);
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] and
//!   [`current_num_threads`], so callers can pin a computation to a given
//!   parallelism level (thread-count sweeps in the experiment harness);
//! * [`join`] for fork–join recursion.
//!
//! # Execution model
//!
//! A source is split eagerly into contiguous parts (a small multiple of the
//! effective thread count). Adapters wrap each part's *sequential* iterator
//! lazily, so an adapter chain costs the same as the equivalent `std::iter`
//! chain. A terminal operation distributes the parts over scoped worker
//! threads and combines per-part results **in part order**, which keeps every
//! operation deterministic: results never depend on thread interleaving.
//!
//! Two deviations from real rayon, acceptable for the workloads here and
//! documented at the call sites that care:
//!
//! * `zip` and `enumerate` materialize their input (they are only applied
//!   directly to cheap sources in this workspace);
//! * `par_sort_unstable` / `par_sort_by_key` require `T: Copy` (all keys
//!   sorted in this workspace are small `Copy` tuples). Both run a parallel
//!   **sample sort** — oversampled splitters, a stable parallel bucket
//!   scatter, then independent per-bucket sorts — so every phase
//!   parallelizes; there is no sequential merge. The output is the unique
//!   stable order under the comparator, hence thread-count independent.

use std::cell::Cell;
use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Thread accounting and the worker driver
// ---------------------------------------------------------------------------

thread_local! {
    /// Thread count pinned by the innermost `ThreadPool::install`, if any.
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of threads parallel operations on this thread will use: the
/// innermost installed pool's size, or the machine's available parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
}

/// Smallest part a source is split into; below this, splitting overhead
/// dominates any parallel win.
const MIN_PART: usize = 256;

thread_local! {
    /// Grain override installed by [`with_min_part_len`], if any. Inherited
    /// by the scoped workers a terminal spawns, so nested parallel calls see
    /// the same grain the caller installed.
    static MIN_PART_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The grain in effect on this thread: the innermost [`with_min_part_len`]
/// override, or the default [`MIN_PART`].
fn min_part() -> usize {
    MIN_PART_OVERRIDE
        .with(|c| c.get())
        .unwrap_or(MIN_PART)
        .max(1)
}

/// Runs `f` with the splitting grain lowered (or raised) to `min`: sources
/// created inside split as soon as they hold more than `min` elements,
/// instead of the default 256.
///
/// The default grain is tuned for *per-element* work, where splitting an
/// 8-element collection costs more than it saves. A **coarse** fan-out — a
/// handful of items that each carry milliseconds of work, like the sharded
/// engine's per-shard drive — is the opposite regime: under the default
/// grain `par_iter` hands all S items to one part and the loop runs
/// serially. `with_min_part_len(1, ..)` is the `with_min_len`-style escape
/// hatch (rayon proper hangs the knob off `IndexedParallelIterator`; the
/// shim splits eagerly at source construction, so the override is scoped
/// around the construction instead).
///
/// The override is restored on exit (including unwinds) and is inherited by
/// worker threads, so nested parallel calls under a worker see the same
/// grain.
pub fn with_min_part_len<R>(min: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            MIN_PART_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(MIN_PART_OVERRIDE.with(|c| c.replace(Some(min.max(1)))));
    f()
}

/// How many parts to split a source of `len` items into.
fn split_count(len: usize) -> usize {
    let threads = current_num_threads();
    let grain = min_part();
    if threads <= 1 || len <= grain {
        return 1;
    }
    (threads * 4).min(len.div_ceil(grain)).max(1)
}

/// Consumes each part with `f` on a scoped worker pool and returns the
/// per-part results in part order. Workers inherit the caller's installed
/// pool size so nested parallel calls see the same thread budget.
fn run_parts<I, R, F>(parts: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let threads = current_num_threads().min(parts.len());
    if threads <= 1 {
        return parts.into_iter().map(f).collect();
    }
    let inherited = POOL_THREADS.with(|c| c.get());
    let inherited_grain = MIN_PART_OVERRIDE.with(|c| c.get());
    let n = parts.len();
    let slots: Vec<Mutex<Option<I>>> = parts.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    {
        let (f, slots, results, next) = (&f, &slots, &results, &next);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(move || {
                    POOL_THREADS.with(|c| c.set(inherited));
                    MIN_PART_OVERRIDE.with(|c| c.set(inherited_grain));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let part = slots[i].lock().unwrap().take().unwrap();
                        let r = f(part);
                        *results[i].lock().unwrap() = Some(r);
                    }
                });
            }
        });
    }
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().unwrap())
        .collect()
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let inherited = POOL_THREADS.with(|c| c.get());
    std::thread::scope(|scope| {
        let hb = scope.spawn(move || {
            POOL_THREADS.with(|c| c.set(inherited));
            b()
        });
        let ra = a();
        (ra, hb.join().unwrap())
    })
}

// ---------------------------------------------------------------------------
// Thread pools
// ---------------------------------------------------------------------------

/// Error building a thread pool. The shim's pools cannot actually fail to
/// build; the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count; `0` means the machine default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical thread pool: a parallelism budget that [`ThreadPool::install`]
/// pins for the duration of a closure. Workers are spawned per operation
/// (scoped threads), not kept alive, which is indistinguishable to callers
/// beyond constant-factor overhead.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

/// Restores the caller's pool size when `install` unwinds or returns.
struct PoolGuard(Option<usize>);

impl Drop for PoolGuard {
    fn drop(&mut self) {
        POOL_THREADS.with(|c| c.set(self.0));
    }
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count pinned as the parallelism
    /// budget for all parallel operations it performs.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let prev = POOL_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let _guard = PoolGuard(prev);
        op()
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

// ---------------------------------------------------------------------------
// Parallel iterator
// ---------------------------------------------------------------------------

/// A parallel iterator: an ordered list of sequential parts that terminal
/// operations consume on worker threads.
pub struct Par<I> {
    parts: Vec<I>,
}

/// Splits `0..len` into part boundaries.
fn part_bounds(len: usize) -> Vec<(usize, usize)> {
    let pieces = split_count(len);
    let chunk = len.div_ceil(pieces.max(1)).max(1);
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    loop {
        let end = (start + chunk).min(len);
        out.push((start, end));
        if end == len {
            break;
        }
        start = end;
    }
    out
}

/// Splits an owned vector into per-part consuming iterators.
fn vec_parts<T>(v: Vec<T>) -> Vec<std::vec::IntoIter<T>> {
    let len = v.len();
    let bounds = part_bounds(len);
    if bounds.len() <= 1 {
        return vec![v.into_iter()];
    }
    let mut it = v.into_iter();
    bounds
        .iter()
        .map(|&(s, e)| it.by_ref().take(e - s).collect::<Vec<_>>().into_iter())
        .collect()
}

impl<T: Send> Par<std::vec::IntoIter<T>> {
    /// Builds a parallel iterator over an owned vector's elements.
    pub fn from_vec(v: Vec<T>) -> Self {
        Par {
            parts: vec_parts(v),
        }
    }
}

impl<I> Par<I>
where
    I: Iterator + Send,
    I::Item: Send,
{
    /// Applies `f` to every item.
    pub fn map<R, F>(self, f: F) -> Par<Map<I, F>>
    where
        F: Fn(I::Item) -> R + Send + Sync,
    {
        let f = Arc::new(f);
        Par {
            parts: self
                .parts
                .into_iter()
                .map(|p| Map {
                    inner: p,
                    f: Arc::clone(&f),
                })
                .collect(),
        }
    }

    /// Keeps items satisfying `pred` (which, as in rayon, sees `&Item`).
    pub fn filter<F>(self, pred: F) -> Par<Filter<I, F>>
    where
        F: Fn(&I::Item) -> bool + Send + Sync,
    {
        let pred = Arc::new(pred);
        Par {
            parts: self
                .parts
                .into_iter()
                .map(|p| Filter {
                    inner: p,
                    pred: Arc::clone(&pred),
                })
                .collect(),
        }
    }

    /// Maps items to `Option`s and keeps the `Some` payloads.
    pub fn filter_map<R, F>(self, f: F) -> Par<FilterMap<I, F>>
    where
        F: Fn(I::Item) -> Option<R> + Send + Sync,
    {
        let f = Arc::new(f);
        Par {
            parts: self
                .parts
                .into_iter()
                .map(|p| FilterMap {
                    inner: p,
                    f: Arc::clone(&f),
                })
                .collect(),
        }
    }

    /// Maps each item to a sequential iterator and flattens, rayon-style.
    pub fn flat_map_iter<II, F>(self, f: F) -> Par<FlatMapIter<I, F, II>>
    where
        F: Fn(I::Item) -> II + Send + Sync,
        II: IntoIterator,
        II::Item: Send,
    {
        let f = Arc::new(f);
        Par {
            parts: self
                .parts
                .into_iter()
                .map(|p| FlatMapIter {
                    inner: p,
                    f: Arc::clone(&f),
                    cur: None,
                })
                .collect(),
        }
    }

    /// Pairs items with their global index. Materializes the input (it is
    /// only used directly on sources in this workspace).
    pub fn enumerate(self) -> Par<std::vec::IntoIter<(usize, I::Item)>> {
        let v: Vec<(usize, I::Item)> = self.parts.into_iter().flatten().enumerate().collect();
        Par::from_vec(v)
    }

    /// Pairs items of two parallel iterators elementwise. Materializes both
    /// inputs (they are only cheap sources in this workspace).
    pub fn zip<J>(self, other: Par<J>) -> Par<std::vec::IntoIter<(I::Item, J::Item)>>
    where
        J: Iterator + Send,
        J::Item: Send,
    {
        let a: Vec<I::Item> = self.parts.into_iter().flatten().collect();
        let b: Vec<J::Item> = other.parts.into_iter().flatten().collect();
        Par::from_vec(a.into_iter().zip(b).collect())
    }

    /// Copies referenced items.
    pub fn copied<'a, T>(self) -> Par<std::iter::Copied<I>>
    where
        I: Iterator<Item = &'a T>,
        T: Copy + Send + Sync + 'a,
    {
        Par {
            parts: self.parts.into_iter().map(|p| p.copied()).collect(),
        }
    }

    // -- terminals ---------------------------------------------------------

    /// Runs `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I::Item) + Send + Sync,
    {
        run_parts(self.parts, |p| p.for_each(&f));
    }

    /// Collects into `C` preserving the sequential order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallel<I::Item>,
    {
        C::from_part_results(run_parts(self.parts, |p| p.collect::<Vec<_>>()))
    }

    /// Number of items.
    pub fn count(self) -> usize {
        run_parts(self.parts, |p| p.count()).into_iter().sum()
    }

    /// Sums the items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item> + std::iter::Sum<S> + Send,
    {
        run_parts(self.parts, |p| p.sum::<S>()).into_iter().sum()
    }

    /// Minimum item, `None` when empty.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        run_parts(self.parts, |p| p.min())
            .into_iter()
            .flatten()
            .min()
    }

    /// Maximum item, `None` when empty.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        run_parts(self.parts, |p| p.max())
            .into_iter()
            .flatten()
            .max()
    }

    /// True when `pred` holds for every item.
    pub fn all<F>(self, pred: F) -> bool
    where
        F: Fn(I::Item) -> bool + Send + Sync,
    {
        run_parts(self.parts, |mut p| p.all(&pred))
            .into_iter()
            .all(|b| b)
    }

    /// True when `pred` holds for some item.
    pub fn any<F>(self, pred: F) -> bool
    where
        F: Fn(I::Item) -> bool + Send + Sync,
    {
        run_parts(self.parts, |mut p| p.any(&pred))
            .into_iter()
            .any(|b| b)
    }

    /// Reduces with `op`, seeding every part (and the final combine) with
    /// `identity`, exactly like rayon's `reduce`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item + Send + Sync,
        OP: Fn(I::Item, I::Item) -> I::Item + Send + Sync,
    {
        run_parts(self.parts, |p| p.fold(identity(), &op))
            .into_iter()
            .fold(identity(), &op)
    }
}

/// How a container is assembled from ordered per-part results.
pub trait FromParallel<T> {
    /// Concatenates the per-part buffers, in order.
    fn from_part_results(parts: Vec<Vec<T>>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_part_results(parts: Vec<Vec<T>>) -> Self {
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.extend(p);
        }
        out
    }
}

// -- lazy per-part adapters -------------------------------------------------

/// Per-part `map` adapter.
pub struct Map<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, R, F> Iterator for Map<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.inner.next().map(|x| (self.f)(x))
    }
}

/// Per-part `filter` adapter.
pub struct Filter<I, F> {
    inner: I,
    pred: Arc<F>,
}

impl<I, F> Iterator for Filter<I, F>
where
    I: Iterator,
    F: Fn(&I::Item) -> bool,
{
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        self.inner.find(|x| (self.pred)(x))
    }
}

/// Per-part `filter_map` adapter.
pub struct FilterMap<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, R, F> Iterator for FilterMap<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> Option<R>,
{
    type Item = R;
    fn next(&mut self) -> Option<R> {
        loop {
            match (self.f)(self.inner.next()?) {
                Some(x) => return Some(x),
                None => continue,
            }
        }
    }
}

/// Per-part `flat_map_iter` adapter.
pub struct FlatMapIter<I, F, II: IntoIterator> {
    inner: I,
    f: Arc<F>,
    cur: Option<II::IntoIter>,
}

impl<I, F, II> Iterator for FlatMapIter<I, F, II>
where
    I: Iterator,
    F: Fn(I::Item) -> II,
    II: IntoIterator,
{
    type Item = II::Item;
    fn next(&mut self) -> Option<II::Item> {
        loop {
            if let Some(c) = &mut self.cur {
                if let Some(x) = c.next() {
                    return Some(x);
                }
            }
            self.cur = Some((self.f)(self.inner.next()?).into_iter());
        }
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Concrete parallel iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = Par<std::ops::Range<$t>>;
            fn into_par_iter(self) -> Self::Iter {
                let len = (self.end as u128).saturating_sub(self.start as u128) as usize;
                let parts = part_bounds(len)
                    .into_iter()
                    .map(|(s, e)| (self.start + s as $t)..(self.start + e as $t))
                    .collect();
                Par { parts }
            }
        }
    )*};
}

impl_range_source!(u32, u64, usize);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = Par<std::vec::IntoIter<T>>;
    fn into_par_iter(self) -> Self::Iter {
        Par::from_vec(self)
    }
}

/// Parallel operations on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
    /// Parallel iterator over contiguous chunks of up to `size` elements.
    fn par_chunks(&self, size: usize) -> Par<std::vec::IntoIter<&[T]>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
        let parts = part_bounds(self.len())
            .into_iter()
            .map(|(s, e)| self[s..e].iter())
            .collect();
        Par { parts }
    }

    fn par_chunks(&self, size: usize) -> Par<std::vec::IntoIter<&[T]>> {
        assert!(size > 0, "par_chunks: chunk size must be positive");
        Par::from_vec(self.chunks(size).collect())
    }
}

/// Parallel operations on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>>;
    /// Sorts in parallel via sample sort. The shim requires `T: Copy`
    /// (scatter and copy-back go through a scratch buffer). The result is the
    /// stable order, which for a total order on `T` is simply sorted order.
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Copy + Sync;
    /// Stable parallel sort by a key function (sample sort; same `T: Copy`
    /// caveat). Matches real rayon's `par_sort_by_key` stability promise.
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        T: Copy + Sync,
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

/// Splits a mutable slice into at most `pieces` contiguous sub-slices.
fn split_mut<T>(mut s: &mut [T], chunk: usize) -> Vec<&mut [T]> {
    let mut parts = Vec::new();
    while s.len() > chunk {
        let (a, b) = s.split_at_mut(chunk);
        parts.push(a);
        s = b;
    }
    parts.push(s);
    parts
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
        let len = self.len();
        let chunk = len.div_ceil(split_count(len).max(1)).max(1);
        let parts = split_mut(self, chunk)
            .into_iter()
            .map(|s| s.iter_mut())
            .collect();
        Par { parts }
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord + Copy + Sync,
    {
        par_sample_sort(self, |a, b| a.cmp(b));
    }

    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        T: Copy + Sync,
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_sample_sort(self, |a, b| key(a).cmp(&key(b)));
    }
}

/// How many candidate splitters to draw per bucket. More oversampling gives
/// better-balanced buckets at the cost of a slightly larger (still tiny)
/// sample sort.
const OVERSAMPLE: usize = 16;

/// Below this length a sequential stable sort beats any parallel setup.
const SAMPLE_SORT_CUTOFF: usize = 4096;

/// Stable parallel sample sort.
///
/// Phases, each parallel over the worker pool:
///
/// 1. **splitters** — `buckets × OVERSAMPLE` evenly spaced elements are
///    sorted (they are few) and every `OVERSAMPLE`-th one becomes a splitter;
///    evenly spaced sampling is deterministic in the input, needing no RNG.
/// 2. **scatter** — each input part counts, then writes, its elements into
///    per-`(bucket, part)` sub-slices of a scratch buffer, laid out
///    bucket-major and part-minor. Parts write disjoint sub-slices (no
///    synchronization, no `unsafe`), and walking each part in input order
///    makes the scatter stable per bucket.
/// 3. **per-bucket sort** — buckets are contiguous in scratch and
///    independent, so they sort in parallel with `std`'s stable sort.
///
/// Elements equal under `cmp` land in the same bucket (an element's bucket is
/// the number of splitters strictly less than it), so stable scatter +
/// stable bucket sort + bucket concatenation is a stable sort overall. The
/// output is therefore the unique stable order under `cmp`: identical at
/// every thread count, even though splitters and part boundaries differ.
fn par_sample_sort<T, C>(data: &mut [T], cmp: C)
where
    T: Copy + Send + Sync,
    C: Fn(&T, &T) -> CmpOrdering + Sync,
{
    let len = data.len();
    let threads = current_num_threads();
    let buckets = threads * 2;
    if threads <= 1 || len < SAMPLE_SORT_CUTOFF.max(buckets * OVERSAMPLE * 4) {
        data.sort_by(|a, b| cmp(a, b));
        return;
    }

    // Phase 1: oversampled, evenly spaced splitter candidates.
    let step = len / (buckets * OVERSAMPLE);
    let mut sample: Vec<T> = (0..buckets * OVERSAMPLE)
        .map(|i| data[i * step + step / 2])
        .collect();
    sample.sort_by(|a, b| cmp(a, b));
    let splitters: Vec<T> = (1..buckets).map(|b| sample[b * OVERSAMPLE]).collect();
    let bucket_of =
        |x: &T| -> usize { splitters.partition_point(|s| cmp(s, x) == CmpOrdering::Less) };

    // Phase 2a: per-part bucket histograms.
    let input: &[T] = data;
    let bounds = part_bounds(len);
    let counts: Vec<Vec<usize>> = run_parts(bounds.clone(), |(s, e)| {
        let mut c = vec![0usize; buckets];
        for item in &input[s..e] {
            c[bucket_of(item)] += 1;
        }
        c
    });

    // Phase 2b: carve the scratch buffer into per-(bucket, part) sub-slices,
    // bucket-major and part-minor — the exclusive scan of the count matrix,
    // realized as disjoint slices.
    let mut scratch: Vec<T> = input.to_vec();
    let bucket_sizes: Vec<usize> = (0..buckets)
        .map(|b| counts.iter().map(|c| c[b]).sum())
        .collect();
    let mut per_part: Vec<Vec<&mut [T]>> = (0..bounds.len())
        .map(|_| Vec::with_capacity(buckets))
        .collect();
    let mut rest: &mut [T] = &mut scratch;
    for b in 0..buckets {
        for (part, c) in counts.iter().enumerate() {
            let (seg, tail) = rest.split_at_mut(c[b]);
            per_part[part].push(seg);
            rest = tail;
        }
    }

    // Phase 2c: scatter, each part replaying its input range in order.
    type ScatterTask<'a, T> = ((usize, usize), Vec<&'a mut [T]>);
    let tasks: Vec<ScatterTask<'_, T>> = bounds.into_iter().zip(per_part).collect();
    run_parts(tasks, |((s, e), mut segs): ScatterTask<'_, T>| {
        let mut cursor = vec![0usize; buckets];
        for item in &input[s..e] {
            let b = bucket_of(item);
            segs[b][cursor[b]] = *item;
            cursor[b] += 1;
        }
    });

    // Phase 3: sort each bucket independently, then copy back.
    let mut bucket_slices: Vec<&mut [T]> = Vec::with_capacity(buckets);
    let mut rest: &mut [T] = &mut scratch;
    for &size in &bucket_sizes {
        let (seg, tail) = rest.split_at_mut(size);
        bucket_slices.push(seg);
        rest = tail;
    }
    run_parts(bucket_slices, |s: &mut [T]| s.sort_by(|a, b| cmp(a, b)));
    data.copy_from_slice(&scratch);
}

/// Everything callers need in scope: the source and adapter traits.
pub mod prelude {
    pub use crate::{FromParallel, IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..100_000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 100_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn filter_and_count() {
        let n = (0..1_000_000u32)
            .into_par_iter()
            .filter(|&x| x % 3 == 0)
            .count();
        assert_eq!(n, 333_334);
    }

    #[test]
    fn sum_min_max_all_any() {
        let data: Vec<u64> = (0..50_000).collect();
        assert_eq!(data.par_iter().sum::<u64>(), 50_000 * 49_999 / 2);
        assert_eq!(data.par_iter().copied().min(), Some(0));
        assert_eq!(data.par_iter().copied().max(), Some(49_999));
        assert!(data.par_iter().all(|&x| x < 50_000));
        assert!(data.par_iter().any(|&x| x == 12_345));
        assert!(!data.par_iter().any(|&x| x > 60_000));
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(empty.par_iter().count(), 0);
        assert_eq!(empty.par_iter().copied().max(), None);
        let c: Vec<u32> = (0u32..0).into_par_iter().collect();
        assert!(c.is_empty());
        assert!(empty.par_iter().all(|_| false));
        assert!(!empty.par_iter().any(|_| true));
    }

    #[test]
    fn zip_and_enumerate() {
        let a = [1u32, 2, 3, 4];
        let b = [10u32, 20, 30, 40];
        let s: Vec<u32> = a
            .par_iter()
            .zip(b.par_iter())
            .map(|(&x, &y)| x + y)
            .collect();
        assert_eq!(s, vec![11, 22, 33, 44]);
        let e: Vec<(usize, u32)> = b.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(e, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn with_min_part_len_splits_a_tiny_fanout() {
        // Regression for the coarse-grain footgun: under the default
        // 256-element grain an 8-element fan-out is a single part and runs
        // entirely on the calling thread, serializing per-shard work that
        // each carries milliseconds. With the grain overridden to 1 the
        // same fan-out must actually distribute across the pool.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| {
                with_min_part_len(1, || {
                    (0..8usize).into_par_iter().for_each(|_| {
                        seen.lock().unwrap().insert(std::thread::current().id());
                        // Coarse enough for the other workers to grab a part
                        // before the first thread drains the queue.
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    })
                })
            });
        assert!(
            seen.lock().unwrap().len() >= 2,
            "8-element fan-out under with_min_part_len(1) ran on one thread"
        );
    }

    #[test]
    fn with_min_part_len_restores_default_grain() {
        let parts_under = with_min_part_len(1, || (0..8usize).into_par_iter().parts.len());
        let parts_after = (0..8usize).into_par_iter().parts.len();
        if current_num_threads() > 1 {
            assert!(parts_under > 1, "override must split an 8-element source");
        }
        assert_eq!(parts_after, 1, "default grain must be restored on exit");
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let v: Vec<u32> = vec![0u32, 1, 2, 3]
            .into_par_iter()
            .flat_map_iter(|x| [x * 10, x * 10 + 1])
            .collect();
        assert_eq!(v, vec![0, 1, 10, 11, 20, 21, 30, 31]);
    }

    #[test]
    fn par_iter_mut_writes() {
        let mut v = vec![0u64; 100_000];
        v.par_iter_mut().for_each(|x| *x = 7);
        assert!(v.iter().all(|&x| x == 7));
    }

    #[test]
    fn par_sort_matches_std() {
        let mut a: Vec<u64> = (0..120_000u64)
            .map(|i| i.wrapping_mul(2654435761) % 99_991)
            .collect();
        let mut b = a.clone();
        a.sort_unstable();
        b.par_sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn par_sort_by_key_matches_std() {
        let mut a: Vec<(u64, u32)> = (0..80_000u64).map(|i| (i * 31 % 1000, i as u32)).collect();
        let mut b = a.clone();
        a.sort_by_key(|&(k, _)| k);
        b.par_sort_by_key(|&(k, _)| k);
        let ka: Vec<u64> = a.iter().map(|&(k, _)| k).collect();
        let kb: Vec<u64> = b.iter().map(|&(k, _)| k).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn sample_sort_is_stable_and_thread_count_independent() {
        // Duplicate-heavy keys with distinguishable payloads: stability means
        // the result must equal std's stable sort exactly, at every pool size.
        let data: Vec<(u64, u32)> = (0..150_000u32)
            .map(|i| ((i as u64 * 31) % 997, i))
            .collect();
        let mut expected = data.clone();
        expected.sort_by_key(|&(k, _)| k);
        for threads in [2usize, 3, 7] {
            let mut got = data.clone();
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| got.par_sort_by_key(|&(k, _)| k));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn sample_sort_unstable_matches_std_under_pool() {
        let data: Vec<u64> = (0..200_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let mut expected = data.clone();
        expected.sort_unstable();
        let mut got = data;
        ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| got.par_sort_unstable());
        assert_eq!(got, expected);
    }

    #[test]
    fn sample_sort_all_equal_under_pool() {
        let mut data = vec![7u64; 100_000];
        ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| data.par_sort_unstable());
        assert!(data.iter().all(|&x| x == 7));
        assert_eq!(data.len(), 100_000);
    }

    #[test]
    fn reduce_with_identity() {
        let h = vec![1u64; 10_000]
            .into_par_iter()
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(h, 10_000);
    }

    #[test]
    fn pool_pins_thread_count() {
        let inside = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap()
            .install(current_num_threads);
        assert_eq!(inside, 3);
        // Restored after install.
        assert_eq!(current_num_threads(), default_threads());
    }

    #[test]
    fn nested_install_restores_outer() {
        let pool2 = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let pool5 = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let (inner, outer) = pool2.install(|| {
            let inner = pool5.install(current_num_threads);
            (inner, current_num_threads())
        });
        assert_eq!(inner, 5);
        assert_eq!(outer, 2);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn results_independent_of_pool_size() {
        let run = |threads: usize| -> Vec<u64> {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    (0..100_000u64)
                        .into_par_iter()
                        .filter(|&x| x % 7 == 0)
                        .map(|x| x * 3)
                        .collect()
                })
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }
}
