//! Runs every experiment binary in sequence at the configured scale and
//! writes each one's CSV to `results/<experiment>_<graph>.csv`.
//!
//! This is the one-command regeneration path for EXPERIMENTS.md:
//!
//! ```text
//! cargo run --release -p greedy_bench --bin run_all -- --scale small
//! ```
//!
//! In `--quick` mode it additionally times the two setup-phase hot paths the
//! sort subsystem owns — random-permutation construction and edge-list → CSR
//! build — and writes them to `results/BENCH_quick.json`. CI uploads that
//! file as an artifact on every run, giving future PRs a perf trajectory to
//! compare against. Adding `--compare` diffs the fresh rows against the
//! trajectory file's pre-run contents (the committed baseline in CI) and
//! prints a warning — never a failure — for every throughput row that
//! regressed by more than 25%.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use greedy_bench::{
    compare_quick_entries, engine_matching_heavy_batch, engine_mixed_batch, merge_quick_entries,
    read_quick_entries, run_on_threads, secs, time_best_of, HarnessConfig,
};
use greedy_engine::prelude::{DynGraph, Engine};
use greedy_graph::csr::Graph;
use greedy_graph::gen::random::{random_edge_list, random_graph};
use greedy_prims::permutation::par_random_permutation;
use greedy_prims::random::hash64;

fn main() {
    let cfg = HarnessConfig::from_args();
    let scale = cfg.scale.name();
    let out_dir = PathBuf::from("results");
    fs::create_dir_all(&out_dir).expect("cannot create results/ directory");

    // (binary, graphs to run it on)
    let experiments: &[(&str, &[&str])] = &[
        ("fig1_mis_prefix", &["random", "rmat"]),
        ("fig2_mm_prefix", &["random", "rmat"]),
        ("fig3_mis_threads", &["random", "rmat"]),
        ("fig4_mm_threads", &["random", "rmat"]),
        ("dependence_length", &["random"]),
        ("ablation_mis_impls", &["random", "rmat"]),
        ("ablation_grain_size", &["random"]),
    ];

    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    if cfg.quick {
        // `--compare` diffs the fresh rows against whatever the trajectory
        // file held *before* this run — in CI that is the committed
        // baseline — so snapshot it ahead of the merge.
        let baseline = cfg
            .compare
            .then(|| read_quick_entries(&out_dir.join("BENCH_quick.json")));
        write_quick_bench(&cfg, &out_dir);
        if let Some(baseline) = baseline {
            compare_against_baseline(&baseline, &out_dir);
        }
    }

    for (bin, graphs) in experiments {
        for graph in *graphs {
            let out_path = out_dir.join(format!("{bin}_{graph}.csv"));
            eprintln!(
                "== running {bin} --graph {graph} --scale {scale} -> {}",
                out_path.display()
            );
            let threads = cfg
                .threads
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let output = Command::new(exe_dir.join(bin))
                .args([
                    "--graph",
                    graph,
                    "--scale",
                    scale,
                    "--seed",
                    &cfg.seed.to_string(),
                ])
                .args([
                    "--threads",
                    &threads,
                    "--reps",
                    &cfg.reps.to_string(),
                    "--csv",
                ])
                .output()
                .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
            if !output.status.success() {
                eprintln!(
                    "experiment {bin} ({graph}) failed:\n{}",
                    String::from_utf8_lossy(&output.stderr)
                );
                std::process::exit(1);
            }
            fs::write(&out_path, &output.stdout)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", out_path.display()));
        }
    }
    eprintln!("all experiments written to {}", out_dir.display());
}

/// The `--compare` step: diff the freshly merged `BENCH_quick.json` rows
/// against the pre-merge snapshot and warn on >25% throughput regressions.
/// Warning only, never a failure: quick-mode numbers from a shared CI box
/// are too noisy for a hard gate, but the warning makes a persistent
/// regression visible in the job log while the uploaded artifact keeps the
/// exact rows for the trajectory.
fn compare_against_baseline(baseline: &[String], out_dir: &Path) {
    if baseline.is_empty() {
        eprintln!("== compare: no baseline rows to diff against, skipping");
        return;
    }
    let fresh = read_quick_entries(&out_dir.join("BENCH_quick.json"));
    let warnings = compare_quick_entries(baseline, &fresh, 25.0);
    if warnings.is_empty() {
        eprintln!(
            "== compare: no >25% throughput regressions across {} baseline rows",
            baseline.len()
        );
    } else {
        for w in &warnings {
            eprintln!("   PERF WARNING: {w}");
        }
        eprintln!(
            "== compare: {} row(s) regressed >25% vs the baseline (warning only)",
            warnings.len()
        );
    }
}

/// One timed entry of the quick-bench trajectory file.
struct QuickEntry {
    name: &'static str,
    threads: usize,
    n: usize,
    m: usize,
    seconds: f64,
}

/// Times the permutation and CSR-build hot paths, the batch-dynamic engine's
/// mixed-batch and matching-heavy update paths (1 thread and the machine's
/// full parallelism), and the flat-vs-nested membership-probe microbench,
/// and writes `results/BENCH_quick.json`.
///
/// Sizes are fixed (1M-element permutation, 100k/500k uniform graph, 1k-edge
/// engine batches, 1M membership probes) regardless of `--scale`, so the
/// numbers are comparable across runs and across PRs; at these sizes the
/// whole sweep takes a few seconds.
fn write_quick_bench(cfg: &HarnessConfig, out_dir: &Path) {
    const PERM_N: usize = 1_000_000;
    const CSR_N: usize = 100_000;
    const CSR_M: usize = 500_000;
    const ENGINE_BATCH: u64 = 1_000;
    const ENGINE_ROUNDS: u64 = 5;
    let reps = cfg.reps.max(2);
    let edges = random_edge_list(CSR_N, CSR_M, cfg.seed);
    let mut entries: Vec<QuickEntry> = Vec::new();
    for &threads in &cfg.threads {
        let (perm_time, perm) = run_on_threads(threads, || {
            time_best_of(reps, || par_random_permutation(PERM_N, cfg.seed))
        });
        assert_eq!(perm.len(), PERM_N);
        entries.push(QuickEntry {
            name: "par_random_permutation",
            threads,
            n: PERM_N,
            m: 0,
            seconds: secs(perm_time),
        });
        let (csr_time, graph) = run_on_threads(threads, || {
            time_best_of(reps, || Graph::from_edge_list(&edges))
        });
        entries.push(QuickEntry {
            name: "csr_from_edge_list",
            threads,
            n: CSR_N,
            m: graph.num_edges(),
            seconds: secs(csr_time),
        });
        // Batch-dynamic engine: a *fixed* stream of mixed batches (1k hashed
        // inserts + 500 deletes sampled from the live graph) applied to a
        // maintained 100k/500k graph; reported as mean seconds per batch.
        // The stream is the same regardless of `--reps` (each batch mutates
        // the engine, so best-of over reps would compare different
        // workloads), keeping the entry comparable across runs and PRs.
        let (engine_time, engine_edges) = run_on_threads(threads, || {
            let base = random_graph(CSR_N, CSR_M, cfg.seed);
            let mut engine = Engine::from_graph(&base, cfg.seed);
            let start = std::time::Instant::now();
            for round in 1..=ENGINE_ROUNDS {
                let batch = engine_mixed_batch(&engine, round, ENGINE_BATCH, ENGINE_BATCH / 2);
                engine.apply_batch(&batch);
            }
            (start.elapsed() / ENGINE_ROUNDS as u32, engine.num_edges())
        });
        entries.push(QuickEntry {
            name: "engine_apply_batch_1500",
            threads,
            n: CSR_N,
            m: engine_edges,
            seconds: secs(engine_time),
        });
        // Matching-heavy stream: the deletions target currently *matched*
        // edges, so every batch drives the matching's round-machinery
        // repair (freed slots + reseeded neighborhoods) — this entry tracks
        // the matching path separately from the mixed-batch entry above.
        let (match_time, match_edges) = run_on_threads(threads, || {
            let base = random_graph(CSR_N, CSR_M, cfg.seed);
            let mut engine = Engine::from_graph(&base, cfg.seed);
            let start = std::time::Instant::now();
            for round in 1..=ENGINE_ROUNDS {
                let batch =
                    engine_matching_heavy_batch(&engine, round, ENGINE_BATCH, ENGINE_BATCH / 2);
                engine.apply_batch(&batch);
            }
            (start.elapsed() / ENGINE_ROUNDS as u32, engine.num_edges())
        });
        entries.push(QuickEntry {
            name: "engine_matching_repair_1500",
            threads,
            n: CSR_N,
            m: match_edges,
            seconds: secs(match_time),
        });
    }

    // Storage-layout microbench: the same random membership probes against
    // the engine's flat slack-CSR arena and against the old nested
    // `Vec<Vec<u32>>` layout. Sequential by design (a probe is one lookup),
    // so one entry each. Note the nested baseline is measured at its best —
    // freshly cloned, so its per-vertex buffers come out of the allocator
    // nearly contiguous; the flat arena's advantage is that its layout
    // cannot fragment as the graph churns, so the flat entry's trajectory
    // is the one that must stay flat over time.
    {
        const PROBES: u64 = 1_000_000;
        let graph = random_graph(CSR_N, CSR_M, cfg.seed);
        let flat = DynGraph::from_graph(&graph);
        let nested: Vec<Vec<u32>> = graph.to_adjacency_lists();
        let probe_pair = |i: u64| {
            (
                (hash64(cfg.seed ^ 0x9E0B, 2 * i) % CSR_N as u64) as u32,
                (hash64(cfg.seed ^ 0x9E0B, 2 * i + 1) % CSR_N as u64) as u32,
            )
        };
        let (flat_time, flat_hits) = time_best_of(reps, || {
            (0..PROBES)
                .filter(|&i| {
                    let (u, v) = probe_pair(i);
                    flat.has_edge(u, v)
                })
                .count()
        });
        let (nested_time, nested_hits) = time_best_of(reps, || {
            (0..PROBES)
                .filter(|&i| {
                    let (u, v) = probe_pair(i);
                    u != v && {
                        let (a, b) = if nested[u as usize].len() <= nested[v as usize].len() {
                            (u, v)
                        } else {
                            (v, u)
                        };
                        nested[a as usize].binary_search(&b).is_ok()
                    }
                })
                .count()
        });
        assert_eq!(flat_hits, nested_hits, "probe layouts disagree");
        entries.push(QuickEntry {
            name: "membership_probe_flat",
            threads: 1,
            n: CSR_N,
            m: graph.num_edges(),
            seconds: secs(flat_time),
        });
        entries.push(QuickEntry {
            name: "membership_probe_nested",
            threads: 1,
            n: CSR_N,
            m: graph.num_edges(),
            seconds: secs(nested_time),
        });
    }

    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "    {{\"name\": \"{}\", \"threads\": {}, \"n\": {}, \"m\": {}, \"seconds\": {:.6}}}",
                e.name, e.threads, e.n, e.m, e.seconds
            )
        })
        .collect();
    // Merge rather than rewrite: `serve_load` owns the `server_*` rows of
    // the same file, and neither binary may destroy the other's trajectory.
    let path = out_dir.join("BENCH_quick.json");
    merge_quick_entries(
        &path,
        cfg.seed,
        &[
            "par_random_permutation",
            "csr_from_edge_list",
            "engine_",
            "membership_probe",
        ],
        "run_all",
        &rows,
    );
    eprintln!("quick perf trajectory written to {}", path.display());
    for e in &entries {
        eprintln!(
            "  {:>24} threads={:<2} {:>9.3} ms",
            e.name,
            e.threads,
            e.seconds * 1e3
        );
    }
}
