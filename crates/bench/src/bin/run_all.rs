//! Runs every experiment binary in sequence at the configured scale and
//! writes each one's CSV to `results/<experiment>_<graph>.csv`.
//!
//! This is the one-command regeneration path for EXPERIMENTS.md:
//!
//! ```text
//! cargo run --release -p greedy_bench --bin run_all -- --scale small
//! ```

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use greedy_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_args();
    let scale = cfg.scale.name();
    let out_dir = PathBuf::from("results");
    fs::create_dir_all(&out_dir).expect("cannot create results/ directory");

    // (binary, graphs to run it on)
    let experiments: &[(&str, &[&str])] = &[
        ("fig1_mis_prefix", &["random", "rmat"]),
        ("fig2_mm_prefix", &["random", "rmat"]),
        ("fig3_mis_threads", &["random", "rmat"]),
        ("fig4_mm_threads", &["random", "rmat"]),
        ("dependence_length", &["random"]),
        ("ablation_mis_impls", &["random", "rmat"]),
        ("ablation_grain_size", &["random"]),
    ];

    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    for (bin, graphs) in experiments {
        for graph in *graphs {
            let out_path = out_dir.join(format!("{bin}_{graph}.csv"));
            eprintln!(
                "== running {bin} --graph {graph} --scale {scale} -> {}",
                out_path.display()
            );
            let threads = cfg
                .threads
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let output = Command::new(exe_dir.join(bin))
                .args([
                    "--graph",
                    graph,
                    "--scale",
                    scale,
                    "--seed",
                    &cfg.seed.to_string(),
                ])
                .args([
                    "--threads",
                    &threads,
                    "--reps",
                    &cfg.reps.to_string(),
                    "--csv",
                ])
                .output()
                .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
            if !output.status.success() {
                eprintln!(
                    "experiment {bin} ({graph}) failed:\n{}",
                    String::from_utf8_lossy(&output.stderr)
                );
                std::process::exit(1);
            }
            fs::write(&out_path, &output.stdout)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", out_path.display()));
        }
    }
    eprintln!("all experiments written to {}", out_dir.display());
}
