//! Experiment T1 — the theory check behind Theorem 3.5.
//!
//! Measures the dependence length (rounds of Algorithm 2) and the longest
//! directed path of the priority DAG for growing input sizes, on random
//! orders over several graph families. The paper's bound says the dependence
//! length is O(log² n) w.h.p. for *any* graph; the complete graph shows why
//! the longest path is the wrong measure (it is n − 1 while the dependence
//! length stays 1), and the path graph is the adversarial-structure case.
//!
//! Usage: `dependence_length [--seed N] [--csv]` (graph/scale flags are
//! ignored; the experiment runs its own size sweep).

use greedy_bench::{print_csv_header, HarnessConfig};
use greedy_core::analysis::{dependence_length, priority_dag_longest_path};
use greedy_core::ordering::random_permutation;
use greedy_graph::csr::Graph;
use greedy_graph::gen::random::random_graph;
use greedy_graph::gen::rmat::rmat_graph;
use greedy_graph::gen::structured::{complete_graph, path_graph, star_graph};

fn families(n: usize, seed: u64) -> Vec<(&'static str, Graph)> {
    let mut out = vec![
        ("random", random_graph(n, 5 * n, seed)),
        (
            "rmat",
            rmat_graph((n.max(2) as f64).log2().ceil() as u32, 5 * n, seed),
        ),
        ("path", path_graph(n)),
        ("star", star_graph(n)),
    ];
    // The complete graph is only feasible at small n; cap it.
    if n <= 2_000 {
        out.push(("complete", complete_graph(n)));
    }
    out
}

fn main() {
    let cfg = HarnessConfig::from_args();
    if !cfg.csv_only {
        eprintln!(
            "# Theorem 3.5 check — dependence length vs log²(n), seed = {}",
            cfg.seed
        );
    }
    print_csv_header(&[
        "family",
        "n",
        "m",
        "dependence_length",
        "longest_dag_path",
        "log2n_squared",
    ]);

    for &n in &[1_000usize, 4_000, 16_000, 64_000] {
        for (name, graph) in families(n, cfg.seed) {
            let pi = random_permutation(graph.num_vertices(), cfg.seed.wrapping_add(n as u64));
            let dep = dependence_length(&graph, &pi);
            let path = priority_dag_longest_path(&graph, &pi);
            let log = (graph.num_vertices().max(2) as f64).log2();
            println!(
                "{},{},{},{},{},{:.1}",
                name,
                graph.num_vertices(),
                graph.num_edges(),
                dep,
                path,
                log * log
            );
        }
    }
}
