//! Load generator for the `greedy_server` update/query service.
//!
//! Spawns a server over a real TCP socket, then N writer clients (each
//! submitting mixed insert/delete batches that group-commit into rounds) and
//! M reader clients (each hammering MIS/matching membership queries against
//! the published snapshot), for a fixed duration. Reports:
//!
//! * round throughput (committed rounds/s) and update throughput (submitted
//!   and effective updates/s);
//! * query latency percentiles (p50/p90/p99), measured per call at the
//!   reader;
//! * a coherence audit: the final served state must be byte-identical to a
//!   from-scratch greedy engine on the final edge set (always), and with
//!   `--verify` every recorded round's published snapshot is replayed and
//!   checked the same way.
//!
//! The headline numbers are merged into `results/BENCH_quick.json` (entries
//! `server_rounds_per_s`, `server_updates_per_s`, `server_query_p50_us`,
//! `server_query_p99_us`), next to the sort/engine trajectory entries
//! `run_all --quick` writes; re-runs replace the previous `server_*` entries
//! instead of accumulating.
//!
//! ```text
//! cargo run --release -p greedy_bench --bin serve_load -- --quick
//! cargo run --release -p greedy_bench --bin serve_load -- --scale small \
//!     --writers 4 --readers 4 --duration-secs 3
//! ```

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use greedy_bench::{merge_quick_entries, Scale};
use greedy_engine::prelude::{EdgeBatch, Engine};
use greedy_graph::gen::random::random_graph;
use greedy_prims::random::hash64;
use greedy_server::prelude::*;

struct LoadConfig {
    n: usize,
    m: usize,
    writers: usize,
    readers: usize,
    batch: usize,
    duration: Duration,
    seed: u64,
    /// Record every round and replay them all after shutdown.
    verify_rounds: bool,
    max_batch_updates: usize,
    max_delay: Duration,
    /// Pause between reader queries. Readers are latency *samplers*; left
    /// unpaced (0) they are closed-loop saturators that — on small machines
    /// — time-share the engine thread off the CPU and measure scheduler
    /// contention instead of the service.
    reader_pace: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            n: 100_000,
            m: 500_000,
            writers: 4,
            readers: 4,
            batch: 2_048,
            duration: Duration::from_secs(3),
            seed: 42,
            verify_rounds: false,
            max_batch_updates: 8_192,
            max_delay: Duration::from_millis(2),
            reader_pace: Duration::from_millis(1),
        }
    }
}

fn parse_args() -> LoadConfig {
    let mut cfg = LoadConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match arg.as_str() {
            "--scale" => {
                let v = take("--scale");
                let scale = Scale::parse(&v)
                    .unwrap_or_else(|| panic!("unknown scale '{v}' (tiny|small|medium|paper)"));
                (cfg.n, cfg.m) = scale.random_size();
            }
            "--writers" => cfg.writers = take("--writers").parse().expect("bad --writers"),
            "--readers" => cfg.readers = take("--readers").parse().expect("bad --readers"),
            "--batch" => cfg.batch = take("--batch").parse().expect("bad --batch"),
            "--duration-secs" => {
                cfg.duration =
                    Duration::from_secs_f64(take("--duration-secs").parse().expect("bad duration"))
            }
            "--seed" => cfg.seed = take("--seed").parse().expect("bad --seed"),
            "--reader-pace-us" => {
                cfg.reader_pace =
                    Duration::from_micros(take("--reader-pace-us").parse().expect("bad pace"))
            }
            "--verify" => cfg.verify_rounds = true,
            // CI smoke mode: tiny graph, short run, full per-round audit —
            // finishes in a couple of seconds.
            "--quick" => {
                (cfg.n, cfg.m) = Scale::Tiny.random_size();
                cfg.writers = 2;
                cfg.readers = 2;
                cfg.batch = 512;
                cfg.duration = Duration::from_millis(1_500);
                cfg.verify_rounds = true;
                cfg.reader_pace = Duration::from_micros(300);
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --scale tiny|small|medium --writers N --readers M --batch B \
                     --duration-secs S --seed X --reader-pace-us U --verify --quick"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }
    assert!(cfg.writers >= 1, "need at least one writer");
    cfg
}

fn main() {
    let cfg = parse_args();
    eprintln!(
        "== serve_load: n={} m={} writers={} readers={} batch={} duration={:?} verify={}",
        cfg.n, cfg.m, cfg.writers, cfg.readers, cfg.batch, cfg.duration, cfg.verify_rounds
    );

    let base = random_graph(cfg.n, cfg.m, cfg.seed);
    let engine = Engine::from_graph(&base, cfg.seed);
    let handle = serve(
        engine,
        ServerConfig {
            rounds: RoundConfig {
                max_batch_updates: cfg.max_batch_updates,
                max_delay: cfg.max_delay,
            },
            record_rounds: cfg.verify_rounds,
        },
    )
    .expect("failed to start server");
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();

    // Writers: alternate a fresh hashed insert batch with a deletion of the
    // previous one, so the graph size stays bounded and both update paths
    // (and both repair paths) run hot the whole time.
    let writers: Vec<_> = (0..cfg.writers)
        .map(|w| {
            let stop = stop.clone();
            let (n, batch, seed) = (cfg.n as u64, cfg.batch, cfg.seed);
            thread::spawn(move || -> (u64, u64) {
                let mut client = Client::connect(addr).expect("writer connect");
                let mut submitted = 0u64;
                let mut rounds_seen = 0u64;
                let mut last_round = 0u64;
                let mut prev: Vec<(u32, u32)> = Vec::new();
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let delta = if !prev.is_empty() && k % 2 == 1 {
                        let batch = std::mem::take(&mut prev);
                        submitted += batch.len() as u64;
                        client.delete_edges(&batch).expect("writer delete")
                    } else {
                        let fresh: Vec<(u32, u32)> = (0..batch)
                            .map(|i| {
                                let key = k * batch as u64 + i as u64;
                                (
                                    (hash64(seed ^ (w as u64) << 32, 2 * key) % n) as u32,
                                    (hash64(seed ^ (w as u64) << 32, 2 * key + 1) % n) as u32,
                                )
                            })
                            .collect();
                        submitted += fresh.len() as u64;
                        let delta = client.insert_edges(&fresh).expect("writer insert");
                        prev = fresh;
                        delta
                    };
                    if delta.round > last_round {
                        rounds_seen += 1;
                        last_round = delta.round;
                    }
                    k += 1;
                }
                (submitted, rounds_seen)
            })
        })
        .collect();

    // Readers: batched membership queries against the published snapshot,
    // individually timed.
    let readers: Vec<_> = (0..cfg.readers)
        .map(|r| {
            let stop = stop.clone();
            let (n, seed, pace) = (cfg.n as u64, cfg.seed, cfg.reader_pace);
            thread::spawn(move || -> Vec<u64> {
                let mut client = Client::connect(addr).expect("reader connect");
                let mut latencies_us = Vec::new();
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let vs: Vec<u32> = (0..32)
                        .map(|i| (hash64(seed ^ 0xBEEF ^ (r as u64), k * 32 + i) % n) as u32)
                        .collect();
                    let t = Instant::now();
                    if k.is_multiple_of(2) {
                        client.query_mis(&vs).expect("reader query");
                    } else {
                        client.query_matched(&vs).expect("reader query");
                    }
                    latencies_us.push(t.elapsed().as_micros() as u64);
                    k += 1;
                    if !pace.is_zero() {
                        thread::sleep(pace);
                    }
                }
                latencies_us
            })
        })
        .collect();

    thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let mut submitted = 0u64;
    for w in writers {
        let (s, _) = w.join().expect("writer panicked");
        submitted += s;
    }
    let elapsed = started.elapsed();
    let mut latencies: Vec<u64> = Vec::new();
    for r in readers {
        latencies.extend(r.join().expect("reader panicked"));
    }
    latencies.sort_unstable();

    let report = handle.shutdown();
    let stats = *report.engine.stats();
    let effective = stats.edges_inserted + stats.edges_deleted;
    let rounds = stats.batches;
    let secs = elapsed.as_secs_f64();

    // Coherence audit: final served state == from-scratch greedy recompute.
    let final_graph = report.engine.snapshot().graph;
    let scratch = Engine::from_graph(&final_graph, cfg.seed);
    assert_eq!(
        scratch.server_snapshot(),
        report.engine.server_snapshot(),
        "final served state diverges from a from-scratch recompute"
    );
    if cfg.verify_rounds {
        // Replay every recorded round and compare each published snapshot.
        // All mismatches are collected (not just the first), reported, and
        // turned into a nonzero exit so CI fails the job on any
        // non-identical replayed snapshot.
        let mut replay = Engine::from_graph(&base, cfg.seed);
        let mut mismatched: Vec<u64> = Vec::new();
        for round in &report.rounds {
            replay.apply_batch(&EdgeBatch {
                insertions: round.insertions.clone(),
                deletions: round.deletions.clone(),
            });
            if replay.server_snapshot() != round.snapshot.state {
                mismatched.push(round.round);
            }
        }
        if mismatched.is_empty() {
            eprintln!(
                "   verified: all {} published snapshots byte-identical to replay",
                report.rounds.len()
            );
        } else {
            eprintln!(
                "   VERIFY FAILED: {} of {} published snapshots diverge from replay \
                 (rounds {:?})",
                mismatched.len(),
                report.rounds.len(),
                mismatched
            );
            std::process::exit(1);
        }
    }

    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        latencies[((latencies.len() - 1) as f64 * p).round() as usize]
    };
    let rounds_per_s = rounds as f64 / secs;
    let submitted_per_s = submitted as f64 / secs;
    let effective_per_s = effective as f64 / secs;
    eprintln!("   elapsed            {secs:.3} s");
    eprintln!("   rounds             {rounds} ({rounds_per_s:.0}/s)");
    eprintln!(
        "   updates submitted  {submitted} ({submitted_per_s:.0}/s), effective {effective} \
         ({effective_per_s:.0}/s)"
    );
    eprintln!(
        "   queries            {} (p50 {} us, p90 {} us, p99 {} us)",
        latencies.len(),
        pct(0.50),
        pct(0.90),
        pct(0.99)
    );

    let clients = cfg.writers + cfg.readers;
    let rows = vec![
        quick_row(
            "server_rounds_per_s",
            clients,
            cfg.n,
            cfg.m,
            rounds_per_s,
            "rounds/s",
        ),
        quick_row(
            "server_updates_per_s",
            clients,
            cfg.n,
            cfg.m,
            submitted_per_s,
            "updates/s",
        ),
        quick_row(
            "server_query_p50_us",
            clients,
            cfg.n,
            cfg.m,
            pct(0.50) as f64,
            "us",
        ),
        quick_row(
            "server_query_p99_us",
            clients,
            cfg.n,
            cfg.m,
            pct(0.99) as f64,
            "us",
        ),
    ];
    merge_quick_entries(
        Path::new("results/BENCH_quick.json"),
        cfg.seed,
        &["server_"],
        "server",
        &rows,
    );
    eprintln!(
        "   merged {} server_* entries into results/BENCH_quick.json",
        rows.len()
    );
}

/// One trajectory row. Unlike `run_all`'s timing rows (whose metric key is
/// `"seconds"`), server rows carry a rate or latency, so the metric key is
/// `"value"` with an explicit `"unit"`.
fn quick_row(name: &str, clients: usize, n: usize, m: usize, value: f64, unit: &str) -> String {
    format!(
        "    {{\"name\": \"{name}\", \"threads\": {clients}, \"n\": {n}, \"m\": {m}, \
         \"value\": {value:.3}, \"unit\": \"{unit}\"}}"
    )
}
