//! Load generator for the `greedy_server` update/query service.
//!
//! Spawns a server over a real TCP socket, then N writer clients (each
//! submitting mixed insert/delete batches that group-commit into rounds),
//! M reader clients (each hammering MIS/matching membership queries against
//! the published snapshot), and K push subscribers (each reconstructing the
//! served state purely from the delta stream), for a fixed duration.
//! Reports:
//!
//! * round throughput (committed rounds/s) and update throughput (submitted
//!   and effective updates/s);
//! * query latency percentiles (p50/p90/p99), measured per call at the
//!   reader and folded into a shared lock-free [`greedy_obs::Histogram`]
//!   (no per-call `Vec` growth in the timing loop);
//! * delta-subscription throughput (rounds folded/s) and resync count;
//! * a coherence audit: the final served state must be byte-identical to a
//!   from-scratch greedy engine on the final edge set (always); every
//!   subscriber's delta-reconstructed state must be byte-identical to the
//!   published snapshot of each round it lands on and to the final engine
//!   state (whenever `--subscribers` > 0); and with `--verify` every
//!   recorded round's published snapshot is replayed and checked the same
//!   way. Any divergence exits nonzero.
//! * a publication microbenchmark at 500k vertices comparing the engine's
//!   copy-on-write snapshot export (O(pages touched)) against a full O(n)
//!   rebuild.
//!
//! The headline numbers are merged into `results/BENCH_quick.json` (entries
//! `server_rounds_per_s`, `server_updates_per_s`, `server_query_p50_us`,
//! `server_query_p99_us`, `server_subscribe_deltas_per_s`,
//! `server_subscribe_resyncs`, `server_publish_cow_us`,
//! `server_publish_full_us`, and — with `--wal-bench` or `--quick` — the
//! WAL commit-cost entries `server_wal_{sync,off}_rounds_per_s` and
//! `server_wal_{sync,off}_commit_p99_us`, and — with `--shard-bench` or
//! `--quick` — the shard-scaling entries `server_shard{1,2,4}_updates_per_s`,
//! warn-only gated at 1.5× for 4 shards on a ≥4-core box), next to the
//! sort/engine
//! trajectory entries `run_all --quick` writes; re-runs replace the
//! previous entries instead of accumulating.
//!
//! `--metrics` adds the server-side observability report after the load
//! phase: it scrapes the registry twice — once over TCP via
//! `Request::Metrics`, once in-process via `ServerHandle::metrics_text()` —
//! and exits nonzero unless the two are byte-identical; prints the
//! per-stage commit-latency percentile table (stage wait / apply / repair /
//! wal / publish / feed), the repair-rounds histogram with the paper's
//! `log2(n)^2` depth bound for comparison, and validates that every metric
//! that cannot be zero after the load (committed rounds, query samples,
//! WAL appends when serving durably, and the merged engine internals —
//! rebuilds observed, arena occupancy, repair work) is in fact nonzero —
//! exiting nonzero otherwise. It also requests a `Trace` frame over the
//! live socket and requires its body to be byte-identical to
//! `encode_round_traces` over the in-process flight recorder, and dumps
//! the structured event journal to `results/events_quick.txt` (CI uploads
//! it next to the metrics dump).
//! The full exposition is dumped to `results/metrics_quick.txt`
//! and `server_obs_{on,off}_rounds_per_s` + `server_obs_overhead_pct` rows
//! (registry enabled vs disabled, same load) are merged into
//! `results/BENCH_quick.json`. Build with `--features obs-off` to compare
//! against recording compiled out entirely rather than switched off.
//!
//! `--crash-recover` runs a different job entirely: it spawns this binary
//! as a child that serves over a write-ahead log and `abort()`s mid-stream,
//! then recovers the directory, independently replays the full logged
//! history (both reconstruction paths), and restarts a server from it —
//! exiting nonzero on any divergence.
//!
//! `--shards S` serves the vertex-partitioned `ShardedEngine` instead of the
//! single-arena engine; every audit (from-scratch recompute, per-round
//! replay under `--verify`, subscriber reconstruction) runs unchanged — the
//! sharded server must serve byte-identical state.
//!
//! ```text
//! cargo run --release -p greedy_bench --bin serve_load -- --quick
//! cargo run --release -p greedy_bench --bin serve_load -- --shards 2 --verify
//! cargo run --release -p greedy_bench --bin serve_load -- --quick --crash-recover
//! cargo run --release -p greedy_bench --bin serve_load -- --scale small \
//!     --writers 4 --readers 4 --duration-secs 3
//! ```

use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use greedy_bench::{merge_quick_entries, Scale};
use greedy_engine::prelude::{CommitEngine, EdgeBatch, Engine, ServerSnapshot, ShardedEngine};
use greedy_graph::csr::Graph;
use greedy_graph::edge_list::Edge;
use greedy_graph::gen::random::random_graph;
use greedy_obs::Histogram;
use greedy_prims::random::hash64;
use greedy_server::prelude::*;
use greedy_server::protocol::read_frame;
use greedy_server::wal;

struct LoadConfig {
    n: usize,
    m: usize,
    writers: usize,
    readers: usize,
    /// Push subscribers reconstructing state purely from the delta stream.
    subscribers: usize,
    batch: usize,
    duration: Duration,
    seed: u64,
    /// Record every round and replay them all after shutdown.
    verify_rounds: bool,
    /// Run the 500k-vertex snapshot-publication microbenchmark.
    publish_bench: bool,
    max_batch_updates: usize,
    max_delay: Duration,
    /// Pause between reader queries. Readers are latency *samplers*; left
    /// unpaced (0) they are closed-loop saturators that — on small machines
    /// — time-share the engine thread off the CPU and measure scheduler
    /// contention instead of the service.
    reader_pace: Duration,
    /// Serve with a write-ahead log in this directory (and recover from it
    /// if it already holds a log).
    data_dir: Option<PathBuf>,
    /// Crash-recovery audit: spawn this binary as a child that aborts
    /// mid-stream, then recover its data dir, independently replay the full
    /// log, and restart a server from it — exiting nonzero on any
    /// divergence.
    crash_recover: bool,
    /// Internal: run as the aborting child of `--crash-recover`.
    crash_child: bool,
    /// Measure WAL commit cost (rounds/s + commit p99) with per-round fsync
    /// vs fsync off, and merge `server_wal_*` rows into BENCH_quick.json.
    wal_bench: bool,
    /// Server-side observability report: byte-compare the TCP and in-process
    /// expositions, print per-stage commit percentiles and the repair-rounds
    /// vs `log2(n)^2` check, validate zero-where-impossible metrics, dump
    /// the exposition to `results/metrics_quick.txt`, and measure the
    /// registry's overhead (`server_obs_*` rows).
    metrics_report: bool,
    /// Vertex-partition shards the served engine runs (1 = the single-arena
    /// engine; >1 = `ShardedEngine` — same served bytes, parallel shards).
    shards: usize,
    /// Shard-scaling microbenchmark: the same write load against S ∈
    /// {1, 2, 4} servers, merging `server_shard{S}_updates_per_s` rows.
    shard_bench: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            n: 100_000,
            m: 500_000,
            writers: 4,
            readers: 4,
            subscribers: 0,
            batch: 2_048,
            duration: Duration::from_secs(3),
            seed: 42,
            verify_rounds: false,
            publish_bench: false,
            max_batch_updates: 8_192,
            max_delay: Duration::from_millis(2),
            reader_pace: Duration::from_millis(1),
            data_dir: None,
            crash_recover: false,
            crash_child: false,
            wal_bench: false,
            metrics_report: false,
            shards: 1,
            shard_bench: false,
        }
    }
}

/// Bound on the per-subscriber audit tail: materialized snapshots are O(n)
/// each, so an unbounded per-round history would dominate memory on long
/// runs. The quick CI run commits far fewer rounds than this, so there the
/// tail covers every round.
const MAX_SUBSCRIBER_SAMPLES: usize = 1_024;

#[derive(Default)]
struct SubscriberRun {
    /// Rounds the replica advanced through (deltas folded + snapshot
    /// resyncs).
    advances: u64,
    resyncs: u64,
    /// Tail of reconstructed states, newest last.
    samples: std::collections::VecDeque<(u64, ServerSnapshot)>,
    final_state: Option<(u64, ServerSnapshot)>,
}

fn parse_args() -> LoadConfig {
    let mut cfg = LoadConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match arg.as_str() {
            "--scale" => {
                let v = take("--scale");
                let scale = Scale::parse(&v)
                    .unwrap_or_else(|| panic!("unknown scale '{v}' (tiny|small|medium|paper)"));
                (cfg.n, cfg.m) = scale.random_size();
            }
            "--writers" => cfg.writers = take("--writers").parse().expect("bad --writers"),
            "--readers" => cfg.readers = take("--readers").parse().expect("bad --readers"),
            "--subscribers" => {
                cfg.subscribers = take("--subscribers").parse().expect("bad --subscribers")
            }
            "--batch" => cfg.batch = take("--batch").parse().expect("bad --batch"),
            "--duration-secs" => {
                cfg.duration =
                    Duration::from_secs_f64(take("--duration-secs").parse().expect("bad duration"))
            }
            "--seed" => cfg.seed = take("--seed").parse().expect("bad --seed"),
            "--reader-pace-us" => {
                cfg.reader_pace =
                    Duration::from_micros(take("--reader-pace-us").parse().expect("bad pace"))
            }
            "--verify" => cfg.verify_rounds = true,
            "--publish-bench" => cfg.publish_bench = true,
            "--data-dir" => cfg.data_dir = Some(PathBuf::from(take("--data-dir"))),
            "--crash-recover" => cfg.crash_recover = true,
            "--crash-child" => cfg.crash_child = true,
            "--wal-bench" => cfg.wal_bench = true,
            "--metrics" => cfg.metrics_report = true,
            "--shards" => cfg.shards = take("--shards").parse().expect("bad --shards"),
            "--shard-bench" => cfg.shard_bench = true,
            // CI smoke mode: tiny graph, short run, full per-round audit —
            // finishes in a couple of seconds.
            "--quick" => {
                (cfg.n, cfg.m) = Scale::Tiny.random_size();
                cfg.writers = 2;
                cfg.readers = 2;
                cfg.subscribers = 2;
                cfg.batch = 512;
                cfg.duration = Duration::from_millis(1_500);
                cfg.verify_rounds = true;
                cfg.publish_bench = true;
                cfg.wal_bench = true;
                cfg.shard_bench = true;
                cfg.reader_pace = Duration::from_micros(300);
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --scale tiny|small|medium --writers N --readers M --subscribers K \
                     --batch B --duration-secs S --seed X --reader-pace-us U --verify \
                     --publish-bench --data-dir DIR --crash-recover --wal-bench --metrics \
                     --shards S --shard-bench --quick"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }
    assert!(cfg.writers >= 1, "need at least one writer");
    assert!(cfg.shards >= 1, "need at least one shard");
    cfg
}

fn main() {
    let cfg = parse_args();
    if cfg.crash_child {
        run_crash_child(&cfg);
    }
    if cfg.crash_recover {
        run_crash_recover(&cfg);
        return;
    }
    eprintln!(
        "== serve_load: n={} m={} writers={} readers={} subscribers={} batch={} duration={:?} \
         verify={} shards={}",
        cfg.n,
        cfg.m,
        cfg.writers,
        cfg.readers,
        cfg.subscribers,
        cfg.batch,
        cfg.duration,
        cfg.verify_rounds,
        cfg.shards
    );

    let base = random_graph(cfg.n, cfg.m, cfg.seed);
    // The load-and-audit phase is generic over the engine: the sharded and
    // single-arena servers serve the same bytes, so every audit below —
    // including the replay through a fresh *single-arena* engine under
    // `--verify` — applies unchanged to both.
    if cfg.shards > 1 {
        run_load(
            ShardedEngine::from_graph(&base, cfg.seed, cfg.shards),
            &base,
            &cfg,
        );
    } else {
        run_load(Engine::from_graph(&base, cfg.seed), &base, &cfg);
    }
}

fn run_load<E: CommitEngine>(engine: E, base: &Graph, cfg: &LoadConfig) {
    let handle = serve(
        engine,
        ServerConfig {
            rounds: RoundConfig {
                max_batch_updates: cfg.max_batch_updates,
                max_delay: cfg.max_delay,
            },
            record_rounds: cfg.verify_rounds,
            wal: cfg.data_dir.clone().map(WalConfig::durable),
            ..ServerConfig::default()
        },
    )
    .expect("failed to start server");
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();

    // Writers: alternate a fresh hashed insert batch with a deletion of the
    // previous one, so the graph size stays bounded and both update paths
    // (and both repair paths) run hot the whole time.
    let writers: Vec<_> = (0..cfg.writers)
        .map(|w| {
            let stop = stop.clone();
            let (n, batch, seed) = (cfg.n as u64, cfg.batch, cfg.seed);
            thread::spawn(move || -> (u64, u64) {
                let mut client = Client::connect(addr).expect("writer connect");
                let mut submitted = 0u64;
                let mut rounds_seen = 0u64;
                let mut last_round = 0u64;
                let mut prev: Vec<(u32, u32)> = Vec::new();
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let delta = if !prev.is_empty() && k % 2 == 1 {
                        let batch = std::mem::take(&mut prev);
                        submitted += batch.len() as u64;
                        client.delete_edges(&batch).expect("writer delete")
                    } else {
                        let fresh: Vec<(u32, u32)> = (0..batch)
                            .map(|i| {
                                let key = k * batch as u64 + i as u64;
                                (
                                    (hash64(seed ^ (w as u64) << 32, 2 * key) % n) as u32,
                                    (hash64(seed ^ (w as u64) << 32, 2 * key + 1) % n) as u32,
                                )
                            })
                            .collect();
                        submitted += fresh.len() as u64;
                        let delta = client.insert_edges(&fresh).expect("writer insert");
                        prev = fresh;
                        delta
                    };
                    if delta.round > last_round {
                        rounds_seen += 1;
                        last_round = delta.round;
                    }
                    k += 1;
                }
                (submitted, rounds_seen)
            })
        })
        .collect();

    // Readers: batched membership queries against the published snapshot,
    // individually timed into one shared lock-free histogram — constant
    // memory however long the run, and the percentiles come from the full
    // sample population instead of a sorted sample vector. (Built with
    // `--features obs-off` the histogram is compiled out and the latency
    // rows read 0 — that build exists to measure the no-recording baseline.)
    let query_hist = Arc::new(Histogram::new());
    let readers: Vec<_> = (0..cfg.readers)
        .map(|r| {
            let stop = stop.clone();
            let hist = query_hist.clone();
            let (n, seed, pace) = (cfg.n as u64, cfg.seed, cfg.reader_pace);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("reader connect");
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let vs: Vec<u32> = (0..32)
                        .map(|i| (hash64(seed ^ 0xBEEF ^ (r as u64), k * 32 + i) % n) as u32)
                        .collect();
                    let t = Instant::now();
                    if k.is_multiple_of(2) {
                        client.query_mis(&vs).expect("reader query");
                    } else {
                        client.query_matched(&vs).expect("reader query");
                    }
                    hist.record_duration_us(t.elapsed());
                    k += 1;
                    if !pace.is_zero() {
                        thread::sleep(pace);
                    }
                }
            })
        })
        .collect();

    // Subscribers: reconstruct the served state purely from the push-style
    // delta stream and keep a bounded tail of (round, snapshot) samples for
    // the post-run audit. They run until shutdown closes the feed, which
    // flushes the final round, so each one ends on the final committed
    // state.
    let subscribers: Vec<_> = (0..cfg.subscribers)
        .map(|_| {
            thread::spawn(move || -> SubscriberRun {
                let mut sub = Client::connect(addr)
                    .expect("subscriber connect")
                    .subscribe_fresh()
                    .expect("subscribe");
                // Fail loudly instead of hanging if the feed ever wedges.
                sub.set_timeout(Some(Duration::from_secs(60)))
                    .expect("subscriber timeout");
                let mut run = SubscriberRun::default();
                while let Some(state) = sub.next_round().expect("subscriber stream") {
                    run.advances += 1;
                    run.samples.push_back((state.round(), state.to_snapshot()));
                    if run.samples.len() > MAX_SUBSCRIBER_SAMPLES {
                        run.samples.pop_front();
                    }
                }
                run.resyncs = sub.resyncs();
                run.final_state = sub.state().map(|s| (s.round(), s.to_snapshot()));
                run
            })
        })
        .collect();

    thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let mut submitted = 0u64;
    for w in writers {
        let (s, _) = w.join().expect("writer panicked");
        submitted += s;
    }
    let elapsed = started.elapsed();
    for r in readers {
        r.join().expect("reader panicked");
    }
    let queries = query_hist.snapshot();

    // The observability report scrapes the live server, so it must run
    // after the load quiesces (no writer/reader traffic left to race the
    // byte-for-byte comparison) and before shutdown tears the socket down.
    if cfg.metrics_report {
        metrics_report(&handle, addr, cfg);
    }

    let report = handle.shutdown();
    // Subscriber streams end when shutdown closes the feed, so join them
    // only after `shutdown()` returns.
    let subscriber_runs: Vec<SubscriberRun> = subscribers
        .into_iter()
        .map(|s| s.join().expect("subscriber panicked"))
        .collect();
    let stats = *report.engine.stats();
    let effective = stats.edges_inserted + stats.edges_deleted;
    let rounds = stats.batches;
    let secs = elapsed.as_secs_f64();

    // Coherence audit: final served state == from-scratch greedy recompute
    // (through the single-arena engine, whatever engine served).
    let final_edges = report.engine.edge_list();
    let final_graph = Graph::from_edges(report.engine.num_vertices(), final_edges.edges());
    let scratch = Engine::from_graph(&final_graph, cfg.seed);
    assert_eq!(
        scratch.server_snapshot(),
        report.engine.server_snapshot(),
        "final served state diverges from a from-scratch recompute"
    );
    if cfg.verify_rounds {
        // Replay every recorded round and compare each published snapshot.
        // All mismatches are collected (not just the first), reported, and
        // turned into a nonzero exit so CI fails the job on any
        // non-identical replayed snapshot.
        let mut replay = Engine::from_graph(base, cfg.seed);
        let mut mismatched: Vec<u64> = Vec::new();
        for round in &report.rounds {
            replay.apply_batch(&EdgeBatch {
                insertions: round.insertions.clone(),
                deletions: round.deletions.clone(),
            });
            if replay.server_snapshot() != round.snapshot.state {
                mismatched.push(round.round);
            }
        }
        if mismatched.is_empty() {
            eprintln!(
                "   verified: all {} published snapshots byte-identical to replay",
                report.rounds.len()
            );
        } else {
            eprintln!(
                "   VERIFY FAILED: {} of {} published snapshots diverge from replay \
                 (rounds {:?})",
                mismatched.len(),
                report.rounds.len(),
                mismatched
            );
            std::process::exit(1);
        }
    }

    // Subscriber audit: every delta-reconstructed state a subscriber landed
    // on must be byte-identical to the snapshot the server published for
    // that round, and each subscriber must end on the final committed state
    // (shutdown flushes the feed, so the stream always reaches it).
    let final_snapshot = report.engine.server_snapshot();
    let by_round: std::collections::HashMap<u64, &ServerSnapshot> = report
        .rounds
        .iter()
        .map(|r| (r.round, &r.snapshot.state))
        .collect();
    let mut sub_divergence = false;
    for (i, run) in subscriber_runs.iter().enumerate() {
        match &run.final_state {
            Some((round, state)) if *state != final_snapshot => {
                eprintln!(
                    "   SUBSCRIBE FAILED: subscriber {i} ended on round {round} with a \
                     state diverging from the final committed state"
                );
                sub_divergence = true;
            }
            None if rounds > 0 => {
                eprintln!(
                    "   SUBSCRIBE FAILED: subscriber {i} reconstructed no state over \
                     {rounds} committed rounds"
                );
                sub_divergence = true;
            }
            _ => {}
        }
        let mut checked = 0usize;
        for (round, state) in &run.samples {
            if let Some(published) = by_round.get(round) {
                checked += 1;
                if state != *published {
                    eprintln!(
                        "   SUBSCRIBE FAILED: subscriber {i} diverges from the published \
                         snapshot at round {round}"
                    );
                    sub_divergence = true;
                }
            }
        }
        if cfg.verify_rounds && !sub_divergence {
            eprintln!(
                "   verified: subscriber {i} byte-identical on {checked} sampled rounds \
                 ({} advances, {} resyncs)",
                run.advances, run.resyncs
            );
        }
    }
    if sub_divergence {
        std::process::exit(1);
    }

    let pct = |p: f64| -> u64 { queries.quantile(p) };
    let rounds_per_s = rounds as f64 / secs;
    let submitted_per_s = submitted as f64 / secs;
    let effective_per_s = effective as f64 / secs;
    eprintln!("   elapsed            {secs:.3} s");
    eprintln!("   rounds             {rounds} ({rounds_per_s:.0}/s)");
    eprintln!(
        "   updates submitted  {submitted} ({submitted_per_s:.0}/s), effective {effective} \
         ({effective_per_s:.0}/s)"
    );
    eprintln!(
        "   queries            {} (p50 {} us, p90 {} us, p99 {} us)",
        queries.count,
        pct(0.50),
        pct(0.90),
        pct(0.99)
    );
    let deltas_folded: u64 = subscriber_runs
        .iter()
        .map(|r| r.advances.saturating_sub(r.resyncs))
        .sum();
    let resyncs_total: u64 = subscriber_runs.iter().map(|r| r.resyncs).sum();
    let subscribe_deltas_per_s = deltas_folded as f64 / secs;
    if cfg.subscribers > 0 {
        eprintln!(
            "   subscribers        {} (deltas folded {deltas_folded}, \
             {subscribe_deltas_per_s:.0}/s, resyncs {resyncs_total})",
            cfg.subscribers
        );
    }

    let clients = cfg.writers + cfg.readers;
    let mut rows = vec![
        quick_row(
            "server_rounds_per_s",
            clients,
            cfg.n,
            cfg.m,
            rounds_per_s,
            "rounds/s",
        ),
        quick_row(
            "server_updates_per_s",
            clients,
            cfg.n,
            cfg.m,
            submitted_per_s,
            "updates/s",
        ),
        quick_row(
            "server_query_p50_us",
            clients,
            cfg.n,
            cfg.m,
            pct(0.50) as f64,
            "us",
        ),
        quick_row(
            "server_query_p99_us",
            clients,
            cfg.n,
            cfg.m,
            pct(0.99) as f64,
            "us",
        ),
    ];
    if cfg.subscribers > 0 {
        rows.push(quick_row(
            "server_subscribe_deltas_per_s",
            cfg.subscribers,
            cfg.n,
            cfg.m,
            subscribe_deltas_per_s,
            "deltas/s",
        ));
        rows.push(quick_row(
            "server_subscribe_resyncs",
            cfg.subscribers,
            cfg.n,
            cfg.m,
            resyncs_total as f64,
            "resyncs",
        ));
    }
    if cfg.publish_bench {
        let (cow_us, full_us, pages, pb_n, pb_m) = publication_bench(cfg.seed);
        eprintln!(
            "   publish (n={pb_n})  cow {cow_us:.1} us ({pages} pages touched) vs full \
             rebuild {full_us:.1} us ({:.0}x)",
            full_us / cow_us.max(1e-9)
        );
        rows.push(quick_row(
            "server_publish_cow_us",
            1,
            pb_n,
            pb_m,
            cow_us,
            "us",
        ));
        rows.push(quick_row(
            "server_publish_full_us",
            1,
            pb_n,
            pb_m,
            full_us,
            "us",
        ));
    }
    // Exact name prefixes, not the bare "server_" family prefix: the
    // `server_wal_*` rows are produced (and merged) separately below, and a
    // blanket "server_" claim here would silently delete them on every run
    // that skips the WAL bench. Sharded runs keep these rows to themselves:
    // the generic `server_*` family tracks the single-arena engine run-over-
    // run, and a 2-shard verification smoke overwriting it would mix engine
    // types in one trajectory (shard throughput has its own `server_shard*`
    // family below).
    if cfg.shards <= 1 {
        merge_quick_entries(
            Path::new("results/BENCH_quick.json"),
            cfg.seed,
            &[
                "server_rounds",
                "server_updates",
                "server_query",
                "server_subscribe",
                "server_publish",
            ],
            "server",
            &rows,
        );
        eprintln!(
            "   merged {} server_* entries into results/BENCH_quick.json",
            rows.len()
        );
    }

    if cfg.wal_bench {
        let wal_rows = wal_bench(cfg.seed);
        merge_quick_entries(
            Path::new("results/BENCH_quick.json"),
            cfg.seed,
            &["server_wal_"],
            "server_wal",
            &wal_rows,
        );
        eprintln!(
            "   merged {} server_wal_* entries into results/BENCH_quick.json",
            wal_rows.len()
        );
    }

    if cfg.metrics_report {
        let obs_rows = obs_overhead_bench(cfg.seed);
        merge_quick_entries(
            Path::new("results/BENCH_quick.json"),
            cfg.seed,
            &["server_obs_"],
            "server_obs",
            &obs_rows,
        );
        eprintln!(
            "   merged {} server_obs_* entries into results/BENCH_quick.json",
            obs_rows.len()
        );
    }

    if cfg.shard_bench {
        let shard_rows = shard_bench(cfg.seed);
        merge_quick_entries(
            Path::new("results/BENCH_quick.json"),
            cfg.seed,
            &["server_shard"],
            "server_shard",
            &shard_rows,
        );
        eprintln!(
            "   merged {} server_shard* entries into results/BENCH_quick.json",
            shard_rows.len()
        );
    }
}

/// Shard-scaling microbenchmark: the same multi-writer update load against a
/// server running S ∈ {1, 2, 4} vertex-partition shards, reporting submitted
/// updates/s per shard count. On a ≥4-core box the 4-shard run should clear
/// 1.5× the 1-shard run; below that core count (or on a noisy box) the gap
/// is reported but only warned about — the rows land in the trajectory file
/// where `run_all --compare` flags regressions.
fn shard_bench(seed: u64) -> Vec<String> {
    const N: usize = 50_000;
    const M: usize = 200_000;
    const WRITERS: usize = 4;
    let run = |shards: usize| -> f64 {
        let base = random_graph(N, M, seed ^ 0x54A2);
        let handle = serve(
            ShardedEngine::from_graph(&base, seed, shards),
            ServerConfig {
                metrics: false,
                ..ServerConfig::default()
            },
        )
        .expect("shard bench serve");
        let addr = handle.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let stop = stop.clone();
                thread::spawn(move || -> u64 {
                    let mut client = Client::connect(addr).expect("shard bench connect");
                    let mut submitted = 0u64;
                    let mut prev: Vec<(u32, u32)> = Vec::new();
                    let mut k = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if !prev.is_empty() && k % 2 == 1 {
                            let batch = std::mem::take(&mut prev);
                            submitted += batch.len() as u64;
                            client.delete_edges(&batch).expect("shard bench delete");
                        } else {
                            let fresh: Vec<(u32, u32)> = (0..512u64)
                                .map(|i| {
                                    let key = k * 512 + i;
                                    (
                                        (hash64(seed ^ 0x54A3 ^ ((w as u64) << 48), 2 * key)
                                            % N as u64)
                                            as u32,
                                        (hash64(seed ^ 0x54A3 ^ ((w as u64) << 48), 2 * key + 1)
                                            % N as u64)
                                            as u32,
                                    )
                                })
                                .collect();
                            submitted += fresh.len() as u64;
                            client.insert_edges(&fresh).expect("shard bench insert");
                            prev = fresh;
                        }
                        k += 1;
                    }
                    submitted
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(700));
        stop.store(true, Ordering::Relaxed);
        let submitted: u64 = writers.into_iter().map(|w| w.join().expect("writer")).sum();
        let elapsed = started.elapsed().as_secs_f64();
        handle.shutdown();
        submitted as f64 / elapsed
    };
    let mut rows = Vec::new();
    let mut by_shards = [0.0f64; 3];
    for (i, shards) in [1usize, 2, 4].into_iter().enumerate() {
        let ups = run(shards);
        eprintln!("   shards={shards}          {ups:.0} updates/s");
        by_shards[i] = ups;
        rows.push(quick_row(
            &format!("server_shard{shards}_updates_per_s"),
            WRITERS,
            N,
            M,
            ups,
            "updates/s",
        ));
    }
    let cores = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let speedup = by_shards[2] / by_shards[0].max(1e-9);
    eprintln!("   shard speedup      4-shard vs 1-shard: {speedup:.2}x on {cores} cores");
    if cores >= 4 && speedup < 1.5 {
        // Warning only: quick-mode numbers from a shared box are too noisy
        // for a hard gate; the trajectory rows make a persistent regression
        // visible to `run_all --compare`.
        eprintln!(
            "   WARNING: 4-shard throughput below 1.5x the 1-shard run on a {cores}-core box"
        );
    }
    rows
}

/// The `--metrics` report against the still-running (but quiesced) server:
/// byte-compare the two exposition paths, print the per-stage commit table
/// and the repair-rounds-vs-`log2(n)^2` depth check, validate that metrics
/// which cannot be zero after this load are nonzero, and dump the full
/// exposition to `results/metrics_quick.txt`. Any failed check exits 1.
fn metrics_report<E: CommitEngine>(
    handle: &ServerHandle<E>,
    addr: std::net::SocketAddr,
    cfg: &LoadConfig,
) {
    eprintln!("== metrics report");

    // Acceptance check 1: the wire frame and the in-process dump must be the
    // same bytes. The server is quiesced and scraping touches no instrument,
    // so any difference is a real divergence between the two paths.
    let mut client = Client::connect(addr).expect("metrics connect");
    let over_wire = client.metrics().expect("metrics request");
    let in_process = handle.metrics_text();
    if over_wire != in_process {
        eprintln!(
            "   METRICS FAILED: TCP exposition ({} bytes) != in-process exposition ({} bytes)",
            over_wire.len(),
            in_process.len()
        );
        std::process::exit(1);
    }
    eprintln!(
        "   wire == in-process: {} bytes, byte-identical",
        over_wire.len()
    );

    // Dump the exposition for the CI artifact.
    let _ = std::fs::create_dir_all("results");
    let dump = Path::new("results/metrics_quick.txt");
    std::fs::write(dump, &in_process).expect("write metrics dump");
    eprintln!("   exposition dumped to {}", dump.display());

    // Acceptance check 2: a `Trace` frame over real TCP must carry exactly
    // `encode_round_traces` over the in-process flight recorder — one
    // canonical encoder, zero drift between the wire and the handle. (Under
    // obs-off both sides are the empty encoding, so the check still holds.)
    let mut raw = TcpStream::connect(addr).expect("trace connect");
    raw.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("trace timeout");
    let payload = Request::Trace { last_k: u64::MAX }.encode();
    raw.write_all(&(payload.len() as u32).to_le_bytes())
        .expect("trace frame length");
    raw.write_all(&payload).expect("trace frame body");
    let reply = read_frame(&mut raw)
        .expect("trace read")
        .expect("a trace frame");
    let expected = encode_round_traces(&handle.recent_rounds());
    if reply.first() != Some(&11) || reply[1..] != expected[..] {
        eprintln!(
            "   METRICS FAILED: TCP trace body ({} bytes) != in-process flight-recorder \
             encoding ({} bytes)",
            reply.len().saturating_sub(1),
            expected.len()
        );
        std::process::exit(1);
    }
    eprintln!(
        "   trace frame == flight recorder: {} rounds, byte-identical",
        handle.recent_rounds().len()
    );

    // Event-journal dump. The journal also rides the exposition above; the
    // standalone file is what CI uploads next to metrics_quick.txt.
    let events = Path::new("results/events_quick.txt");
    let journal = handle
        .metrics()
        .map(|m| m.journal().render_text())
        .unwrap_or_else(|| String::from("# event_journal disabled\n"));
    std::fs::write(events, &journal).expect("write events dump");
    eprintln!("   event journal dumped to {}", events.display());

    if !greedy_obs::ENABLED {
        eprintln!("   (recording compiled out via obs-off; skipping content checks)");
        return;
    }
    let metrics = handle
        .metrics()
        .expect("--metrics needs the server registry enabled");

    // Per-stage commit-latency percentile table, one row per pipeline stage.
    let registry = metrics.registry();
    eprintln!("   commit pipeline (us per round):");
    eprintln!(
        "     {:<10} {:>8} {:>8} {:>8} {:>8}",
        "stage", "p50", "p90", "p99", "max"
    );
    for (label, name) in [
        ("stage-wait", "server_commit_stage_wait_us"),
        ("apply", "server_commit_apply_us"),
        ("repair", "server_commit_repair_us"),
        ("wal", "server_commit_wal_us"),
        ("publish", "server_commit_publish_us"),
        ("feed", "server_commit_feed_us"),
        ("total", "server_commit_total_us"),
    ] {
        let s = registry.histogram(name).snapshot();
        eprintln!(
            "     {:<10} {:>8} {:>8} {:>8} {:>8}",
            label,
            s.quantile(0.50),
            s.quantile(0.90),
            s.quantile(0.99),
            s.max
        );
    }

    // The paper's depth observable: greedy MIS repair rounds per batch are
    // O(log^2 n) w.h.p. (Blelloch–Fineman–Shun), so the histogram's maximum
    // should sit well under log2(n)^2.
    let depth = metrics.repair_rounds_mis().snapshot();
    let bound = (cfg.n as f64).log2().powi(2);
    eprintln!("   repair rounds per batch (MIS):");
    for (lo, hi, count) in depth.nonzero_buckets() {
        if lo == hi {
            eprintln!("     {lo:>6}        x{count}");
        } else {
            eprintln!("     {lo:>6}-{hi:<6} x{count}");
        }
    }
    eprintln!(
        "   depth check: observed max {} vs log2(n)^2 = {:.0} (n={}, ratio {:.3})",
        depth.max,
        bound,
        cfg.n,
        depth.max as f64 / bound
    );
    if (depth.max as f64) > bound {
        eprintln!(
            "   METRICS FAILED: repair rounds exceeded the paper's O(log^2 n) scale \
             ({} > {:.0})",
            depth.max, bound
        );
        std::process::exit(1);
    }

    // Zero-where-impossible validation. The load phase committed rounds and
    // (with readers) answered queries, so these must all have samples.
    let value = |name: &str| -> u64 {
        in_process
            .lines()
            .find_map(|line| {
                let (n, v) = line.split_once(' ')?;
                (n == name).then(|| v.parse().ok())?
            })
            .unwrap_or_else(|| panic!("metric {name} missing from the exposition"))
    };
    let mut failures: Vec<String> = Vec::new();
    let rounds = value("server_rounds_committed_total");
    let mut require = |name: &str, why: &str| {
        if value(name) == 0 {
            failures.push(format!("{name} is 0 but {why}"));
        }
    };
    require("server_rounds_committed_total", "writers committed rounds");
    require("server_commit_total_us_count", "rounds were committed");
    require("server_commit_apply_us_count", "rounds were committed");
    require("server_repair_rounds_mis_count", "rounds were committed");
    require("server_updates_effective_total", "writers inserted edges");
    require("server_connections_total", "clients connected");
    if cfg.readers > 0 {
        require("server_queries_total", "readers issued queries");
        require("server_query_us_count", "queries were recorded");
        require("server_snapshot_age_us_count", "queries were recorded");
    }
    if cfg.subscribers > 0 {
        require("server_feed_resyncs_total", "fresh subscribers were seeded");
    }
    if cfg.data_dir.is_some() {
        require("server_wal_appends_total", "rounds were logged to the WAL");
    }
    // Engine internals, merged into the same exposition: after real traffic
    // the arena must exist, hold live vertices, have been built at least
    // once, and repair must have run every round.
    require("engine_rebuilds_total", "the arena was built at least once");
    require("engine_arena_capacity", "the arena holds segments");
    require("engine_arena_live", "live vertices occupy the arena");
    require(
        "engine_mis_repair_work_count",
        "MIS repair ran on every round",
    );
    // Sharded serving merges one engine registry per shard into this same
    // exposition (counters sum across shards): every shard's arena was built
    // at least once, so the merged rebuild counter must count every shard —
    // a shard whose instrument set never reported would break this floor.
    if cfg.shards > 1 && value("engine_rebuilds_total") < cfg.shards as u64 {
        failures.push(format!(
            "engine_rebuilds_total {} < {} shards: some shard's registry never \
             reached the merged exposition",
            value("engine_rebuilds_total"),
            cfg.shards
        ));
    }
    if value("server_commit_total_us_count") != rounds {
        failures.push(format!(
            "server_commit_total_us_count {} != server_rounds_committed_total {rounds}",
            value("server_commit_total_us_count")
        ));
    }
    if failures.is_empty() {
        eprintln!("   validation: all required metrics present and nonzero");
    } else {
        for f in &failures {
            eprintln!("   METRICS FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// What does keeping the registry cost? The same single-writer load served
/// twice — once with metrics on, once off — reporting committed rounds/s
/// for each and the relative gap. Recording is a handful of relaxed atomics
/// per round, so the gap should be noise; the row exists so a regression
/// that makes it real is visible in the trajectory. (Build with `--features
/// obs-off` to compare against recording compiled out rather than switched
/// off at runtime.)
fn obs_overhead_bench(seed: u64) -> Vec<String> {
    const N: usize = 10_000;
    const M: usize = 40_000;
    let run = |metrics: bool| -> f64 {
        let base = random_graph(N, M, seed ^ 0x0B5);
        let handle = serve(
            Engine::from_graph(&base, seed),
            ServerConfig {
                metrics,
                ..ServerConfig::default()
            },
        )
        .expect("obs bench serve");
        let mut client = Client::connect(handle.addr()).expect("obs bench connect");
        let mut prev: Vec<(u32, u32)> = Vec::new();
        let mut k = 0u64;
        let started = Instant::now();
        while started.elapsed() < Duration::from_millis(700) {
            if !prev.is_empty() && k % 2 == 1 {
                let batch = std::mem::take(&mut prev);
                client.delete_edges(&batch).expect("obs bench delete");
            } else {
                let fresh: Vec<(u32, u32)> = (0..64u64)
                    .map(|i| {
                        let key = k * 64 + i;
                        (
                            (hash64(seed ^ 0x0B50, 2 * key) % N as u64) as u32,
                            (hash64(seed ^ 0x0B50, 2 * key + 1) % N as u64) as u32,
                        )
                    })
                    .collect();
                client.insert_edges(&fresh).expect("obs bench insert");
                prev = fresh;
            }
            k += 1;
        }
        let elapsed = started.elapsed().as_secs_f64();
        let report = handle.shutdown();
        report.engine.stats().batches as f64 / elapsed
    };
    let on_rps = run(true);
    let off_rps = run(false);
    let overhead_pct = (1.0 - on_rps / off_rps.max(1e-9)) * 100.0;
    eprintln!(
        "   obs overhead       registry on {on_rps:.0} rounds/s vs off {off_rps:.0} rounds/s \
         ({overhead_pct:+.1}%)"
    );
    if overhead_pct > 10.0 {
        // Warning only: a 700 ms A/B on a loaded CI box is too noisy for a
        // hard gate, but the trajectory row makes a persistent regression
        // visible.
        eprintln!("   WARNING: metrics overhead above 10% — check the trajectory");
    }
    vec![
        quick_row("server_obs_on_rounds_per_s", 1, N, M, on_rps, "rounds/s"),
        quick_row("server_obs_off_rounds_per_s", 1, N, M, off_rps, "rounds/s"),
        quick_row("server_obs_overhead_pct", 1, N, M, overhead_pct, "%"),
    ]
}

/// WAL commit-cost microbenchmark: the same single-writer load served twice
/// over a write-ahead log, once with per-round fsync and once with fsync
/// off, reporting committed rounds/s and the p99 client-observed commit
/// latency for each. Everything but the fsync policy is identical, so the
/// gap between the two runs is the honest price of the durability
/// guarantee ("no round is acked before it is on disk").
fn wal_bench(seed: u64) -> Vec<String> {
    const N: usize = 10_000;
    const M: usize = 40_000;
    let run = |fsync: FsyncPolicy, tag: &str| -> (f64, f64) {
        let dir = std::env::temp_dir().join(format!(
            "greedy_serve_load_walbench_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let base = random_graph(N, M, seed ^ 0x3A1);
        let handle = serve(
            Engine::from_graph(&base, seed),
            ServerConfig {
                wal: Some(WalConfig {
                    fsync,
                    ..WalConfig::durable(dir.clone())
                }),
                ..ServerConfig::default()
            },
        )
        .expect("wal bench serve");
        let mut client = Client::connect(handle.addr()).expect("wal bench connect");
        let mut latencies_us: Vec<u64> = Vec::new();
        let mut prev: Vec<(u32, u32)> = Vec::new();
        let mut k = 0u64;
        let started = Instant::now();
        while started.elapsed() < Duration::from_millis(700) {
            let timed = if !prev.is_empty() && k % 2 == 1 {
                let batch = std::mem::take(&mut prev);
                let t = Instant::now();
                client.delete_edges(&batch).expect("wal bench delete");
                t.elapsed()
            } else {
                let fresh: Vec<(u32, u32)> = (0..64u64)
                    .map(|i| {
                        let key = k * 64 + i;
                        (
                            (hash64(seed ^ 0x11AD, 2 * key) % N as u64) as u32,
                            (hash64(seed ^ 0x11AD, 2 * key + 1) % N as u64) as u32,
                        )
                    })
                    .collect();
                let t = Instant::now();
                client.insert_edges(&fresh).expect("wal bench insert");
                prev = fresh;
                t.elapsed()
            };
            latencies_us.push(timed.as_micros() as u64);
            k += 1;
        }
        let elapsed = started.elapsed().as_secs_f64();
        let report = handle.shutdown();
        let rounds = report.engine.stats().batches;
        let _ = std::fs::remove_dir_all(&dir);
        latencies_us.sort_unstable();
        let p99 = if latencies_us.is_empty() {
            0
        } else {
            latencies_us[((latencies_us.len() - 1) as f64 * 0.99).round() as usize]
        };
        (rounds as f64 / elapsed, p99 as f64)
    };
    let (sync_rps, sync_p99) = run(FsyncPolicy::PerRound, "sync");
    let (off_rps, off_p99) = run(FsyncPolicy::Off, "off");
    eprintln!(
        "   wal (n={N})       fsync per-round {sync_rps:.0} rounds/s (commit p99 {sync_p99:.0} us) \
         vs off {off_rps:.0} rounds/s (commit p99 {off_p99:.0} us)"
    );
    vec![
        quick_row(
            "server_wal_sync_rounds_per_s",
            1,
            N,
            M,
            sync_rps,
            "rounds/s",
        ),
        quick_row("server_wal_sync_commit_p99_us", 1, N, M, sync_p99, "us"),
        quick_row("server_wal_off_rounds_per_s", 1, N, M, off_rps, "rounds/s"),
        quick_row("server_wal_off_commit_p99_us", 1, N, M, off_p99, "us"),
    ]
}

/// The aborting child of `--crash-recover`: serves with a per-round-fsync
/// WAL in `--data-dir`, lets two writers hammer it for a while, then pulls
/// the plug with `abort()` — no shutdown, no final checkpoint, no log
/// close. Everything the parent finds on disk afterwards is exactly what a
/// crash leaves behind.
fn run_crash_child(cfg: &LoadConfig) -> ! {
    let dir = cfg
        .data_dir
        .clone()
        .expect("--crash-child requires --data-dir");
    let wal_cfg = WalConfig {
        fsync: FsyncPolicy::PerRound,
        segment_rounds: 64,
        checkpoint_every: 0,
        // Keep every segment so the parent can audit the FULL history from
        // the base checkpoint, not just the recovery suffix.
        retain_all: true,
        dir,
    };
    let base = random_graph(5_000, 10_000, cfg.seed);
    let handle = serve(
        Engine::from_graph(&base, cfg.seed),
        ServerConfig {
            wal: Some(wal_cfg),
            ..ServerConfig::default()
        },
    )
    .expect("crash child serve");
    let addr = handle.addr();
    for w in 0..2u64 {
        let seed = cfg.seed;
        thread::spawn(move || {
            let mut client = Client::connect(addr).expect("child writer connect");
            let mut prev: Vec<(u32, u32)> = Vec::new();
            let mut k = 0u64;
            loop {
                if !prev.is_empty() && k % 2 == 1 {
                    let batch = std::mem::take(&mut prev);
                    let _ = client.delete_edges(&batch);
                } else {
                    let fresh: Vec<(u32, u32)> = (0..256u64)
                        .map(|i| {
                            let key = k * 256 + i;
                            (
                                (hash64(seed ^ 0xC4A5 ^ (w << 48), 2 * key) % 5_000) as u32,
                                (hash64(seed ^ 0xC4A5 ^ (w << 48), 2 * key + 1) % 5_000) as u32,
                            )
                        })
                        .collect();
                    let _ = client.insert_edges(&fresh);
                    prev = fresh;
                }
                k += 1;
            }
        });
    }
    thread::sleep(Duration::from_millis(600));
    std::process::abort();
}

/// Crash-recovery audit: spawn this binary as a child that serves with a
/// WAL and aborts mid-stream, then (1) recover the directory, (2)
/// independently replay the FULL logged history from the base checkpoint —
/// batch-replay through a fresh engine AND delta-fold through a replica —
/// and require byte-identical agreement with the recovered state, and (3)
/// restart a real server from the directory and check it serves that state
/// and continues the round numbering. Any divergence panics, so the
/// process exits nonzero and CI fails.
fn run_crash_recover(cfg: &LoadConfig) {
    let dir = cfg.data_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("greedy_serve_load_crash_{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!("== serve_load --crash-recover: data dir {}", dir.display());

    let exe = std::env::current_exe().expect("current_exe");
    let status = std::process::Command::new(exe)
        .arg("--crash-child")
        .arg("--data-dir")
        .arg(&dir)
        .arg("--seed")
        .arg(cfg.seed.to_string())
        .status()
        .expect("spawn crash child");
    assert!(
        !status.success(),
        "the child is supposed to abort mid-stream, but exited cleanly ({status})"
    );

    let recovered = wal::recover(&dir)
        .expect("recovery must not error on a crashed directory")
        .expect("the crashed child must have left a log behind");
    assert!(
        recovered.round > 0,
        "the child aborted before committing a single round; nothing was audited"
    );
    assert_eq!(
        recovered.checkpoint_round, 0,
        "the child never checkpoints, so recovery must come from the base checkpoint"
    );
    eprintln!(
        "   recovered round {} ({} records replayed{})",
        recovered.round,
        recovered.replayed,
        if recovered.tail_truncated {
            ", torn tail truncated"
        } else {
            ""
        }
    );

    // Independent audit: rebuild from the base checkpoint and the raw log,
    // through BOTH reconstruction paths, and compare byte-for-byte.
    let ckpt = wal::load_checkpoint(&wal::checkpoint_file(&dir, 0)).expect("base checkpoint");
    let mut replay = Engine::from_graph(
        &Graph::from_edges(ckpt.num_vertices, &ckpt.edges),
        ckpt.seed,
    );
    let mut replica = ckpt.replica;
    let (records, _torn) = wal::read_log_records(&dir, 0).expect("read raw log");
    let mut last = 0u64;
    for rec in records.iter().take_while(|r| r.round <= recovered.round) {
        replay.apply_batch(&EdgeBatch {
            insertions: rec.insertions.clone(),
            deletions: rec.deletions.clone(),
        });
        replica.fold(&rec.delta).expect("logged delta must fold");
        last = rec.round;
    }
    assert_eq!(
        last, recovered.round,
        "the raw log must reach the recovered round"
    );
    let audited = replay.server_snapshot();
    assert_eq!(
        audited,
        recovered.engine.server_snapshot(),
        "recovered state diverges from an independent full-history batch replay"
    );
    assert_eq!(
        replica.to_snapshot(),
        audited,
        "delta-folded replica diverges from the batch-replayed engine"
    );
    eprintln!("   audit: full-history replay (batches AND deltas) byte-identical at round {last}");

    // Restart a real server from the directory. The engine argument is a
    // decoy: the directory is authoritative.
    let handle = serve(
        Engine::new(1, cfg.seed),
        ServerConfig {
            wal: Some(WalConfig::durable(dir.clone())),
            ..ServerConfig::default()
        },
    )
    .expect("restart from the recovered directory");
    assert_eq!(handle.committed_round(), recovered.round);
    assert_eq!(
        handle.snapshot().state,
        audited,
        "restarted server does not serve the recovered state"
    );
    let mut client = Client::connect(handle.addr()).expect("connect to restarted server");
    let delta = client
        .insert_edges(&[(1, 2)])
        .expect("post-recovery insert");
    assert_eq!(
        delta.round,
        recovered.round + 1,
        "round ids must continue after recovery, not restart"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "   crash-recovery audit passed: state byte-identical, rounds resumed at {}",
        recovered.round + 1
    );
}

/// What a round's snapshot publication costs at 500k vertices: the
/// copy-on-write export (`server_snapshot` — O(pages) refcount bumps, with
/// only the round's touched pages freshly repacked beforehand) versus the
/// from-scratch O(n) repack (`rebuild_server_snapshot`) the serving layer
/// previously paid on every commit. A small batch is applied first so the
/// touched-page count reflects a realistic round.
fn publication_bench(seed: u64) -> (f64, f64, usize, usize, usize) {
    const N: usize = 500_000;
    const M: usize = 500_000;
    let base = random_graph(N, M, seed ^ 0x51AB);
    let mut engine = Engine::from_graph(&base, seed);
    let insertions: Vec<Edge> = (0..64u64)
        .map(|i| {
            Edge::new(
                (hash64(seed ^ 0x9B1D, 2 * i) % N as u64) as u32,
                (hash64(seed ^ 0x9B1D, 2 * i + 1) % N as u64) as u32,
            )
        })
        .collect();
    engine.apply_batch(&EdgeBatch {
        insertions,
        deletions: Vec::new(),
    });
    let pages = engine.last_publication_pages();
    let reps = 32u32;
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(engine.server_snapshot());
    }
    let cow_us = t.elapsed().as_secs_f64() * 1e6 / f64::from(reps);
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(engine.rebuild_server_snapshot());
    }
    let full_us = t.elapsed().as_secs_f64() * 1e6 / f64::from(reps);
    (cow_us, full_us, pages, N, M)
}

/// One trajectory row. Unlike `run_all`'s timing rows (whose metric key is
/// `"seconds"`), server rows carry a rate or latency, so the metric key is
/// `"value"` with an explicit `"unit"`.
fn quick_row(name: &str, clients: usize, n: usize, m: usize, value: f64, unit: &str) -> String {
    format!(
        "    {{\"name\": \"{name}\", \"threads\": {clients}, \"n\": {n}, \"m\": {m}, \
         \"value\": {value:.3}, \"unit\": \"{unit}\"}}"
    )
}
