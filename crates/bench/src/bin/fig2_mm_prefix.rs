//! Experiment E2 — Figure 2 of the paper.
//!
//! Sweeps the prefix size of the prefix-based greedy maximal matching and
//! reports, for each prefix-size/input-size ratio:
//!   * total work / M        (Figure 2a / 2d)
//!   * number of rounds / M  (Figure 2b / 2e)
//!   * running time / M      (Figure 2c / 2f)
//!
//! `--graph random` regenerates Figure 2(a–c); `--graph rmat` regenerates
//! Figure 2(d–f).

use greedy_bench::{
    prefix_fraction_sweep, print_csv_header, secs, time_best_of, ExperimentGraph, HarnessConfig,
};
use greedy_core::matching::prefix::prefix_matching_with_stats;
use greedy_core::matching::sequential::sequential_matching;
use greedy_core::mis::prefix::PrefixPolicy;
use greedy_core::mis::verify::verify_same_set;
use greedy_core::ordering::random_edge_permutation;

fn main() {
    let cfg = HarnessConfig::from_args();
    let input = ExperimentGraph::generate(cfg.kind, cfg.scale, cfg.seed);
    let m = input.num_edges();
    let pi = random_edge_permutation(m, cfg.seed.wrapping_add(2));

    if !cfg.csv_only {
        eprintln!(
            "# Figure 2 ({}) — MM prefix sweep: n = {}, m = {}, seed = {}",
            input.kind.name(),
            input.num_vertices(),
            m,
            cfg.seed
        );
    }
    print_csv_header(&[
        "graph",
        "prefix_fraction",
        "prefix_size",
        "work_per_m",
        "rounds_per_m",
        "time_seconds",
        "time_ns_per_edge",
        "matching_size",
    ]);

    let reference = sequential_matching(&input.edges, &pi);

    for fraction in prefix_fraction_sweep() {
        let prefix_size = ((fraction * m as f64).ceil() as usize).clamp(1, m.max(1));
        let policy = PrefixPolicy::Fixed(prefix_size);
        let (elapsed, (mm, stats)) = time_best_of(cfg.reps, || {
            prefix_matching_with_stats(&input.edges, &pi, policy)
        });
        assert!(
            verify_same_set(&mm, &reference),
            "prefix-based MM diverged from the sequential result at fraction {fraction}"
        );
        println!(
            "{},{:e},{},{:.4},{:.6e},{:.6},{:.1},{}",
            input.kind.name(),
            fraction,
            prefix_size,
            stats.work_per_element(m),
            stats.rounds_per_element(m),
            secs(elapsed),
            secs(elapsed) * 1e9 / m as f64,
            mm.len()
        );
    }
}
