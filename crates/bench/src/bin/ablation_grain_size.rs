//! Ablation A2 — where parallelism starts to pay off inside a prefix.
//!
//! The paper notes a bump in the running-time-vs-prefix-size curves where its
//! implementation's inner loop switches from sequential to parallel execution
//! (grain size 256). This ablation isolates that effect: for each prefix size
//! in the transition region it measures the prefix-based MIS once inside a
//! single-threaded rayon pool (all loop overhead, no parallelism) and once in
//! the full pool, reporting the ratio. Below the crossover the single-thread
//! run wins (scheduling overhead dominates the tiny prefixes); above it the
//! parallel run wins.

use greedy_bench::{
    print_csv_header, run_on_threads, secs, time_best_of, ExperimentGraph, HarnessConfig,
};
use greedy_core::mis::prefix::{prefix_mis, PrefixPolicy};
use greedy_core::ordering::random_permutation;

fn main() {
    let cfg = HarnessConfig::from_args();
    let input = ExperimentGraph::generate(cfg.kind, cfg.scale, cfg.seed);
    let n = input.num_vertices();
    let pi = random_permutation(n, cfg.seed.wrapping_add(1));
    let max_threads = *cfg.threads.iter().max().unwrap_or(&1);

    if !cfg.csv_only {
        eprintln!(
            "# Ablation A2 ({}) — sequential/parallel crossover inside prefixes: n = {}, m = {}, threads = {}",
            input.kind.name(),
            n,
            input.num_edges(),
            max_threads
        );
    }
    print_csv_header(&[
        "graph",
        "prefix_size",
        "one_thread_seconds",
        "full_pool_seconds",
        "parallel_speedup",
    ]);

    // Prefix sizes spanning the region where per-round parallel overhead
    // matters: from well below a typical grain size to well above it.
    for prefix_size in [16usize, 64, 256, 1_024, 4_096, 16_384, 65_536] {
        let prefix_size = prefix_size.min(n.max(1));
        let policy = PrefixPolicy::Fixed(prefix_size);
        let one = run_on_threads(1, || {
            time_best_of(cfg.reps, || prefix_mis(&input.graph, &pi, policy)).0
        });
        let full = run_on_threads(max_threads, || {
            time_best_of(cfg.reps, || prefix_mis(&input.graph, &pi, policy)).0
        });
        println!(
            "{},{},{:.6},{:.6},{:.3}",
            input.kind.name(),
            prefix_size,
            secs(one),
            secs(full),
            secs(one) / secs(full).max(1e-12)
        );
    }
}
