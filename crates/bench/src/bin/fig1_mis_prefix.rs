//! Experiment E1 — Figure 1 of the paper.
//!
//! Sweeps the prefix size of the prefix-based greedy MIS and reports, for
//! each prefix-size/input-size ratio:
//!   * total work / N        (Figure 1a / 1d)
//!   * number of rounds / N  (Figure 1b / 1e)
//!   * running time / N      (Figure 1c / 1f, here reported in ns per vertex)
//!
//! `--graph random` regenerates Figure 1(a–c); `--graph rmat` regenerates
//! Figure 1(d–f). The expected shapes: work/N rises from 1 toward ~2–3,
//! rounds/N falls from 1 toward ~1/N, and time/N is U-shaped with an interior
//! optimum.

use greedy_bench::{
    prefix_fraction_sweep, print_csv_header, secs, time_best_of, ExperimentGraph, HarnessConfig,
};
use greedy_core::mis::prefix::{prefix_mis_with_stats, PrefixPolicy};
use greedy_core::mis::sequential::sequential_mis;
use greedy_core::mis::verify::verify_same_set;
use greedy_core::ordering::random_permutation;

fn main() {
    let cfg = HarnessConfig::from_args();
    let input = ExperimentGraph::generate(cfg.kind, cfg.scale, cfg.seed);
    let n = input.num_vertices();
    let pi = random_permutation(n, cfg.seed.wrapping_add(1));

    if !cfg.csv_only {
        eprintln!(
            "# Figure 1 ({}) — MIS prefix sweep: n = {}, m = {}, seed = {}",
            input.kind.name(),
            n,
            input.num_edges(),
            cfg.seed
        );
    }
    print_csv_header(&[
        "graph",
        "prefix_fraction",
        "prefix_size",
        "work_per_n",
        "rounds_per_n",
        "time_seconds",
        "time_ns_per_vertex",
        "mis_size",
    ]);

    let reference = sequential_mis(&input.graph, &pi);

    for fraction in prefix_fraction_sweep() {
        let prefix_size = ((fraction * n as f64).ceil() as usize).clamp(1, n.max(1));
        let policy = PrefixPolicy::Fixed(prefix_size);
        let (elapsed, (mis, stats)) = time_best_of(cfg.reps, || {
            prefix_mis_with_stats(&input.graph, &pi, policy)
        });
        assert!(
            verify_same_set(&mis, &reference),
            "prefix-based MIS diverged from the sequential result at fraction {fraction}"
        );
        println!(
            "{},{:e},{},{:.4},{:.6e},{:.6},{:.1},{}",
            input.kind.name(),
            fraction,
            prefix_size,
            stats.work_per_element(n),
            stats.rounds_per_element(n),
            secs(elapsed),
            secs(elapsed) * 1e9 / n as f64,
            mis.len()
        );
    }
}
