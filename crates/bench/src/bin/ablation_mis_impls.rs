//! Ablation A1 — comparing the MIS implementations of Section 4.
//!
//! For the same input and the same priority order, measures time, work, and
//! rounds for: the sequential greedy algorithm (Algorithm 1), the naïve
//! synchronous-rounds algorithm (Algorithm 2 as written), the prefix-based
//! algorithm (Algorithm 3, the paper's experimental implementation), the
//! linear-work root-set algorithm (Lemma 4.2), and Luby's Algorithm A.
//!
//! All but Luby must return the identical vertex set; the ablation quantifies
//! what each implementation strategy costs or saves.

use greedy_bench::{print_csv_header, secs, time_best_of, ExperimentGraph, HarnessConfig};
use greedy_core::mis::luby::luby_mis_with_stats;
use greedy_core::mis::prefix::{prefix_mis_with_stats, PrefixPolicy};
use greedy_core::mis::rootset::rootset_mis_with_stats;
use greedy_core::mis::rounds::rounds_mis_with_stats;
use greedy_core::mis::sequential::sequential_mis_with_stats;
use greedy_core::ordering::random_permutation;
use greedy_core::stats::WorkStats;
use greedy_reservations::mis::reservation_mis_with_granularity;

fn main() {
    let cfg = HarnessConfig::from_args();
    let input = ExperimentGraph::generate(cfg.kind, cfg.scale, cfg.seed);
    let n = input.num_vertices();
    let pi = random_permutation(n, cfg.seed.wrapping_add(1));

    if !cfg.csv_only {
        eprintln!(
            "# Ablation A1 ({}) — MIS implementation comparison: n = {}, m = {}",
            input.kind.name(),
            n,
            input.num_edges()
        );
    }
    print_csv_header(&[
        "implementation",
        "time_seconds",
        "rounds",
        "steps",
        "vertex_work",
        "edge_work",
        "mis_size",
        "same_as_sequential",
    ]);

    let (seq_time, (seq_mis, seq_stats)) =
        time_best_of(cfg.reps, || sequential_mis_with_stats(&input.graph, &pi));
    let report = |name: &str, time: f64, stats: WorkStats, mis: &[u32]| {
        println!(
            "{},{:.6},{},{},{},{},{},{}",
            name,
            time,
            stats.rounds,
            stats.steps,
            stats.vertex_work,
            stats.edge_work,
            mis.len(),
            mis == seq_mis
        );
    };
    report("sequential", secs(seq_time), seq_stats, &seq_mis);

    let (t, (mis, stats)) = time_best_of(cfg.reps, || rounds_mis_with_stats(&input.graph, &pi));
    report("rounds_naive", secs(t), stats, &mis);

    for (label, policy) in [
        ("prefix_0.2%", PrefixPolicy::FractionOfInput(0.002)),
        ("prefix_2%", PrefixPolicy::FractionOfInput(0.02)),
        ("prefix_100%", PrefixPolicy::FractionOfInput(1.0)),
    ] {
        let (t, (mis, stats)) = time_best_of(cfg.reps, || {
            prefix_mis_with_stats(&input.graph, &pi, policy)
        });
        report(label, secs(t), stats, &mis);
    }

    let (t, (mis, stats)) = time_best_of(cfg.reps, || rootset_mis_with_stats(&input.graph, &pi));
    report("rootset_linear_work", secs(t), stats, &mis);

    let (t, (mis, stats)) = time_best_of(cfg.reps, || {
        reservation_mis_with_granularity(&input.graph, &pi, (n / 50).max(1024))
    });
    report("deterministic_reservations", secs(t), stats, &mis);

    let (t, (mis, stats)) = time_best_of(cfg.reps, || luby_mis_with_stats(&input.graph, cfg.seed));
    report("luby", secs(t), stats, &mis);
}
