//! Experiment E4 — Figure 4 of the paper.
//!
//! Running time versus thread count for the prefix-based maximal matching
//! against the sequential greedy matching (flat line).
//!
//! Expected shape (paper, 32 cores): the prefix-based algorithm overtakes the
//! sequential one at around 4 threads and reaches 21–24× speedup.

use greedy_bench::{
    print_csv_header, run_on_threads, secs, time_best_of, ExperimentGraph, HarnessConfig,
};
use greedy_core::matching::prefix::prefix_matching;
use greedy_core::matching::sequential::sequential_matching;
use greedy_core::matching::verify::verify_maximal_matching;
use greedy_core::mis::prefix::PrefixPolicy;
use greedy_core::ordering::random_edge_permutation;

fn main() {
    let cfg = HarnessConfig::from_args();
    let input = ExperimentGraph::generate(cfg.kind, cfg.scale, cfg.seed);
    let m = input.num_edges();
    let pi = random_edge_permutation(m, cfg.seed.wrapping_add(2));
    let policy = PrefixPolicy::FractionOfInput(0.02);

    if !cfg.csv_only {
        eprintln!(
            "# Figure 4 ({}) — MM time vs threads: n = {}, m = {}, prefix = 2% of m",
            input.kind.name(),
            input.num_vertices(),
            m
        );
    }
    print_csv_header(&["graph", "threads", "prefix_based_seconds", "serial_seconds"]);

    let (serial_time, serial_mm) =
        time_best_of(cfg.reps, || sequential_matching(&input.edges, &pi));
    assert!(verify_maximal_matching(&input.edges, &serial_mm));

    for &threads in &cfg.threads {
        let prefix_time = run_on_threads(threads, || {
            let (pt, pmm) = time_best_of(cfg.reps, || prefix_matching(&input.edges, &pi, policy));
            assert_eq!(
                pmm, serial_mm,
                "prefix-based MM must equal the serial result"
            );
            pt
        });
        println!(
            "{},{},{:.6},{:.6}",
            input.kind.name(),
            threads,
            secs(prefix_time),
            secs(serial_time)
        );
    }
}
