//! Experiment E3 — Figure 3 of the paper.
//!
//! Running time versus thread count for three MIS implementations:
//! the prefix-based deterministic parallel greedy algorithm, Luby's
//! Algorithm A, and the optimized sequential greedy algorithm (flat line).
//!
//! Expected shape (paper, 32 cores): the prefix-based algorithm is 4–8×
//! faster than Luby at every thread count because it does less work, beats
//! the sequential algorithm with only a couple of threads, and scales to
//! 14–17× speedup; Luby needs many more threads to catch the sequential
//! implementation.

use greedy_bench::{
    print_csv_header, run_on_threads, secs, time_best_of, ExperimentGraph, HarnessConfig,
};
use greedy_core::mis::luby::luby_mis;
use greedy_core::mis::prefix::{prefix_mis, PrefixPolicy};
use greedy_core::mis::sequential::sequential_mis;
use greedy_core::mis::verify::verify_mis;
use greedy_core::ordering::random_permutation;

fn main() {
    let cfg = HarnessConfig::from_args();
    let input = ExperimentGraph::generate(cfg.kind, cfg.scale, cfg.seed);
    let n = input.num_vertices();
    let pi = random_permutation(n, cfg.seed.wrapping_add(1));
    // The near-optimal prefix fraction found by the Figure 1 sweep.
    let policy = PrefixPolicy::FractionOfInput(0.02);

    if !cfg.csv_only {
        eprintln!(
            "# Figure 3 ({}) — MIS time vs threads: n = {}, m = {}, prefix = 2% of n",
            input.kind.name(),
            n,
            input.num_edges()
        );
    }
    print_csv_header(&[
        "graph",
        "threads",
        "prefix_based_seconds",
        "luby_seconds",
        "serial_seconds",
    ]);

    // The serial baseline does not depend on the pool size; measure it once.
    let (serial_time, serial_mis) = time_best_of(cfg.reps, || sequential_mis(&input.graph, &pi));
    assert!(verify_mis(&input.graph, &serial_mis));

    for &threads in &cfg.threads {
        let (prefix_time, luby_time) = run_on_threads(threads, || {
            let (pt, pmis) = time_best_of(cfg.reps, || prefix_mis(&input.graph, &pi, policy));
            assert_eq!(
                pmis, serial_mis,
                "prefix-based MIS must equal the serial result"
            );
            let (lt, lmis) = time_best_of(cfg.reps, || luby_mis(&input.graph, cfg.seed));
            assert!(verify_mis(&input.graph, &lmis));
            (pt, lt)
        });
        println!(
            "{},{},{:.6},{:.6},{:.6}",
            input.kind.name(),
            threads,
            secs(prefix_time),
            secs(luby_time),
            secs(serial_time)
        );
    }
}
