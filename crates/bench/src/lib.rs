//! # greedy-bench
//!
//! Shared harness for the experiment binaries that regenerate every figure of
//! the SPAA 2012 paper (Figures 1–4) plus the theory check and ablations
//! listed in `DESIGN.md`.
//!
//! The harness provides:
//! * the two paper inputs at configurable scale ([`ExperimentGraph`]): the
//!   sparse uniform random graph and the rMat graph;
//! * command-line parsing shared by all binaries ([`HarnessConfig`]);
//! * timing helpers ([`time_best_of`]) and thread-pool control
//!   ([`run_on_threads`]);
//! * CSV emission helpers so each binary prints both a human-readable table
//!   and machine-readable rows.
//!
//! Scales: the paper uses n = 10⁷ / m = 5·10⁷ (random) and n = 2²⁴ /
//! m = 5·10⁷ (rMat). Both axes of Figures 1 and 2 are normalized by the input
//! size, so the curves keep their shape at smaller scales; the default
//! `small` scale finishes in seconds on a laptop, `medium` in minutes, and
//! `paper` reproduces the original sizes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use greedy_engine::prelude::{EdgeBatch, Engine};
use greedy_graph::csr::Graph;
use greedy_graph::edge_list::EdgeList;
use greedy_graph::gen::random::random_edge_list;
use greedy_graph::gen::rmat::{rmat_edge_list, RmatParams};
use greedy_prims::random::hash64;

/// Which of the paper's two inputs to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// Sparse uniform random graph (paper: n = 10⁷, m = 5·10⁷).
    Random,
    /// R-MAT power-law graph (paper: n = 2²⁴, m = 5·10⁷).
    Rmat,
}

impl GraphKind {
    /// Parses `random` / `rmat`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "random" | "uniform" | "gnm" => Some(GraphKind::Random),
            "rmat" | "r-mat" | "powerlaw" => Some(GraphKind::Rmat),
            _ => None,
        }
    }

    /// Short display name used in CSV output.
    pub fn name(self) -> &'static str {
        match self {
            GraphKind::Random => "random",
            GraphKind::Rmat => "rmat",
        }
    }
}

/// Input scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// n = 10⁴, m = 5·10⁴ (random); n = 2¹⁴ (rMat). Milliseconds per
    /// experiment — the `--quick` smoke-test scale.
    Tiny,
    /// n = 10⁵, m = 5·10⁵ (random); n = 2¹⁷ (rMat). Seconds per experiment.
    Small,
    /// n = 10⁶, m = 5·10⁶ (random); n = 2²⁰ (rMat). Minutes per experiment.
    Medium,
    /// The paper's sizes: n = 10⁷, m = 5·10⁷ (random); n = 2²⁴ (rMat).
    Paper,
}

impl Scale {
    /// Parses `tiny` / `small` / `medium` / `paper`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" | "t" | "quick" => Some(Scale::Tiny),
            "small" | "s" => Some(Scale::Small),
            "medium" | "m" => Some(Scale::Medium),
            "paper" | "full" | "large" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Short name, as accepted by [`Scale::parse`] and used in CSV output.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    }

    /// `(n, m)` for the uniform random input at this scale.
    pub fn random_size(self) -> (usize, usize) {
        match self {
            Scale::Tiny => (10_000, 50_000),
            Scale::Small => (100_000, 500_000),
            Scale::Medium => (1_000_000, 5_000_000),
            Scale::Paper => (10_000_000, 50_000_000),
        }
    }

    /// `(log2 n, m)` for the rMat input at this scale.
    pub fn rmat_size(self) -> (u32, usize) {
        match self {
            Scale::Tiny => (14, 50_000),
            Scale::Small => (17, 500_000),
            Scale::Medium => (20, 5_000_000),
            Scale::Paper => (24, 50_000_000),
        }
    }
}

/// A generated experiment input: the edge list (for matching experiments) and
/// the CSR graph (for MIS experiments).
pub struct ExperimentGraph {
    /// Which generator produced it.
    pub kind: GraphKind,
    /// Scale it was generated at.
    pub scale: Scale,
    /// The canonical edge list (edge ids are indices).
    pub edges: EdgeList,
    /// The CSR form.
    pub graph: Graph,
}

impl ExperimentGraph {
    /// Generates the requested input. Deterministic in `seed`.
    pub fn generate(kind: GraphKind, scale: Scale, seed: u64) -> Self {
        let edges = match kind {
            GraphKind::Random => {
                let (n, m) = scale.random_size();
                random_edge_list(n, m, seed)
            }
            GraphKind::Rmat => {
                let (log_n, m) = scale.rmat_size();
                rmat_edge_list(log_n, m, RmatParams::default(), seed)
            }
        };
        let graph = Graph::from_edge_list(&edges);
        Self {
            kind,
            scale,
            edges,
            graph,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.num_edges()
    }
}

/// Common command-line options for the experiment binaries.
///
/// Recognized flags (all optional):
/// `--graph random|rmat`, `--scale tiny|small|medium|paper`, `--seed <u64>`,
/// `--threads <list>` (comma-separated), `--reps <k>`, `--csv` (CSV only),
/// `--quick` (tiny scale, 1 rep, minimal thread sweep — the smoke-test mode),
/// `--compare` (diff fresh `BENCH_quick.json` rows against the committed
/// baseline and warn on large throughput regressions).
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Input graph kind.
    pub kind: GraphKind,
    /// Input scale.
    pub scale: Scale,
    /// Generator / permutation seed.
    pub seed: u64,
    /// Thread counts to sweep for the scaling experiments.
    pub threads: Vec<usize>,
    /// Repetitions per measurement (best time is reported).
    pub reps: usize,
    /// Suppress the human-readable table and print only CSV.
    pub csv_only: bool,
    /// True when `--quick` smoke-test mode was requested; `run_all` uses this
    /// to also emit the `BENCH_quick.json` perf-trajectory file.
    pub quick: bool,
    /// True when `--compare` was requested; `run_all` uses this to diff the
    /// freshly written `BENCH_quick.json` rows against the committed baseline
    /// and warn (never fail) on large throughput regressions.
    pub compare: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            kind: GraphKind::Random,
            scale: Scale::Small,
            seed: 42,
            threads: default_thread_sweep(),
            reps: 3,
            csv_only: false,
            quick: false,
            compare: false,
        }
    }
}

/// The default thread sweep: powers of two up to the machine's logical CPUs.
pub fn default_thread_sweep() -> Vec<usize> {
    let max = num_cpus::get().max(1);
    let mut t = 1;
    let mut out = Vec::new();
    while t < max {
        out.push(t);
        t *= 2;
    }
    out.push(max);
    out
}

impl HarnessConfig {
    /// Parses the process arguments; unknown flags abort with a usage
    /// message so typos never silently fall back to defaults.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator (exposed for tests).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cfg = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut take = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match arg.as_str() {
                "--graph" => {
                    let v = take("--graph");
                    cfg.kind = GraphKind::parse(&v)
                        .unwrap_or_else(|| panic!("unknown graph kind '{v}' (random|rmat)"));
                }
                "--scale" => {
                    let v = take("--scale");
                    cfg.scale = Scale::parse(&v)
                        .unwrap_or_else(|| panic!("unknown scale '{v}' (small|medium|paper)"));
                }
                "--seed" => {
                    let v = take("--seed");
                    cfg.seed = v.parse().unwrap_or_else(|_| panic!("bad seed '{v}'"));
                }
                "--threads" => {
                    let v = take("--threads");
                    cfg.threads = v
                        .split(',')
                        .map(|t| {
                            t.trim()
                                .parse()
                                .unwrap_or_else(|_| panic!("bad thread count '{t}'"))
                        })
                        .collect();
                }
                "--reps" => {
                    let v = take("--reps");
                    cfg.reps = v.parse().unwrap_or_else(|_| panic!("bad reps '{v}'"));
                }
                "--csv" => cfg.csv_only = true,
                // Smoke-test mode: tiny input, one rep, a two-point thread
                // sweep — every binary finishes in seconds, so CI can run
                // `run_all -- --quick` as a cheap end-to-end job.
                "--quick" => {
                    cfg.scale = Scale::Tiny;
                    cfg.reps = 1;
                    cfg.quick = true;
                    let max = num_cpus::get().max(1);
                    cfg.threads = if max > 1 { vec![1, max] } else { vec![1] };
                }
                "--compare" => cfg.compare = true,
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --graph random|rmat --scale tiny|small|medium|paper --seed N \
                         --threads 1,2,4 --reps K --csv --quick --compare"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag '{other}' (try --help)"),
            }
        }
        assert!(cfg.reps >= 1, "--reps must be at least 1");
        assert!(
            !cfg.threads.is_empty(),
            "--threads must list at least one count"
        );
        cfg
    }
}

/// A deterministic mixed engine batch: `inserts` hashed endpoint pairs plus
/// `deletes` edges sampled from the engine's *current* graph (random vertex,
/// random incident neighbor — O(1) per sample), so the deletions actually
/// exercise the delete-merge and deletion-repair paths instead of being
/// filtered out as absent.
pub fn engine_mixed_batch(engine: &Engine, round: u64, inserts: u64, deletes: u64) -> EdgeBatch {
    let n = engine.num_vertices() as u64;
    let mut batch = EdgeBatch::new();
    for i in 0..inserts {
        batch.insert(
            (hash64(round, 2 * i) % n) as u32,
            (hash64(round, 2 * i + 1) % n) as u32,
        );
    }
    for i in 0..deletes {
        let x = (hash64(round ^ 0xD00D, 2 * i) % n) as u32;
        let adj = engine.graph().neighbors(x);
        if !adj.is_empty() {
            let w = adj[(hash64(round ^ 0xD00D, 2 * i + 1) % adj.len() as u64) as usize];
            batch.delete(x, w);
        }
    }
    batch
}

/// A deterministic *matching-heavy* engine batch: `inserts` hashed endpoint
/// pairs plus `deletes` edges sampled from the engine's **current matching**.
/// Deleting matched edges is the expensive matching-repair case — every
/// deletion frees both endpoints and reseeds their whole surviving
/// neighborhoods — so streams built from this batch keep the matching's
/// round-machinery repair hot rather than letting deletions fall on
/// unmatched edges that need no repair at all.
pub fn engine_matching_heavy_batch(
    engine: &Engine,
    round: u64,
    inserts: u64,
    deletes: u64,
) -> EdgeBatch {
    let n = engine.num_vertices() as u64;
    let mut batch = EdgeBatch::new();
    for i in 0..inserts {
        batch.insert(
            (hash64(round ^ 0x3A7C, 2 * i) % n) as u32,
            (hash64(round ^ 0x3A7C, 2 * i + 1) % n) as u32,
        );
    }
    let matched = engine.matching();
    for i in 0..deletes {
        if !matched.is_empty() {
            let e = matched[(hash64(round ^ 0x4DA7, 2 * i) % matched.len() as u64) as usize];
            batch.delete(e.u, e.v);
        }
    }
    batch
}

/// Runs `f` `reps` times and returns the best (minimum) wall-clock duration
/// together with the result of the final run.
pub fn time_best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(reps >= 1);
    let mut best = Duration::MAX;
    let mut result = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed());
        result = Some(r);
    }
    (best, result.unwrap())
}

/// Runs `f` inside a dedicated rayon pool with `num_threads` worker threads.
pub fn run_on_threads<T: Send>(num_threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(num_threads)
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

/// The prefix-size fractions swept by the Figure 1/2 experiments (x-axis of
/// the plots, as a fraction of the input size). Matches the paper's log-scale
/// sweep from effectively-sequential to fully-parallel.
pub fn prefix_fraction_sweep() -> Vec<f64> {
    vec![
        1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.2, 0.5, 1.0,
    ]
}

/// Formats a duration as fractional seconds with microsecond resolution.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Prints a CSV header and returns a closure-friendly helper for emitting
/// rows; kept trivial so binaries stay dependency-free beyond this crate.
pub fn print_csv_header(columns: &[&str]) {
    println!("{}", columns.join(","));
}

/// Merges `rows` (pre-rendered one-line JSON entry objects) into the
/// `results/BENCH_quick.json` perf-trajectory file, *replacing* any existing
/// entries whose `"name"` starts with one of `owned_prefixes` and preserving
/// everything else — so `run_all` and `serve_load` can each refresh their own
/// rows without destroying the other's. Creates the file when missing; if an
/// existing file is not in the expected line-structured shape it is left
/// untouched and the rows go to a `BENCH_quick_<suffix>.json` sidecar
/// instead (trajectory data is never silently destroyed).
pub fn merge_quick_entries(
    path: &std::path::Path,
    seed: u64,
    owned_prefixes: &[&str],
    sidecar_suffix: &str,
    rows: &[String],
) {
    use std::fs;
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).expect("cannot create results directory");
    }
    let fresh = || {
        format!(
            "{{\n  \"schema\": 1,\n  \"seed\": {seed},\n  \"reps\": 1,\n  \"host_threads\": {},\n  \
             \"entries\": [\n{}\n  ]\n}}\n",
            num_cpus::get(),
            rows.join(",\n")
        )
    };
    let owned = |line: &str| {
        owned_prefixes
            .iter()
            .any(|p| line.contains(&format!("\"name\": \"{p}")))
    };
    let (target, content) = match fs::read_to_string(path) {
        Ok(text) => match split_quick_entries(&text) {
            Some((head, entries, tail)) => {
                let mut kept: Vec<String> = entries.into_iter().filter(|e| !owned(e)).collect();
                kept.extend(rows.iter().cloned());
                (
                    path.to_path_buf(),
                    format!("{head}\n{}\n{tail}", kept.join(",\n")),
                )
            }
            None => {
                let sidecar = path.with_file_name(format!("BENCH_quick_{sidecar_suffix}.json"));
                eprintln!(
                    "   (existing {} not in the expected shape; leaving it intact and \
                     writing {} instead)",
                    path.display(),
                    sidecar.display()
                );
                (sidecar, fresh())
            }
        },
        Err(_) => (path.to_path_buf(), fresh()),
    };
    fs::write(&target, content)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", target.display()));
}

/// Reads the entry lines of a `BENCH_quick.json` trajectory file, or an
/// empty list when the file is missing or not in the expected
/// line-structured shape. This is how `run_all --compare` snapshots the
/// committed baseline before [`merge_quick_entries`] overwrites its rows.
pub fn read_quick_entries(path: &std::path::Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| split_quick_entries(&text).map(|(_, entries, _)| entries))
        .unwrap_or_default()
}

/// Extracts a `"key": "string"` field from a one-line JSON entry object.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts a `"key": number` field from a one-line JSON entry object.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Diffs fresh trajectory rows against a baseline snapshot and returns one
/// warning line per throughput regression larger than `threshold_pct`.
///
/// Only rows whose metric measures throughput are compared: timing rows
/// (`"seconds"`, lower is better) and rate rows (`"unit"` ending in `/s`,
/// higher is better). Latency percentiles and counts are skipped — on a
/// shared CI box they are too noisy to diff meaningfully. Rows present on
/// only one side are skipped too, so renaming or adding entries never
/// produces a spurious warning. The caller decides what to do with the
/// warnings; nothing here exits or fails.
pub fn compare_quick_entries(
    baseline: &[String],
    fresh: &[String],
    threshold_pct: f64,
) -> Vec<String> {
    // (name, threads) -> (metric, higher_is_better)
    let index = |rows: &[String]| -> std::collections::BTreeMap<(String, u64), (f64, bool)> {
        let mut map = std::collections::BTreeMap::new();
        for line in rows {
            let Some(name) = json_str_field(line, "name") else {
                continue;
            };
            let threads = json_num_field(line, "threads").unwrap_or(0.0) as u64;
            if let Some(seconds) = json_num_field(line, "seconds") {
                map.insert((name, threads), (seconds, false));
            } else if let (Some(value), Some(unit)) =
                (json_num_field(line, "value"), json_str_field(line, "unit"))
            {
                if unit.ends_with("/s") {
                    map.insert((name, threads), (value, true));
                }
            }
        }
        map
    };
    let old = index(baseline);
    let mut warnings = Vec::new();
    for ((name, threads), (new_v, higher_is_better)) in index(fresh) {
        let Some(&(old_v, _)) = old.get(&(name.clone(), threads)) else {
            continue;
        };
        if old_v <= 0.0 || new_v <= 0.0 {
            continue;
        }
        let regression_pct = if higher_is_better {
            (old_v - new_v) / old_v * 100.0
        } else {
            (new_v - old_v) / old_v * 100.0
        };
        if regression_pct > threshold_pct {
            warnings.push(format!(
                "{name} (threads={threads}): {old_v:.4} -> {new_v:.4}, \
                 {regression_pct:.0}% throughput regression"
            ));
        }
    }
    warnings
}

/// Splits the trajectory file into (head incl. `"entries": [`, entry lines
/// without trailing commas, tail from `]` on). The file is line-structured
/// by construction — one entry object per line.
fn split_quick_entries(text: &str) -> Option<(String, Vec<String>, String)> {
    let lines: Vec<&str> = text.lines().collect();
    let open = lines
        .iter()
        .position(|l| l.trim_end().ends_with("\"entries\": ["))?;
    let close = (open + 1..lines.len()).find(|&i| lines[i].trim() == "]")?;
    let head = lines[..=open].join("\n");
    let entries = lines[open + 1..close]
        .iter()
        .map(|l| l.trim_end().trim_end_matches(',').to_string())
        .filter(|l| !l.trim().is_empty())
        .collect();
    let tail = lines[close..].join("\n") + "\n";
    Some((head, entries, tail))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_kind_and_scale_parse() {
        assert_eq!(GraphKind::parse("random"), Some(GraphKind::Random));
        assert_eq!(GraphKind::parse("RMAT"), Some(GraphKind::Rmat));
        assert_eq!(GraphKind::parse("bogus"), None);
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("x"), None);
    }

    #[test]
    fn config_parses_flags() {
        let cfg = HarnessConfig::parse(
            [
                "--graph",
                "rmat",
                "--scale",
                "small",
                "--seed",
                "7",
                "--threads",
                "1,2,4",
                "--reps",
                "2",
                "--csv",
            ]
            .into_iter()
            .map(String::from),
        );
        assert_eq!(cfg.kind, GraphKind::Rmat);
        assert_eq!(cfg.scale, Scale::Small);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.threads, vec![1, 2, 4]);
        assert_eq!(cfg.reps, 2);
        assert!(cfg.csv_only);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn config_rejects_unknown_flag() {
        HarnessConfig::parse(["--bogus".to_string()]);
    }

    #[test]
    fn default_thread_sweep_is_sane() {
        let sweep = default_thread_sweep();
        assert!(!sweep.is_empty());
        assert_eq!(sweep[0].min(1), 1);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn experiment_graph_generates_both_kinds() {
        let tiny_random = ExperimentGraph {
            kind: GraphKind::Random,
            scale: Scale::Small,
            edges: random_edge_list(1_000, 4_000, 1),
            graph: Graph::from_edge_list(&random_edge_list(1_000, 4_000, 1)),
        };
        assert_eq!(tiny_random.num_vertices(), 1_000);
        assert_eq!(tiny_random.num_edges(), 4_000);
    }

    #[test]
    fn time_best_of_returns_minimum() {
        let (d, x) = time_best_of(3, || 42);
        assert_eq!(x, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn run_on_threads_controls_pool_size() {
        let inside = run_on_threads(2, rayon::current_num_threads);
        assert_eq!(inside, 2);
    }

    #[test]
    fn prefix_sweep_is_sorted_and_in_range() {
        let sweep = prefix_fraction_sweep();
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert!(sweep.iter().all(|&f| f > 0.0 && f <= 1.0));
        assert_eq!(*sweep.last().unwrap(), 1.0);
    }

    #[test]
    fn config_parses_compare_flag() {
        let cfg = HarnessConfig::parse(["--quick", "--compare"].into_iter().map(String::from));
        assert!(cfg.quick);
        assert!(cfg.compare);
        assert!(!HarnessConfig::parse(std::iter::empty()).compare);
    }

    #[test]
    fn compare_warns_on_throughput_regressions_only() {
        let row = |name: &str, threads: usize, metric: &str| {
            format!(
                "    {{\"name\": \"{name}\", \"threads\": {threads}, \"n\": 10, \"m\": 20, \
                 {metric}}}"
            )
        };
        let baseline = vec![
            row("sort_pass", 1, "\"seconds\": 1.000000"),
            row("sort_pass", 4, "\"seconds\": 0.250000"),
            row(
                "server_rounds_per_s",
                2,
                "\"value\": 1000.000, \"unit\": \"rounds/s\"",
            ),
            row(
                "server_query_p99_us",
                2,
                "\"value\": 10.000, \"unit\": \"us\"",
            ),
            row("renamed_away", 1, "\"seconds\": 1.000000"),
        ];
        let fresh = vec![
            // 50% slower: warns.
            row("sort_pass", 1, "\"seconds\": 1.500000"),
            // 20% slower: under the threshold, silent.
            row("sort_pass", 4, "\"seconds\": 0.300000"),
            // Rate halved: warns.
            row(
                "server_rounds_per_s",
                2,
                "\"value\": 500.000, \"unit\": \"rounds/s\"",
            ),
            // Latency rows are skipped however much they move.
            row(
                "server_query_p99_us",
                2,
                "\"value\": 900.000, \"unit\": \"us\"",
            ),
            // No baseline counterpart: skipped.
            row("brand_new", 1, "\"seconds\": 9.000000"),
        ];
        let warnings = compare_quick_entries(&baseline, &fresh, 25.0);
        assert_eq!(warnings.len(), 2, "got: {warnings:?}");
        assert!(warnings
            .iter()
            .any(|w| w.starts_with("server_rounds_per_s")));
        assert!(warnings
            .iter()
            .any(|w| w.starts_with("sort_pass (threads=1)")));

        // Improvements never warn.
        assert!(compare_quick_entries(&fresh, &baseline, 25.0)
            .iter()
            .all(|w| !w.starts_with("sort_pass")));
        // An empty baseline (file missing / first run) is silent.
        assert!(compare_quick_entries(&[], &fresh, 25.0).is_empty());
    }
}
