//! Criterion micro-benchmarks of every MIS implementation on the paper's two
//! input families (scaled to benchmark-friendly sizes). One benchmark group
//! per input; within a group the ids correspond to the algorithm variants so
//! relative cost (sequential vs rounds vs prefix vs root-set vs Luby) can be
//! read off directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use greedy_core::mis::luby::luby_mis;
use greedy_core::mis::prefix::{prefix_mis, PrefixPolicy};
use greedy_core::mis::rootset::rootset_mis;
use greedy_core::mis::rounds::rounds_mis;
use greedy_core::mis::sequential::sequential_mis;
use greedy_core::ordering::random_permutation;
use greedy_graph::csr::Graph;
use greedy_graph::gen::random::random_graph;
use greedy_graph::gen::rmat::rmat_graph;

fn inputs() -> Vec<(&'static str, Graph)> {
    vec![
        ("random_n50k_m250k", random_graph(50_000, 250_000, 7)),
        ("rmat_n65k_m250k", rmat_graph(16, 250_000, 7)),
    ]
}

fn bench_mis(c: &mut Criterion) {
    for (name, graph) in inputs() {
        let pi = random_permutation(graph.num_vertices(), 11);
        let mut group = c.benchmark_group(format!("mis/{name}"));
        group.sample_size(10);

        group.bench_function(BenchmarkId::from_parameter("sequential"), |b| {
            b.iter(|| sequential_mis(black_box(&graph), black_box(&pi)))
        });
        group.bench_function(BenchmarkId::from_parameter("rounds_naive"), |b| {
            b.iter(|| rounds_mis(black_box(&graph), black_box(&pi)))
        });
        group.bench_function(BenchmarkId::from_parameter("prefix_2pct"), |b| {
            b.iter(|| {
                prefix_mis(
                    black_box(&graph),
                    black_box(&pi),
                    PrefixPolicy::FractionOfInput(0.02),
                )
            })
        });
        group.bench_function(BenchmarkId::from_parameter("prefix_full"), |b| {
            b.iter(|| {
                prefix_mis(
                    black_box(&graph),
                    black_box(&pi),
                    PrefixPolicy::FractionOfInput(1.0),
                )
            })
        });
        group.bench_function(BenchmarkId::from_parameter("rootset_linear"), |b| {
            b.iter(|| rootset_mis(black_box(&graph), black_box(&pi)))
        });
        group.bench_function(BenchmarkId::from_parameter("luby"), |b| {
            b.iter(|| luby_mis(black_box(&graph), 13))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_mis);
criterion_main!(benches);
