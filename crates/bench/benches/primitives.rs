//! Criterion micro-benchmarks of the parallel primitives substrate:
//! prefix sums, packing, random permutations, the sorting subsystem
//! (parallel radix sort vs the shim's sample sort vs std), and the
//! edge-list → CSR build that rides on it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use greedy_graph::csr::Graph;
use greedy_graph::gen::random::random_edge_list;
use greedy_prims::pack::{pack, par_pack};
use greedy_prims::permutation::{par_random_permutation, random_permutation};
use greedy_prims::random::hash64;
use greedy_prims::scan::{exclusive_scan, par_exclusive_scan};
use greedy_prims::sort::{counting_sort_by_key, sort_by_key_parallel};
use rayon::prelude::*;

const N: usize = 1_000_000;

fn bench_scan(c: &mut Criterion) {
    let data: Vec<u64> = (0..N as u64).map(|i| i % 97).collect();
    let mut group = c.benchmark_group("primitives/scan");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function(BenchmarkId::from_parameter("sequential"), |b| {
        b.iter(|| exclusive_scan(black_box(&data)))
    });
    group.bench_function(BenchmarkId::from_parameter("parallel"), |b| {
        b.iter(|| par_exclusive_scan(black_box(&data)))
    });
    group.finish();
}

fn bench_pack(c: &mut Criterion) {
    let data: Vec<u64> = (0..N as u64).collect();
    let flags: Vec<bool> = data.iter().map(|&x| x % 3 == 0).collect();
    let mut group = c.benchmark_group("primitives/pack");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function(BenchmarkId::from_parameter("sequential"), |b| {
        b.iter(|| pack(black_box(&data), black_box(&flags)))
    });
    group.bench_function(BenchmarkId::from_parameter("parallel"), |b| {
        b.iter(|| par_pack(black_box(&data), black_box(&flags)))
    });
    group.finish();
}

fn bench_permutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/random_permutation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function(BenchmarkId::from_parameter("fisher_yates"), |b| {
        b.iter(|| random_permutation(black_box(N), 5))
    });
    group.bench_function(BenchmarkId::from_parameter("parallel_sort_based"), |b| {
        b.iter(|| par_random_permutation(black_box(N), 5))
    });
    group.finish();
}

fn bench_counting_sort(c: &mut Criterion) {
    let keys: Vec<u32> = (0..N as u64)
        .map(|i| (i * 2654435761 % 1024) as u32)
        .collect();
    let mut group = c.benchmark_group("primitives/counting_sort");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function(BenchmarkId::from_parameter("1024_buckets"), |b| {
        b.iter(|| counting_sort_by_key(black_box(&keys), 1024, |&k| k))
    });
    group.finish();
}

fn bench_sort_subsystem(c: &mut Criterion) {
    // The permutation hot path's exact record shape: (64-bit hash, element).
    let pairs: Vec<(u64, u32)> = (0..N as u64).map(|i| (hash64(7, i), i as u32)).collect();
    let mut group = c.benchmark_group("primitives/sort_u64_keyed_pairs");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function(BenchmarkId::from_parameter("radix_parallel"), |b| {
        b.iter(|| {
            let mut v = black_box(&pairs).clone();
            sort_by_key_parallel(&mut v, |&(k, _)| k);
            v
        })
    });
    group.bench_function(BenchmarkId::from_parameter("sample_sort_shim"), |b| {
        b.iter(|| {
            let mut v = black_box(&pairs).clone();
            v.par_sort_by_key(|&(k, _)| k);
            v
        })
    });
    group.bench_function(BenchmarkId::from_parameter("std_unstable"), |b| {
        b.iter(|| {
            let mut v = black_box(&pairs).clone();
            v.sort_unstable();
            v
        })
    });
    group.finish();
}

fn bench_csr_build(c: &mut Criterion) {
    // Edge-list → CSR at the `small` experiment scale; dominated by the
    // radix bucketing of 1M arcs.
    let edges = random_edge_list(100_000, 500_000, 42);
    let mut group = c.benchmark_group("primitives/csr_build");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2 * edges.num_edges() as u64));
    group.bench_function(BenchmarkId::from_parameter("100k_500k"), |b| {
        b.iter(|| Graph::from_edge_list(black_box(&edges)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scan,
    bench_pack,
    bench_permutation,
    bench_counting_sort,
    bench_sort_subsystem,
    bench_csr_build
);
criterion_main!(benches);
