//! Criterion micro-benchmarks of every maximal-matching implementation on
//! the paper's two input families (scaled down).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use greedy_core::matching::prefix::prefix_matching;
use greedy_core::matching::rootset::rootset_matching;
use greedy_core::matching::rounds::rounds_matching;
use greedy_core::matching::sequential::sequential_matching;
use greedy_core::mis::prefix::PrefixPolicy;
use greedy_core::ordering::random_edge_permutation;
use greedy_graph::edge_list::EdgeList;
use greedy_graph::gen::random::random_edge_list;
use greedy_graph::gen::rmat::{rmat_edge_list, RmatParams};

fn inputs() -> Vec<(&'static str, EdgeList)> {
    vec![
        ("random_n50k_m250k", random_edge_list(50_000, 250_000, 7)),
        (
            "rmat_n65k_m250k",
            rmat_edge_list(16, 250_000, RmatParams::default(), 7),
        ),
    ]
}

fn bench_mm(c: &mut Criterion) {
    for (name, edges) in inputs() {
        let pi = random_edge_permutation(edges.num_edges(), 11);
        let mut group = c.benchmark_group(format!("mm/{name}"));
        group.sample_size(10);

        group.bench_function(BenchmarkId::from_parameter("sequential"), |b| {
            b.iter(|| sequential_matching(black_box(&edges), black_box(&pi)))
        });
        group.bench_function(BenchmarkId::from_parameter("rounds_naive"), |b| {
            b.iter(|| rounds_matching(black_box(&edges), black_box(&pi)))
        });
        group.bench_function(BenchmarkId::from_parameter("prefix_2pct"), |b| {
            b.iter(|| {
                prefix_matching(
                    black_box(&edges),
                    black_box(&pi),
                    PrefixPolicy::FractionOfInput(0.02),
                )
            })
        });
        group.bench_function(BenchmarkId::from_parameter("prefix_full"), |b| {
            b.iter(|| {
                prefix_matching(
                    black_box(&edges),
                    black_box(&pi),
                    PrefixPolicy::FractionOfInput(1.0),
                )
            })
        });
        group.bench_function(BenchmarkId::from_parameter("rootset_linear"), |b| {
            b.iter(|| rootset_matching(black_box(&edges), black_box(&pi)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_mm);
criterion_main!(benches);
