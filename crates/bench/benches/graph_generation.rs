//! Criterion micro-benchmarks of the graph substrate: the two paper
//! generators, CSR construction, and line-graph construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use greedy_graph::csr::Graph;
use greedy_graph::gen::random::random_edge_list;
use greedy_graph::gen::rmat::{rmat_edge_list, RmatParams};
use greedy_graph::line_graph::line_graph;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/generate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(500_000));
    group.bench_function(BenchmarkId::from_parameter("random_n100k_m500k"), |b| {
        b.iter(|| random_edge_list(black_box(100_000), black_box(500_000), 3))
    });
    group.bench_function(BenchmarkId::from_parameter("rmat_n131k_m500k"), |b| {
        b.iter(|| rmat_edge_list(black_box(17), black_box(500_000), RmatParams::default(), 3))
    });
    group.finish();
}

fn bench_csr_build(c: &mut Criterion) {
    let edges = random_edge_list(100_000, 500_000, 5);
    let mut group = c.benchmark_group("graph/csr_build");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges.num_edges() as u64));
    group.bench_function(BenchmarkId::from_parameter("from_edge_list"), |b| {
        b.iter(|| Graph::from_edge_list(black_box(&edges)))
    });
    group.finish();
}

fn bench_line_graph(c: &mut Criterion) {
    let edges = random_edge_list(20_000, 80_000, 9);
    let mut group = c.benchmark_group("graph/line_graph");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges.num_edges() as u64));
    group.bench_function(BenchmarkId::from_parameter("n20k_m80k"), |b| {
        b.iter(|| line_graph(black_box(&edges)))
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_csr_build, bench_line_graph);
criterion_main!(benches);
