//! Criterion micro-benchmarks of the batch-dynamic engine: batch ingestion
//! (graph + MIS + matching repair) against the from-scratch recompute it
//! replaces, across batch sizes. Deletions are sampled from the engine's
//! live graph (see [`engine_mixed_batch`]) so the delete paths are really
//! measured; batch construction itself is O(batch) and stays in the timed
//! region as part of the serving cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use greedy_bench::engine_mixed_batch;
use greedy_engine::prelude::*;
use greedy_graph::gen::random::random_graph;

const N: usize = 100_000;
const M: usize = 500_000;

fn bench_apply_batch(c: &mut Criterion) {
    let base = random_graph(N, M, 3);
    let mut group = c.benchmark_group("engine/apply_batch");
    group.sample_size(10);
    // The 16-update case is the reusable-scratch showcase: with the repair
    // flags kept inside the engine a tiny batch costs O(Δ) — without it,
    // every batch paid two O(n) flag zeroings regardless of size.
    for batch_size in [16u64, 100, 1_000, 10_000] {
        group.throughput(Throughput::Elements(batch_size + batch_size / 2));
        group.bench_function(BenchmarkId::from_parameter(batch_size), |b| {
            let mut engine = Engine::from_graph(&base, 7);
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                let batch = engine_mixed_batch(&engine, round, batch_size, batch_size / 2);
                black_box(engine.apply_batch(&batch))
            })
        });
    }
    group.finish();
}

fn bench_vs_from_scratch(c: &mut Criterion) {
    // The baseline a dynamic engine must beat: rebuilding engine state from
    // scratch after every batch.
    let base = random_graph(N, M, 3);
    let mut group = c.benchmark_group("engine/batch_vs_scratch");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("incremental_1k"), |b| {
        let mut engine = Engine::from_graph(&base, 7);
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let batch = engine_mixed_batch(&engine, round, 1_000, 500);
            black_box(engine.apply_batch(&batch))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("from_scratch"), |b| {
        b.iter(|| black_box(Engine::from_graph(&base, 7)))
    });
    group.finish();
}

criterion_group!(benches, bench_apply_batch, bench_vs_from_scratch);
criterion_main!(benches);
