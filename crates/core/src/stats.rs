//! Work and round instrumentation.
//!
//! The paper's Figures 1 and 2 plot three quantities against the prefix size:
//! the **total work** performed, the **number of rounds** of the outer loop
//! (its proxy for parallelism), and the running time. [`WorkStats`] collects
//! exactly those counters so the benchmark harness can regenerate the
//! figures, and so tests can assert the expected monotone behaviour
//! (bigger prefixes ⇒ more work, fewer rounds).

/// Counters collected by the instrumented algorithm variants.
///
/// Conventions (matching the paper's normalization):
/// * `vertex_work` counts one unit every time an algorithm examines an
///   element (a vertex for MIS, an edge for MM) in some step. The sequential
///   greedy algorithm examines every element exactly once, so its
///   `vertex_work` equals the input size; Figure 1(a)/2(a) plot
///   `vertex_work / input size`.
/// * `edge_work` counts neighbor inspections (adjacency-list traversals).
/// * `rounds` counts iterations of the *outer* loop: prefixes processed for
///   the prefix-based algorithms, synchronous rounds for the rounds/root-set
///   algorithms, and `input size` for the sequential algorithms. Figure
///   1(b)/2(b) plot `rounds / input size`.
/// * `steps` counts iterations of the *inner* loop summed over all rounds
///   (the dependence length contribution of each prefix); for the rounds
///   algorithms `steps == rounds`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Outer-loop iterations (prefix rounds).
    pub rounds: u64,
    /// Inner-loop iterations summed over all rounds.
    pub steps: u64,
    /// Element examinations (vertices for MIS, edges for MM).
    pub vertex_work: u64,
    /// Neighbor/adjacency inspections.
    pub edge_work: u64,
}

impl WorkStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &WorkStats) {
        self.rounds += other.rounds;
        self.steps += other.steps;
        self.vertex_work += other.vertex_work;
        self.edge_work += other.edge_work;
    }

    /// Total work proxy: element examinations plus neighbor inspections.
    pub fn total_work(&self) -> u64 {
        self.vertex_work + self.edge_work
    }

    /// Work normalized by the input size, the y-axis of Figures 1(a)/1(d)
    /// and 2(a)/2(d).
    pub fn work_per_element(&self, input_size: usize) -> f64 {
        if input_size == 0 {
            0.0
        } else {
            self.vertex_work as f64 / input_size as f64
        }
    }

    /// Rounds normalized by the input size, the y-axis of Figures 1(b)/1(e)
    /// and 2(b)/2(e).
    pub fn rounds_per_element(&self, input_size: usize) -> f64 {
        if input_size == 0 {
            0.0
        } else {
            self.rounds as f64 / input_size as f64
        }
    }

    /// CSV header matching [`WorkStats::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "rounds,steps,vertex_work,edge_work"
    }

    /// The counters as a CSV row.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{}",
            self.rounds, self.steps, self.vertex_work, self.edge_work
        )
    }
}

impl std::fmt::Display for WorkStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rounds={} steps={} vertex_work={} edge_work={}",
            self.rounds, self.steps, self.vertex_work, self.edge_work
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = WorkStats {
            rounds: 1,
            steps: 2,
            vertex_work: 3,
            edge_work: 4,
        };
        let b = WorkStats {
            rounds: 10,
            steps: 20,
            vertex_work: 30,
            edge_work: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            WorkStats {
                rounds: 11,
                steps: 22,
                vertex_work: 33,
                edge_work: 44
            }
        );
    }

    #[test]
    fn normalized_quantities() {
        let s = WorkStats {
            rounds: 50,
            steps: 100,
            vertex_work: 200,
            edge_work: 0,
        };
        assert!((s.work_per_element(100) - 2.0).abs() < 1e-12);
        assert!((s.rounds_per_element(100) - 0.5).abs() < 1e-12);
        assert_eq!(s.work_per_element(0), 0.0);
        assert_eq!(s.rounds_per_element(0), 0.0);
        assert_eq!(s.total_work(), 200);
    }

    #[test]
    fn csv_round_trip_shape() {
        let s = WorkStats {
            rounds: 1,
            steps: 2,
            vertex_work: 3,
            edge_work: 4,
        };
        assert_eq!(
            WorkStats::csv_header().split(',').count(),
            s.to_csv_row().split(',').count()
        );
        assert_eq!(s.to_csv_row(), "1,2,3,4");
    }

    #[test]
    fn display_contains_all_fields() {
        let s = WorkStats {
            rounds: 7,
            steps: 8,
            vertex_work: 9,
            edge_work: 10,
        };
        let text = s.to_string();
        for needle in ["rounds=7", "steps=8", "vertex_work=9", "edge_work=10"] {
            assert!(text.contains(needle));
        }
    }
}
