//! Priority orders (the permutation π).
//!
//! The paper's guarantee — polylogarithmic dependence length — holds for a
//! *uniformly random* order of the vertices (MIS) or edges (MM). These
//! helpers construct such orders deterministically from a seed, so every
//! experiment is reproducible and every implementation sees the identical π.

use greedy_graph::csr::Graph;
use greedy_graph::edge_list::EdgeList;
use greedy_prims::permutation::{par_random_permutation, Permutation};

/// A uniformly random priority order over `n` vertices, deterministic in
/// `seed` and independent of the number of threads.
pub fn random_permutation(n: usize, seed: u64) -> Permutation {
    par_random_permutation(n, seed)
}

/// A uniformly random priority order over the vertices of `graph`.
pub fn random_vertex_permutation(graph: &Graph, seed: u64) -> Permutation {
    random_permutation(graph.num_vertices(), seed)
}

/// A uniformly random priority order over `m` edges (for maximal matching).
pub fn random_edge_permutation(m: usize, seed: u64) -> Permutation {
    par_random_permutation(m, seed)
}

/// A uniformly random priority order over the edges of `edges`.
pub fn random_edge_permutation_for(edges: &EdgeList, seed: u64) -> Permutation {
    random_edge_permutation(edges.num_edges(), seed)
}

/// The identity order (vertex `i` has priority `i`). Useful for constructing
/// adversarial orders in tests — e.g. the identity order on a path graph has
/// dependence length Θ(n), whereas a random order has O(log² n).
pub fn identity_permutation(n: usize) -> Permutation {
    Permutation::identity(n)
}

/// Builds a permutation from an explicit priority ranking: `rank[v]` is the
/// position of vertex `v` (0 = earliest).
///
/// # Panics
/// Panics if `rank` is not a permutation of `0..rank.len()`.
pub fn permutation_from_rank(rank: Vec<u32>) -> Permutation {
    Permutation::from_rank(rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greedy_graph::gen::random::random_graph;

    #[test]
    fn vertex_permutation_has_graph_size() {
        let g = random_graph(100, 300, 1);
        let pi = random_vertex_permutation(&g, 5);
        assert_eq!(pi.len(), 100);
        assert!(pi.validate());
    }

    #[test]
    fn edge_permutation_has_edge_count() {
        let g = random_graph(100, 300, 1);
        let el = g.to_edge_list();
        let pi = random_edge_permutation_for(&el, 5);
        assert_eq!(pi.len(), el.num_edges());
    }

    #[test]
    fn identity_is_identity() {
        let p = identity_permutation(10);
        for i in 0..10u32 {
            assert_eq!(p.rank_of(i), i);
        }
    }

    #[test]
    fn permutations_are_seed_deterministic() {
        assert_eq!(random_permutation(1000, 1), random_permutation(1000, 1));
        assert_ne!(random_permutation(1000, 1), random_permutation(1000, 2));
    }

    #[test]
    fn from_rank_roundtrip() {
        let p = permutation_from_rank(vec![2, 0, 1]);
        assert_eq!(p.rank_of(0), 2);
        assert_eq!(p.rank_of(1), 0);
        assert_eq!(p.element_at(0), 1);
    }
}
