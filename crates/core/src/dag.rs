//! The priority-DAG abstraction behind the round-synchronous greedy
//! algorithms, exposed as a reusable trait.
//!
//! Both problems in this workspace are instances of one scheme: items carry
//! fixed random priorities, items conflict pairwise, and the greedy rule is
//! *"an item is accepted iff none of its earlier conflicting items is
//! accepted"*. For MIS the items are vertices and conflicts are edges; for
//! maximal matching the items are edges and conflicts are shared endpoints
//! (MIS on the line graph). The fixed priorities induce a DAG over conflicts
//! (earlier item → later item), and the greedy result is the unique fixed
//! point of the rule — the lexicographically-first MIS of the conflict graph.
//!
//! [`ConflictDag`] captures exactly that structure, and
//! [`repair_fixed_point`] is the round machinery of Algorithm 2 generalized
//! to start from *any* consistent partial state: given a set of items whose
//! decisions may have become stale (because conflicts were added or removed),
//! it re-decides them in priority order, in synchronous rounds, propagating
//! to later conflicting items whenever a decision flips, until the fixed
//! point is reached.
//!
//! Two ways to use it:
//!
//! * **from scratch** — seed every item with all decisions `false`; the run
//!   is then exactly the rounds algorithm (each round decides the items none
//!   of whose earlier conflicts are still pending), and the number of rounds
//!   is the dependence length of the DAG;
//! * **incrementally** — keep the previous fixed point, seed only the items
//!   touched by a batch of conflict insertions/deletions. This is what the
//!   batch-dynamic `greedy_engine` crate does; the repaired state is provably
//!   equal to a from-scratch run on the updated conflict structure (changes
//!   can only propagate from an item to *later* items, so re-deciding the
//!   seeds and their downstream suffices).
//!
//! Every parallel step is deterministic (order-preserving parallel maps, no
//! data races), so the repaired state is byte-identical across thread counts.

use rayon::prelude::*;

/// A set of items with fixed priorities and a symmetric conflict relation.
///
/// Implementors provide the *structure*; the greedy rule itself lives in
/// [`repair_fixed_point`]. Priorities must be a total order (ties broken by
/// the second component) that does not change while a repair is running.
pub trait ConflictDag: Sync {
    /// Number of items. Items are dense ids `0..len()`.
    fn len(&self) -> usize;

    /// True when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The priority key of `item`; lexicographically smaller = earlier
    /// (decided first). Must be distinct across items — pair a random hash
    /// with the item id to break ties.
    fn priority(&self, item: u32) -> (u64, u32);

    /// Calls `f` on every item conflicting with `item` (both earlier and
    /// later ones; the driver filters by priority).
    fn for_each_conflict(&self, item: u32, f: &mut dyn FnMut(u32));
}

/// Work counters reported by [`repair_fixed_point`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Synchronous rounds until the fixed point (the dependence length of
    /// the affected sub-DAG).
    pub rounds: u64,
    /// Item re-decisions performed (an item may be re-decided more than once
    /// when a stale earlier conflict settles after it).
    pub decided: u64,
    /// Decision flips applied (size of the gross change stream, not the net
    /// changed set).
    pub flips: u64,
}

/// Reusable working memory for [`repair_fixed_point_with_scratch`].
///
/// A repair needs two dense flag arrays over the items (the pending set and
/// the first-touch set). Allocating and zeroing them per call costs O(n) even
/// when the repair itself only touches O(Δ) items — the dominant cost of a
/// tiny batch on a large structure. A `RepairScratch` keeps both arrays alive
/// between repairs and resets them in O(items touched): the pending flags
/// self-clear as the rounds drain, and the touched flags are cleared by
/// walking the first-touch list. Holding one per maintained state (as
/// `greedy_engine::Engine` does) makes a small repair's cost proportional to
/// the affected sub-DAG, not to the whole item set.
#[derive(Debug, Clone, Default)]
pub struct RepairScratch {
    pending_flag: Vec<bool>,
    touched_flag: Vec<bool>,
    /// Flags cleared while resetting after the last repair — the O(Δ) bound
    /// the reuse buys, exposed so tests can assert a small repair on a large
    /// DAG never pays an O(n) reset.
    last_reset_items: usize,
}

impl RepairScratch {
    /// An empty scratch; the flag arrays grow lazily to the DAG size on
    /// first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for a DAG of `n` items, so the first repair does
    /// not pay the growth either.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            pending_flag: vec![false; n],
            touched_flag: vec![false; n],
            last_reset_items: 0,
        }
    }

    /// Number of flags the reset after the most recent repair had to clear —
    /// proportional to the items that repair touched, never to the DAG size.
    pub fn last_reset_items(&self) -> usize {
        self.last_reset_items
    }

    /// Grows (never shrinks) the flag arrays to cover `n` items. Existing
    /// entries are all `false` between repairs, so growth keeps the
    /// all-clear invariant.
    fn ensure(&mut self, n: usize) {
        if self.pending_flag.len() < n {
            self.pending_flag.resize(n, false);
            self.touched_flag.resize(n, false);
        }
    }
}

/// Re-decides `seeds` (and everything downstream of any decision flip) under
/// the greedy rule, mutating `accepted` in place until the fixed point.
///
/// Allocates fresh working memory per call; batch-dynamic callers repairing
/// the same structure repeatedly should hold a [`RepairScratch`] and call
/// [`repair_fixed_point_with_scratch`] so a small repair costs O(Δ), not
/// O(n).
///
/// Returns the **net** changed items — those whose final decision differs
/// from their decision on entry — sorted ascending, plus work counters.
///
/// Correctness contract: on entry, every item *not* in `seeds` must already
/// hold the greedy fixed-point decision for the current conflict structure
/// unless one of its earlier conflicts is seeded. Seeding every endpoint of
/// each inserted/deleted conflict satisfies this, as does seeding all items
/// over an all-`false` state (the from-scratch run).
///
/// # Panics
/// Panics if `accepted.len() != dag.len()` or a seed id is out of range.
pub fn repair_fixed_point<D: ConflictDag>(
    dag: &D,
    accepted: &mut [bool],
    seeds: &[u32],
) -> (Vec<u32>, RepairStats) {
    let mut scratch = RepairScratch::new();
    repair_fixed_point_with_scratch(dag, accepted, seeds, &mut scratch)
}

/// [`repair_fixed_point`] with caller-owned working memory: the dense flag
/// arrays live in `scratch` and are reset in O(items touched) on the way
/// out, so repeated small repairs on a large DAG never pay a per-call O(n).
///
/// # Panics
/// Panics if `accepted.len() != dag.len()` or a seed id is out of range.
pub fn repair_fixed_point_with_scratch<D: ConflictDag>(
    dag: &D,
    accepted: &mut [bool],
    seeds: &[u32],
    scratch: &mut RepairScratch,
) -> (Vec<u32>, RepairStats) {
    let n = dag.len();
    assert_eq!(
        accepted.len(),
        n,
        "repair_fixed_point: state covers {} items but the DAG has {n}",
        accepted.len()
    );
    scratch.ensure(n);

    let mut stats = RepairStats::default();
    let pending_flag = &mut scratch.pending_flag;
    let mut pending: Vec<u32> = Vec::with_capacity(seeds.len());
    for &s in seeds {
        assert!(
            (s as usize) < n,
            "repair_fixed_point: seed {s} out of range"
        );
        if !pending_flag[s as usize] {
            pending_flag[s as usize] = true;
            pending.push(s);
        }
    }

    // First-touch snapshot, so the net changed set can be computed without
    // copying the whole state: `touched[i]` pairs an item with its decision
    // before its first re-decision in this repair.
    let touched_flag = &mut scratch.touched_flag;
    let mut touched: Vec<(u32, bool)> = Vec::new();

    while !pending.is_empty() {
        stats.rounds += 1;

        // An item is ready when no *earlier* conflicting item is still
        // pending: its earlier conflicts cannot change this round, so its
        // decision reads a settled frontier. At least the globally earliest
        // pending item is always ready, so every round makes progress.
        let pending_flag_ref: &[bool] = pending_flag;
        let ready: Vec<u32> = pending
            .par_iter()
            .copied()
            .filter(|&v| {
                let pv = dag.priority(v);
                let mut has_earlier_pending = false;
                dag.for_each_conflict(v, &mut |w| {
                    if pending_flag_ref[w as usize] && dag.priority(w) < pv {
                        has_earlier_pending = true;
                    }
                });
                !has_earlier_pending
            })
            .collect();

        // Greedy rule, computed in parallel against the pre-round state. Two
        // ready items are never earlier/later conflicts of one another (the
        // earlier one would have blocked the later one's readiness), so the
        // reads are race-free even conceptually.
        let accepted_ref = &*accepted;
        let decisions: Vec<bool> = ready
            .par_iter()
            .map(|&v| {
                let pv = dag.priority(v);
                let mut blocked = false;
                dag.for_each_conflict(v, &mut |w| {
                    if accepted_ref[w as usize] && dag.priority(w) < pv {
                        blocked = true;
                    }
                });
                !blocked
            })
            .collect();
        stats.decided += ready.len() as u64;

        // Apply decisions and collect propagation targets: every *later*
        // conflict of a flipped item must be re-checked. Sequential, but
        // linear in the flip frontier — the parallel work above dominates.
        for &v in &ready {
            pending_flag[v as usize] = false;
        }
        let mut next: Vec<u32> = pending
            .iter()
            .copied()
            .filter(|&v| pending_flag[v as usize])
            .collect();
        for (&v, &dec) in ready.iter().zip(&decisions) {
            if !touched_flag[v as usize] {
                touched_flag[v as usize] = true;
                touched.push((v, accepted[v as usize]));
            }
            if accepted[v as usize] != dec {
                accepted[v as usize] = dec;
                stats.flips += 1;
                let pv = dag.priority(v);
                dag.for_each_conflict(v, &mut |w| {
                    if dag.priority(w) > pv && !pending_flag[w as usize] {
                        pending_flag[w as usize] = true;
                        next.push(w);
                    }
                });
            }
        }
        pending = next;
    }

    // Reset the scratch in O(items touched): the pending flags self-cleared
    // as the rounds drained (the loop only exits once the pending set is
    // empty), so only the first-touch flags need clearing — and the
    // first-touch list enumerates them exactly.
    scratch.last_reset_items = touched.len();
    let mut changed: Vec<u32> = Vec::new();
    for (v, before) in touched {
        scratch.touched_flag[v as usize] = false;
        if accepted[v as usize] != before {
            changed.push(v);
        }
    }
    changed.sort_unstable();
    (changed, stats)
}

/// Runs the greedy rule from scratch over `dag`: all items seeded, state
/// starting all-`false`. Returns the accepted flags and the stats (whose
/// `rounds` is the dependence length of the DAG).
pub fn greedy_from_scratch<D: ConflictDag>(dag: &D) -> (Vec<bool>, RepairStats) {
    let mut accepted = vec![false; dag.len()];
    let seeds: Vec<u32> = (0..dag.len() as u32).collect();
    let (_, stats) = repair_fixed_point(dag, &mut accepted, &seeds);
    (accepted, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::sequential::sequential_mis;
    use crate::ordering::random_permutation;
    use greedy_graph::csr::Graph;
    use greedy_graph::gen::random::random_graph;
    use greedy_graph::gen::structured::{complete_graph, path_graph, star_graph};
    use greedy_prims::permutation::Permutation;

    /// MIS as a ConflictDag: vertices with permutation ranks as priorities.
    struct MisDag<'a> {
        graph: &'a Graph,
        pi: &'a Permutation,
    }

    impl ConflictDag for MisDag<'_> {
        fn len(&self) -> usize {
            self.graph.num_vertices()
        }
        fn priority(&self, v: u32) -> (u64, u32) {
            (self.pi.rank_of(v) as u64, v)
        }
        fn for_each_conflict(&self, v: u32, f: &mut dyn FnMut(u32)) {
            for &w in self.graph.neighbors(v) {
                f(w);
            }
        }
    }

    fn mis_of(accepted: &[bool]) -> Vec<u32> {
        accepted
            .iter()
            .enumerate()
            .filter_map(|(v, &a)| a.then_some(v as u32))
            .collect()
    }

    #[test]
    fn from_scratch_equals_sequential_greedy() {
        for seed in 0..5 {
            let g = random_graph(400, 1_600, seed);
            let pi = random_permutation(400, seed + 11);
            let dag = MisDag { graph: &g, pi: &pi };
            let (accepted, stats) = greedy_from_scratch(&dag);
            assert_eq!(mis_of(&accepted), sequential_mis(&g, &pi), "seed {seed}");
            assert!(stats.rounds >= 1);
        }
    }

    #[test]
    fn from_scratch_on_structured_graphs() {
        for (g, n) in [
            (path_graph(50), 50),
            (star_graph(33), 33),
            (complete_graph(20), 20),
        ] {
            let pi = random_permutation(n, 3);
            let dag = MisDag { graph: &g, pi: &pi };
            let (accepted, _) = greedy_from_scratch(&dag);
            assert_eq!(mis_of(&accepted), sequential_mis(&g, &pi));
        }
    }

    #[test]
    fn empty_seed_set_is_a_noop() {
        let g = random_graph(100, 300, 1);
        let pi = random_permutation(100, 2);
        let dag = MisDag { graph: &g, pi: &pi };
        let (mut accepted, _) = greedy_from_scratch(&dag);
        let before = accepted.clone();
        let (changed, stats) = repair_fixed_point(&dag, &mut accepted, &[]);
        assert!(changed.is_empty());
        assert_eq!(stats.rounds, 0);
        assert_eq!(accepted, before);
    }

    #[test]
    fn reseeding_a_fixed_point_changes_nothing() {
        // Re-deciding every item of an already-consistent state must leave it
        // untouched and report an empty net change set.
        let g = random_graph(300, 1_200, 4);
        let pi = random_permutation(300, 5);
        let dag = MisDag { graph: &g, pi: &pi };
        let (mut accepted, _) = greedy_from_scratch(&dag);
        let before = accepted.clone();
        let seeds: Vec<u32> = (0..300).collect();
        let (changed, _) = repair_fixed_point(&dag, &mut accepted, &seeds);
        assert!(changed.is_empty(), "changed = {changed:?}");
        assert_eq!(accepted, before);
    }

    #[test]
    fn net_change_set_reports_only_real_flips() {
        // Corrupt one vertex's decision, reseed it: the repair must restore
        // the fixed point and report exactly the vertices whose final state
        // differs from the corrupted entry state.
        let g = path_graph(10);
        let pi = Permutation::identity(10);
        let dag = MisDag { graph: &g, pi: &pi };
        let (mut accepted, _) = greedy_from_scratch(&dag);
        // Path with identity order: MIS = {0, 2, 4, 6, 8}.
        assert_eq!(mis_of(&accepted), vec![0, 2, 4, 6, 8]);
        // Corrupt vertex 4 to false; downstream (5..) is then stale too, but
        // the repair only needs the corrupted vertex as a seed.
        accepted[4] = false;
        let (changed, _) = repair_fixed_point(&dag, &mut accepted, &[4]);
        assert_eq!(mis_of(&accepted), vec![0, 2, 4, 6, 8]);
        assert_eq!(changed, vec![4], "net change is the restored vertex only");
    }

    #[test]
    fn scratch_reuse_matches_fresh_and_resets_in_o_delta() {
        // A reused scratch must (a) produce exactly the same repairs as the
        // allocating path and (b) reset in work proportional to the repair,
        // not the DAG — the property that makes tiny batches on big graphs
        // cheap for the batch-dynamic engine.
        let n = 20_000;
        let g = random_graph(n, 60_000, 9);
        let pi = random_permutation(n, 10);
        let dag = MisDag { graph: &g, pi: &pi };
        let (mut fresh, _) = greedy_from_scratch(&dag);
        let mut reused = fresh.clone();
        let mut scratch = RepairScratch::with_capacity(dag.len());
        for v in [5u32, 499, 13_000, 19_999] {
            fresh[v as usize] = !fresh[v as usize];
            reused[v as usize] = !reused[v as usize];
            let (c1, s1) = repair_fixed_point(&dag, &mut fresh, &[v]);
            let (c2, s2) = repair_fixed_point_with_scratch(&dag, &mut reused, &[v], &mut scratch);
            assert_eq!(fresh, reused, "state diverged after seeding {v}");
            assert_eq!((c1, s1), (c2, s2), "report diverged after seeding {v}");
            assert!(
                scratch.last_reset_items() < n / 10,
                "single-seed repair reset {} of {n} flags",
                scratch.last_reset_items()
            );
        }
        // The scratch also drives a full from-scratch run correctly.
        let mut rebuilt = vec![false; dag.len()];
        let seeds: Vec<u32> = (0..dag.len() as u32).collect();
        let _ = repair_fixed_point_with_scratch(&dag, &mut rebuilt, &seeds, &mut scratch);
        assert_eq!(rebuilt, fresh);
    }

    #[test]
    #[should_panic(expected = "state covers")]
    fn mismatched_state_length_panics() {
        let g = path_graph(4);
        let pi = Permutation::identity(4);
        let dag = MisDag { graph: &g, pi: &pi };
        let mut accepted = vec![false; 3];
        let _ = repair_fixed_point(&dag, &mut accepted, &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_seed_panics() {
        let g = path_graph(4);
        let pi = Permutation::identity(4);
        let dag = MisDag { graph: &g, pi: &pi };
        let mut accepted = vec![false; 4];
        let _ = repair_fixed_point(&dag, &mut accepted, &[9]);
    }

    #[test]
    fn zero_item_dag() {
        let g = Graph::empty(0);
        let pi = Permutation::identity(0);
        let dag = MisDag { graph: &g, pi: &pi };
        let (accepted, stats) = greedy_from_scratch(&dag);
        assert!(accepted.is_empty());
        assert_eq!(stats.rounds, 0);
    }
}
