//! The priority-DAG abstraction behind the round-synchronous greedy
//! algorithms, exposed as a reusable trait.
//!
//! Both problems in this workspace are instances of one scheme: items carry
//! fixed random priorities, items conflict pairwise, and the greedy rule is
//! *"an item is accepted iff none of its earlier conflicting items is
//! accepted"*. For MIS the items are vertices and conflicts are edges; for
//! maximal matching the items are edges and conflicts are shared endpoints
//! (MIS on the line graph). The fixed priorities induce a DAG over conflicts
//! (earlier item → later item), and the greedy result is the unique fixed
//! point of the rule — the lexicographically-first MIS of the conflict graph.
//!
//! [`ConflictDag`] captures exactly that structure, and
//! [`repair_fixed_point`] is the round machinery of Algorithm 2 generalized
//! to start from *any* consistent partial state: given a set of items whose
//! decisions may have become stale (because conflicts were added or removed),
//! it re-decides them in priority order, in synchronous rounds, propagating
//! to later conflicting items whenever a decision flips, until the fixed
//! point is reached.
//!
//! Two ways to use it:
//!
//! * **from scratch** — seed every item with all decisions `false`; the run
//!   is then exactly the rounds algorithm (each round decides the items none
//!   of whose earlier conflicts are still pending), and the number of rounds
//!   is the dependence length of the DAG;
//! * **incrementally** — keep the previous fixed point, seed only the items
//!   touched by a batch of conflict insertions/deletions. This is what the
//!   batch-dynamic `greedy_engine` crate does; the repaired state is provably
//!   equal to a from-scratch run on the updated conflict structure (changes
//!   can only propagate from an item to *later* items, so re-deciding the
//!   seeds and their downstream suffices).
//!
//! The driver keeps its work proportional to the affected sub-DAG: pending
//! items carry incrementally-maintained in-degree counters (earlier pending
//! conflicts), so the per-round ready test is a zero check rather than a
//! conflict-list rescan, and a flip wakes only the later conflicts whose
//! decision would actually change against the current state. Implementations
//! can further override [`ConflictDag::decide`] (with auxiliary state kept
//! via [`ConflictDag::on_flip`]) and the pending-conflict walk — the
//! engine's edge-slot matching uses both to make decisions O(1) and
//! bookkeeping O(pending incident).
//!
//! Every parallel step is deterministic (order-preserving parallel maps, no
//! data races), so the repaired state is byte-identical across thread counts.

use rayon::prelude::*;

/// A set of items with fixed priorities and a symmetric conflict relation.
///
/// Implementors provide the *structure*; the greedy rule itself lives in
/// [`repair_fixed_point`]. Priorities must be a total order that does not
/// change while a repair is running.
///
/// The priority key is an associated type so that differently-indexed item
/// spaces keep their natural tie-breaking: vertex-indexed DAGs (MIS) use
/// `(u64, u32)` — random hash then vertex id — while edge-indexed DAGs (the
/// engine's matching over stable edge slots) use `(u64, u64)` — random hash
/// then the packed canonical endpoint key, so the order is a property of the
/// *edge*, not of the slot its current incarnation happens to occupy.
pub trait ConflictDag: Sync {
    /// The priority key; lexicographically smaller = earlier (decided first).
    type Priority: Ord + Copy + Send + Sync;

    /// Number of items. Items are dense ids `0..len()`.
    fn len(&self) -> usize;

    /// True when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The priority key of `item`. Must be distinct across all items that can
    /// conflict or be seeded — pair a random hash with a per-item unique
    /// component to break ties. (Items that are never seeded and conflict
    /// with nothing — e.g. free slots of an edge-slot DAG — are inert and may
    /// share a sentinel key.)
    fn priority(&self, item: u32) -> Self::Priority;

    /// Calls `f` on every item conflicting with `item` (both earlier and
    /// later ones; the driver filters by priority).
    fn for_each_conflict(&self, item: u32, f: &mut dyn FnMut(u32));

    /// The greedy rule for `item` against the current `accepted` state:
    /// accepted iff no earlier conflicting item is. The default scans the
    /// conflict list; implementations that maintain auxiliary state through
    /// [`ConflictDag::on_flip`] can override it with an O(1) test (the
    /// engine's matching keeps the per-vertex earliest accepted incident
    /// edge, so its test reads two partner entries instead of walking two
    /// adjacency lists). An override must return exactly what the default
    /// would — the driver's correctness argument depends on the rule, not
    /// on how it is evaluated.
    fn decide(&self, item: u32, accepted: &[bool]) -> bool {
        let p = self.priority(item);
        let mut blocked = false;
        self.for_each_conflict(item, &mut |w| {
            if accepted[w as usize] && self.priority(w) < p {
                blocked = true;
            }
        });
        !blocked
    }

    /// Hook invoked by the driver immediately after it applies a decision
    /// flip of `item` (its flag in `accepted` is already updated). Sequential
    /// and deterministic; implementations use it to keep the auxiliary state
    /// behind a custom [`ConflictDag::decide`] in sync. The default does
    /// nothing.
    fn on_flip(&mut self, _item: u32, _accepted_now: bool, _accepted: &[bool]) {}

    /// Calls `f` on every **pending** item conflicting with `item` — the
    /// walk behind the driver's in-degree bookkeeping. The default filters
    /// [`ConflictDag::for_each_conflict`] through the flag array; an
    /// implementation that indexes its pending conflicts (the engine's
    /// matching keeps per-vertex pending-slot lists) can override it so the
    /// walk costs O(pending incident) instead of O(degree). Must enumerate
    /// exactly the pending conflicts, each once — duplicates would corrupt
    /// the in-degree counters.
    fn for_each_pending_conflict(&self, item: u32, pending_flag: &[bool], f: &mut dyn FnMut(u32)) {
        self.for_each_conflict(item, &mut |w| {
            if pending_flag[w as usize] {
                f(w);
            }
        });
    }

    /// Hook invoked when `item` joins the pending set, *after* the driver's
    /// in-degree count walk (so a custom pending index never shows an item
    /// its own entry walk). Default does nothing.
    fn on_enter_pending(&mut self, _item: u32) {}

    /// Hook invoked when `item` leaves the pending set (decided, before the
    /// release walks of its round). Default does nothing.
    fn on_retire_pending(&mut self, _item: u32) {}
}

/// Work counters reported by [`repair_fixed_point`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Synchronous rounds until the fixed point (the dependence length of
    /// the affected sub-DAG).
    pub rounds: u64,
    /// Item re-decisions performed (an item may be re-decided more than once
    /// when a stale earlier conflict settles after it).
    pub decided: u64,
    /// Decision flips applied (size of the gross change stream, not the net
    /// changed set).
    pub flips: u64,
    /// Largest single-round ready set — the peak per-round work (parallelism
    /// available) of this repair. `decided / rounds` gives the mean.
    pub max_frontier: u64,
}

/// Reusable working memory for [`repair_fixed_point_with_scratch`].
///
/// A repair needs three dense arrays over the items: the pending flags, the
/// first-touch flags, and the pending in-degree counters (earlier *pending*
/// conflicts per pending item — the round driver's ready test). Allocating
/// and zeroing them per call costs O(n) even when the repair itself only
/// touches O(Δ) items — the dominant cost of a tiny batch on a large
/// structure. A `RepairScratch` keeps the arrays alive between repairs and
/// resets them in O(items touched): the pending flags and in-degree counters
/// self-clear as the rounds drain, and the touched flags are cleared by
/// walking the first-touch list. Holding one per maintained state (as
/// `greedy_engine::Engine` does) makes a small repair's cost proportional to
/// the affected sub-DAG, not to the whole item set.
#[derive(Debug, Clone, Default)]
pub struct RepairScratch {
    pending_flag: Vec<bool>,
    touched_flag: Vec<bool>,
    /// `indeg[v]` = number of earlier-priority conflicts of `v` currently
    /// pending; maintained incrementally (+1 when such a conflict enters
    /// pending, -1 when it retires), so the per-round ready test is a plain
    /// zero check instead of a conflict-list rescan. Nonzero only while `v`
    /// is pending, hence self-clearing.
    indeg: Vec<u32>,
    /// Flags cleared while resetting after the last repair — the O(Δ) bound
    /// the reuse buys, exposed so tests can assert a small repair on a large
    /// DAG never pays an O(n) reset.
    last_reset_items: usize,
}

impl RepairScratch {
    /// An empty scratch; the flag arrays grow lazily to the DAG size on
    /// first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for a DAG of `n` items, so the first repair does
    /// not pay the growth either.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            pending_flag: vec![false; n],
            touched_flag: vec![false; n],
            indeg: vec![0; n],
            last_reset_items: 0,
        }
    }

    /// Number of flags the reset after the most recent repair had to clear —
    /// proportional to the items that repair touched, never to the DAG size.
    pub fn last_reset_items(&self) -> usize {
        self.last_reset_items
    }

    /// Grows (never shrinks) the flag arrays to cover `n` items. Existing
    /// entries are all `false`/`0` between repairs, so growth keeps the
    /// all-clear invariant.
    fn ensure(&mut self, n: usize) {
        if self.pending_flag.len() < n {
            self.pending_flag.resize(n, false);
            self.touched_flag.resize(n, false);
            self.indeg.resize(n, 0);
        }
    }
}

/// Re-decides `seeds` (and everything downstream of any decision flip) under
/// the greedy rule, mutating `accepted` in place until the fixed point.
///
/// Allocates fresh working memory per call; batch-dynamic callers repairing
/// the same structure repeatedly should hold a [`RepairScratch`] and call
/// [`repair_fixed_point_with_scratch`] so a small repair costs O(Δ), not
/// O(n).
///
/// Returns the **net** changed items — those whose final decision differs
/// from their decision on entry — sorted ascending, plus work counters.
///
/// Correctness contract: on entry, every item *not* in `seeds` must already
/// hold the greedy fixed-point decision for the current conflict structure
/// unless one of its earlier conflicts is seeded. Seeding every endpoint of
/// each inserted/deleted conflict satisfies this, as does seeding all items
/// over an all-`false` state (the from-scratch run).
///
/// # Panics
/// Panics if `accepted.len() != dag.len()` or a seed id is out of range.
pub fn repair_fixed_point<D: ConflictDag>(
    dag: &mut D,
    accepted: &mut [bool],
    seeds: &[u32],
) -> (Vec<u32>, RepairStats) {
    let mut scratch = RepairScratch::new();
    repair_fixed_point_with_scratch(dag, accepted, seeds, &mut scratch)
}

/// [`repair_fixed_point`] with caller-owned working memory: the dense flag
/// arrays live in `scratch` and are reset in O(items touched) on the way
/// out, so repeated small repairs on a large DAG never pay a per-call O(n).
///
/// # Panics
/// Panics if `accepted.len() != dag.len()` or a seed id is out of range.
pub fn repair_fixed_point_with_scratch<D: ConflictDag>(
    dag: &mut D,
    accepted: &mut [bool],
    seeds: &[u32],
    scratch: &mut RepairScratch,
) -> (Vec<u32>, RepairStats) {
    let n = dag.len();
    assert_eq!(
        accepted.len(),
        n,
        "repair_fixed_point: state covers {} items but the DAG has {n}",
        accepted.len()
    );
    scratch.ensure(n);

    let mut stats = RepairStats::default();
    let pending_flag = &mut scratch.pending_flag;
    let indeg = &mut scratch.indeg;

    // Adds `v` to the pending set, updating the in-degree bookkeeping on
    // both sides: `v` counts its earlier pending conflicts, and registers
    // itself with its later pending conflicts. Entries and retirements are
    // symmetric, so every counter returns to zero as the rounds drain —
    // the self-clearing property the O(Δ) scratch reset relies on.
    fn enter<D: ConflictDag>(
        dag: &mut D,
        v: u32,
        pending_flag: &mut [bool],
        indeg: &mut [u32],
        pending: &mut Vec<u32>,
    ) {
        debug_assert!(!pending_flag[v as usize]);
        debug_assert_eq!(indeg[v as usize], 0);
        pending_flag[v as usize] = true;
        let pv = dag.priority(v);
        let mut earlier = 0u32;
        dag.for_each_pending_conflict(v, pending_flag, &mut |w| {
            if w != v {
                if dag.priority(w) < pv {
                    earlier += 1;
                } else {
                    indeg[w as usize] += 1;
                }
            }
        });
        indeg[v as usize] = earlier;
        dag.on_enter_pending(v);
        pending.push(v);
    }

    let mut pending: Vec<u32> = Vec::with_capacity(seeds.len());
    for &s in seeds {
        assert!(
            (s as usize) < n,
            "repair_fixed_point: seed {s} out of range"
        );
        if !pending_flag[s as usize] {
            enter(dag, s, pending_flag, indeg, &mut pending);
        }
    }

    // First-touch snapshot, so the net changed set can be computed without
    // copying the whole state: `touched[i]` pairs an item with its decision
    // before its first re-decision in this repair.
    let touched_flag = &mut scratch.touched_flag;
    let mut touched: Vec<(u32, bool)> = Vec::new();

    while !pending.is_empty() {
        stats.rounds += 1;

        // An item is ready when no *earlier* conflicting item is still
        // pending — i.e. its maintained in-degree is zero: its earlier
        // conflicts cannot change this round, so its decision reads a
        // settled frontier. At least the globally earliest pending item is
        // always ready, so every round makes progress. The counter check
        // replaces a per-round conflict-list rescan, so a pending item's
        // lists are walked O(1) times per pending episode, not once per
        // round it waits.
        let indeg_ref: &[u32] = indeg;
        let ready: Vec<u32> = pending
            .iter()
            .copied()
            .filter(|&v| indeg_ref[v as usize] == 0)
            .collect();

        // Greedy rule, computed in parallel against the pre-round state. Two
        // ready items are never earlier/later conflicts of one another (the
        // earlier one would have blocked the later one's readiness), so the
        // reads are race-free even conceptually.
        let accepted_ref = &*accepted;
        let dag_ref = &*dag;
        let decisions: Vec<bool> = ready
            .par_iter()
            .map(|&v| dag_ref.decide(v, accepted_ref))
            .collect();
        stats.decided += ready.len() as u64;
        stats.max_frontier = stats.max_frontier.max(ready.len() as u64);

        // Retire the ready items: clear their flags and pending-index
        // entries first (ready items never conflict with one another, but
        // their release walks share later pending targets), then release
        // their holds on later pending conflicts.
        for &v in &ready {
            pending_flag[v as usize] = false;
            dag.on_retire_pending(v);
        }
        let mut next: Vec<u32> = pending
            .iter()
            .copied()
            .filter(|&v| pending_flag[v as usize])
            .collect();
        for &v in &ready {
            let pv = dag.priority(v);
            dag.for_each_pending_conflict(v, pending_flag, &mut |w| {
                if dag.priority(w) > pv {
                    indeg[w as usize] -= 1;
                }
            });
        }
        // Apply decisions and propagate: every *later* conflict of a flipped
        // item must be re-checked. Sequential, but linear in the flip
        // frontier — the parallel work above dominates.
        for (&v, &dec) in ready.iter().zip(&decisions) {
            if !touched_flag[v as usize] {
                touched_flag[v as usize] = true;
                touched.push((v, accepted[v as usize]));
            }
            if accepted[v as usize] != dec {
                accepted[v as usize] = dec;
                stats.flips += 1;
                dag.on_flip(v, dec, accepted);
                let pv = dag.priority(v);
                // A flip only invalidates later conflicts on one side of the
                // rule: flipping *in* newly blocks only currently-accepted
                // later conflicts, and flipping *out* can unblock only
                // currently-unaccepted ones — a later conflict whose
                // decision sits on the other side keeps its value under the
                // greedy rule no matter what. On top of that, a candidate is
                // only woken when its decision would change *against the
                // current state* (`decide(w) != accepted[w]`): a candidate
                // that stays blocked by some other accepted item is already
                // rule-consistent, and if that blocker ever flips out, its
                // own wake walk re-examines the candidate. Together the
                // filters keep the pending set proportional to the real
                // flip cascade instead of the flip frontier's whole
                // neighborhood.
                //
                // Collect first — `enter` needs the flag array the walk
                // borrows — then enter one at a time, so each entry's
                // in-degree count sees exactly the previously-entered items
                // (entering two mutually-conflicting wake-ups in one go
                // would double-count their edge).
                let mut wake: Vec<u32> = Vec::new();
                dag.for_each_conflict(v, &mut |w| {
                    // Flag and state loads first — the priority lookup is
                    // the wide one, and most conflicts fail the cheap tests.
                    if !pending_flag[w as usize]
                        && accepted[w as usize] == dec
                        && dag.priority(w) > pv
                    {
                        wake.push(w);
                    }
                });
                for w in wake {
                    if !pending_flag[w as usize] && dag.decide(w, accepted) != accepted[w as usize]
                    {
                        enter(dag, w, pending_flag, indeg, &mut next);
                    }
                }
            }
        }
        pending = next;
    }

    // Reset the scratch in O(items touched): the pending flags self-cleared
    // as the rounds drained (the loop only exits once the pending set is
    // empty), so only the first-touch flags need clearing — and the
    // first-touch list enumerates them exactly.
    scratch.last_reset_items = touched.len();
    let mut changed: Vec<u32> = Vec::new();
    for (v, before) in touched {
        scratch.touched_flag[v as usize] = false;
        if accepted[v as usize] != before {
            changed.push(v);
        }
    }
    changed.sort_unstable();
    (changed, stats)
}

/// Runs the greedy rule from scratch over `dag`: all items seeded, state
/// starting all-`false`. Returns the accepted flags and the stats (whose
/// `rounds` is the dependence length of the DAG).
pub fn greedy_from_scratch<D: ConflictDag>(dag: &mut D) -> (Vec<bool>, RepairStats) {
    let mut accepted = vec![false; dag.len()];
    let seeds: Vec<u32> = (0..dag.len() as u32).collect();
    let (_, stats) = repair_fixed_point(dag, &mut accepted, &seeds);
    (accepted, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::sequential::sequential_mis;
    use crate::ordering::random_permutation;
    use greedy_graph::csr::Graph;
    use greedy_graph::gen::random::random_graph;
    use greedy_graph::gen::structured::{complete_graph, path_graph, star_graph};
    use greedy_prims::permutation::Permutation;

    /// MIS as a ConflictDag: vertices with permutation ranks as priorities.
    struct MisDag<'a> {
        graph: &'a Graph,
        pi: &'a Permutation,
    }

    impl ConflictDag for MisDag<'_> {
        type Priority = (u64, u32);
        fn len(&self) -> usize {
            self.graph.num_vertices()
        }
        fn priority(&self, v: u32) -> (u64, u32) {
            (self.pi.rank_of(v) as u64, v)
        }
        fn for_each_conflict(&self, v: u32, f: &mut dyn FnMut(u32)) {
            for &w in self.graph.neighbors(v) {
                f(w);
            }
        }
    }

    fn mis_of(accepted: &[bool]) -> Vec<u32> {
        accepted
            .iter()
            .enumerate()
            .filter_map(|(v, &a)| a.then_some(v as u32))
            .collect()
    }

    #[test]
    fn from_scratch_equals_sequential_greedy() {
        for seed in 0..5 {
            let g = random_graph(400, 1_600, seed);
            let pi = random_permutation(400, seed + 11);
            let mut dag = MisDag { graph: &g, pi: &pi };
            let (accepted, stats) = greedy_from_scratch(&mut dag);
            assert_eq!(mis_of(&accepted), sequential_mis(&g, &pi), "seed {seed}");
            assert!(stats.rounds >= 1);
        }
    }

    #[test]
    fn from_scratch_on_structured_graphs() {
        for (g, n) in [
            (path_graph(50), 50),
            (star_graph(33), 33),
            (complete_graph(20), 20),
        ] {
            let pi = random_permutation(n, 3);
            let mut dag = MisDag { graph: &g, pi: &pi };
            let (accepted, _) = greedy_from_scratch(&mut dag);
            assert_eq!(mis_of(&accepted), sequential_mis(&g, &pi));
        }
    }

    #[test]
    fn empty_seed_set_is_a_noop() {
        let g = random_graph(100, 300, 1);
        let pi = random_permutation(100, 2);
        let mut dag = MisDag { graph: &g, pi: &pi };
        let (mut accepted, _) = greedy_from_scratch(&mut dag);
        let before = accepted.clone();
        let (changed, stats) = repair_fixed_point(&mut dag, &mut accepted, &[]);
        assert!(changed.is_empty());
        assert_eq!(stats.rounds, 0);
        assert_eq!(accepted, before);
    }

    #[test]
    fn reseeding_a_fixed_point_changes_nothing() {
        // Re-deciding every item of an already-consistent state must leave it
        // untouched and report an empty net change set.
        let g = random_graph(300, 1_200, 4);
        let pi = random_permutation(300, 5);
        let mut dag = MisDag { graph: &g, pi: &pi };
        let (mut accepted, _) = greedy_from_scratch(&mut dag);
        let before = accepted.clone();
        let seeds: Vec<u32> = (0..300).collect();
        let (changed, _) = repair_fixed_point(&mut dag, &mut accepted, &seeds);
        assert!(changed.is_empty(), "changed = {changed:?}");
        assert_eq!(accepted, before);
    }

    #[test]
    fn net_change_set_reports_only_real_flips() {
        // Corrupt one vertex's decision, reseed it: the repair must restore
        // the fixed point and report exactly the vertices whose final state
        // differs from the corrupted entry state.
        let g = path_graph(10);
        let pi = Permutation::identity(10);
        let mut dag = MisDag { graph: &g, pi: &pi };
        let (mut accepted, _) = greedy_from_scratch(&mut dag);
        // Path with identity order: MIS = {0, 2, 4, 6, 8}.
        assert_eq!(mis_of(&accepted), vec![0, 2, 4, 6, 8]);
        // Corrupt vertex 4 to false; downstream (5..) is then stale too, but
        // the repair only needs the corrupted vertex as a seed.
        accepted[4] = false;
        let (changed, _) = repair_fixed_point(&mut dag, &mut accepted, &[4]);
        assert_eq!(mis_of(&accepted), vec![0, 2, 4, 6, 8]);
        assert_eq!(changed, vec![4], "net change is the restored vertex only");
    }

    #[test]
    fn scratch_reuse_matches_fresh_and_resets_in_o_delta() {
        // A reused scratch must (a) produce exactly the same repairs as the
        // allocating path and (b) reset in work proportional to the repair,
        // not the DAG — the property that makes tiny batches on big graphs
        // cheap for the batch-dynamic engine.
        let n = 20_000;
        let g = random_graph(n, 60_000, 9);
        let pi = random_permutation(n, 10);
        let mut dag = MisDag { graph: &g, pi: &pi };
        let (mut fresh, _) = greedy_from_scratch(&mut dag);
        let mut reused = fresh.clone();
        let mut scratch = RepairScratch::with_capacity(dag.len());
        for v in [5u32, 499, 13_000, 19_999] {
            fresh[v as usize] = !fresh[v as usize];
            reused[v as usize] = !reused[v as usize];
            let (c1, s1) = repair_fixed_point(&mut dag, &mut fresh, &[v]);
            let (c2, s2) =
                repair_fixed_point_with_scratch(&mut dag, &mut reused, &[v], &mut scratch);
            assert_eq!(fresh, reused, "state diverged after seeding {v}");
            assert_eq!((c1, s1), (c2, s2), "report diverged after seeding {v}");
            assert!(
                scratch.last_reset_items() < n / 10,
                "single-seed repair reset {} of {n} flags",
                scratch.last_reset_items()
            );
        }
        // The scratch also drives a full from-scratch run correctly.
        let mut rebuilt = vec![false; dag.len()];
        let seeds: Vec<u32> = (0..dag.len() as u32).collect();
        let _ = repair_fixed_point_with_scratch(&mut dag, &mut rebuilt, &seeds, &mut scratch);
        assert_eq!(rebuilt, fresh);
    }

    #[test]
    #[should_panic(expected = "state covers")]
    fn mismatched_state_length_panics() {
        let g = path_graph(4);
        let pi = Permutation::identity(4);
        let mut dag = MisDag { graph: &g, pi: &pi };
        let mut accepted = vec![false; 3];
        let _ = repair_fixed_point(&mut dag, &mut accepted, &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_seed_panics() {
        let g = path_graph(4);
        let pi = Permutation::identity(4);
        let mut dag = MisDag { graph: &g, pi: &pi };
        let mut accepted = vec![false; 4];
        let _ = repair_fixed_point(&mut dag, &mut accepted, &[9]);
    }

    #[test]
    fn zero_item_dag() {
        let g = Graph::empty(0);
        let pi = Permutation::identity(0);
        let mut dag = MisDag { graph: &g, pi: &pi };
        let (accepted, stats) = greedy_from_scratch(&mut dag);
        assert!(accepted.is_empty());
        assert_eq!(stats.rounds, 0);
    }
}
