//! Maximal matching verification.

use greedy_graph::edge_list::EdgeList;
use rayon::prelude::*;

/// True if the edge ids in `matching` form a matching of `edges`: all ids are
/// in range, no id repeats, and no two matched edges share an endpoint.
pub fn verify_matching(edges: &EdgeList, matching: &[u32]) -> bool {
    let m = edges.num_edges();
    let mut seen_edge = vec![false; m];
    let mut covered = vec![false; edges.num_vertices()];
    for &e in matching {
        if e as usize >= m || seen_edge[e as usize] {
            return false;
        }
        seen_edge[e as usize] = true;
        let edge = edges.edge(e as usize);
        if covered[edge.u as usize] || covered[edge.v as usize] {
            return false;
        }
        covered[edge.u as usize] = true;
        covered[edge.v as usize] = true;
    }
    true
}

/// True if `matching` is maximal: every edge of the graph has at least one
/// endpoint covered by the matching.
pub fn verify_maximal(edges: &EdgeList, matching: &[u32]) -> bool {
    let mut covered = vec![false; edges.num_vertices()];
    for &e in matching {
        if e as usize >= edges.num_edges() {
            return false;
        }
        let edge = edges.edge(e as usize);
        covered[edge.u as usize] = true;
        covered[edge.v as usize] = true;
    }
    edges
        .edges()
        .par_iter()
        .all(|e| covered[e.u as usize] || covered[e.v as usize])
}

/// True if `matching` is a **maximal matching** of `edges`.
pub fn verify_maximal_matching(edges: &EdgeList, matching: &[u32]) -> bool {
    verify_matching(edges, matching) && verify_maximal(edges, matching)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greedy_graph::gen::structured::{path_edge_list, star_edge_list};
    use greedy_graph::EdgeList;

    #[test]
    fn empty_matching_on_empty_graph() {
        let el = EdgeList::empty(3);
        assert!(verify_maximal_matching(&el, &[]));
    }

    #[test]
    fn empty_matching_on_nonempty_graph_is_not_maximal() {
        let el = path_edge_list(3);
        assert!(verify_matching(&el, &[]));
        assert!(!verify_maximal(&el, &[]));
    }

    #[test]
    fn path_graph_cases() {
        // P5 edges: 0:(0,1) 1:(1,2) 2:(2,3) 3:(3,4)
        let el = path_edge_list(5);
        assert!(verify_maximal_matching(&el, &[0, 2]));
        assert!(verify_maximal_matching(&el, &[1, 3]));
        assert!(verify_maximal_matching(&el, &[0, 3]));
        assert!(!verify_matching(&el, &[0, 1])); // share vertex 1
        assert!(!verify_maximal(&el, &[1])); // edge 3 uncovered
        assert!(!verify_maximal_matching(&el, &[1]));
    }

    #[test]
    fn star_single_edge_is_maximal() {
        let el = star_edge_list(6);
        assert!(verify_maximal_matching(&el, &[2]));
        assert!(!verify_matching(&el, &[0, 1])); // both use the center
    }

    #[test]
    fn rejects_out_of_range_and_duplicates() {
        let el = path_edge_list(4);
        assert!(!verify_matching(&el, &[9]));
        assert!(!verify_matching(&el, &[0, 0]));
        assert!(!verify_maximal(&el, &[9]));
    }
}
