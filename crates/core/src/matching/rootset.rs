//! The linear-work root-set maximal matching (Lemma 5.3).
//!
//! Each vertex keeps its incident edges **sorted by priority** (a bucket sort
//! over the random edge priorities, as the paper prescribes) plus a cursor
//! that advances past edges already decided, so every incidence entry is
//! crossed O(1) times. An edge is *ready* when it is the earliest remaining
//! edge at **both** of its endpoints — the `mmCheck` of Lemma 5.2. Each step:
//!
//! 1. the ready edges join the matching and saturate their endpoints;
//! 2. every edge incident to a newly saturated vertex dies;
//! 3. the far endpoints of the dead edges are re-checked for a newly ready
//!    edge (deduplicated per step), producing the next ready set.
//!
//! The number of steps equals the dependence length of the edge priority DAG,
//! and the total work is O(n + m).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use greedy_graph::edge_list::EdgeList;
use greedy_prims::permutation::Permutation;
use greedy_prims::sort::sort_by_key_parallel;
use rayon::prelude::*;

use crate::stats::WorkStats;

/// Runs the root-set (linear-work) parallel greedy maximal matching. Returns
/// the same matching as the sequential greedy algorithm for π.
pub fn rootset_matching(edges: &EdgeList, pi: &Permutation) -> Vec<u32> {
    rootset_matching_with_stats(edges, pi).0
}

/// Runs the root-set matching with counters (`rounds` = steps of the outer
/// loop = dependence length of the edge priority DAG).
pub fn rootset_matching_with_stats(edges: &EdgeList, pi: &Permutation) -> (Vec<u32>, WorkStats) {
    let m = edges.num_edges();
    let n = edges.num_vertices();
    assert_eq!(
        pi.len(),
        m,
        "rootset_matching: permutation covers {} elements but there are {} edges",
        pi.len(),
        m
    );
    let rank = pi.rank();
    let mut stats = WorkStats::new();

    // Per-vertex incidence lists sorted by edge priority (earliest first),
    // stored flat as a CSR-style array: one parallel radix sort of all 2m
    // arcs by the packed `(vertex, priority)` key groups arcs by vertex *and*
    // orders each vertex's arcs by rank in the same linear-work pass — the
    // bucket sort of Lemma 5.3. The key is precomputed into the records
    // (vertex in the high half, rank in the low half) so each rank lookup
    // happens once, not once per radix pass.
    let mut arcs: Vec<(u64, u32)> = (0..m as u32)
        .into_par_iter()
        .flat_map_iter(|id| {
            let e = edges.edge(id as usize);
            let r = rank[id as usize] as u64;
            [
                (((e.u as u64) << 32) | r, id),
                (((e.v as u64) << 32) | r, id),
            ]
        })
        .collect();
    sort_by_key_parallel(&mut arcs, |&(k, _)| k);
    // Arcs are grouped by vertex (the key's high half), so each vertex's
    // offset is a binary search away — computed in parallel rather than with
    // a serial counting scan.
    let inc_offsets: Vec<usize> = (0..(n + 1) as u64)
        .into_par_iter()
        .map(|v| arcs.partition_point(|&(k, _)| (k >> 32) < v))
        .collect();
    let inc: Vec<u32> = arcs.into_par_iter().map(|(_, e)| e).collect();
    let incidence = |v: u32| &inc[inc_offsets[v as usize]..inc_offsets[v as usize + 1]];
    stats.edge_work += 2 * m as u64;

    // Vertex saturation + per-vertex cursor into its sorted incidence list.
    let vertex_matched: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let cursor: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    let stamp: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    let in_matching: Vec<AtomicBool> = (0..m).map(|_| AtomicBool::new(false)).collect();
    let edge_work = AtomicU64::new(0);

    // An edge is dead if either endpoint is saturated.
    let edge_dead = |e: u32| {
        let edge = edges.edge(e as usize);
        vertex_matched[edge.u as usize].load(Ordering::SeqCst)
            || vertex_matched[edge.v as usize].load(Ordering::SeqCst)
    };

    // First remaining (not dead) edge at vertex `v`, advancing the cursor
    // past dead edges (the amortized scan of Lemma 5.2).
    let first_alive = |v: u32| -> Option<u32> {
        if vertex_matched[v as usize].load(Ordering::SeqCst) {
            return None;
        }
        let list = incidence(v);
        let mut i = cursor[v as usize].load(Ordering::SeqCst);
        let mut scanned = 0u64;
        while i < list.len() && edge_dead(list[i]) {
            i += 1;
            scanned += 1;
        }
        cursor[v as usize].store(i, Ordering::SeqCst);
        edge_work.fetch_add(scanned + 1, Ordering::Relaxed);
        (i < list.len()).then(|| list[i])
    };

    // mmCheck: the ready edge at v, if any — the first alive edge at v that
    // is also the first alive edge at its other endpoint.
    let mm_check = |v: u32| -> Option<u32> {
        let e = first_alive(v)?;
        let other = edges.edge(e as usize).other(v);
        (first_alive(other) == Some(e)).then_some(e)
    };

    // Initial ready set: check every vertex once. A ready edge is discovered
    // from both of its endpoints, so deduplicate.
    let mut ready: Vec<u32> = (0..n as u32).into_par_iter().filter_map(mm_check).collect();
    ready.par_sort_unstable();
    ready.dedup();
    stats.vertex_work += n as u64;

    while !ready.is_empty() {
        stats.rounds += 1;
        stats.steps += 1;
        stats.vertex_work += ready.len() as u64;

        // Phase 1: accept the ready edges and saturate their endpoints.
        ready.par_iter().for_each(|&e| {
            in_matching[e as usize].store(true, Ordering::SeqCst);
            let edge = edges.edge(e as usize);
            vertex_matched[edge.u as usize].store(true, Ordering::SeqCst);
            vertex_matched[edge.v as usize].store(true, Ordering::SeqCst);
        });

        // Phase 2: every edge incident to a newly saturated endpoint is now
        // dead; re-check the far endpoint of each such edge (once per step).
        let step_id = stats.steps;
        let candidates: Vec<u32> = ready
            .par_iter()
            .flat_map_iter(|&e| {
                let edge = edges.edge(e as usize);
                [edge.u, edge.v].into_iter()
            })
            .flat_map_iter(|v| {
                incidence(v)
                    .iter()
                    .map(move |&f| edges.edge(f as usize).other(v))
            })
            .filter(|&w| {
                !vertex_matched[w as usize].load(Ordering::SeqCst)
                    && stamp[w as usize].swap(step_id, Ordering::SeqCst) != step_id
            })
            .collect();
        edge_work.fetch_add(
            ready
                .iter()
                .map(|&e| {
                    let edge = edges.edge(e as usize);
                    (incidence(edge.u).len() + incidence(edge.v).len()) as u64
                })
                .sum::<u64>(),
            Ordering::Relaxed,
        );

        // Phase 3: mmCheck the candidate vertices; the ready edges they find
        // form the next step's set (deduplicated, since both endpoints of a
        // newly ready edge may be candidates).
        let mut next_ready: Vec<u32> = candidates.par_iter().filter_map(|&v| mm_check(v)).collect();
        next_ready.par_sort_unstable();
        next_ready.dedup();
        stats.vertex_work += candidates.len() as u64;

        ready = next_ready;
    }

    stats.edge_work += edge_work.load(Ordering::Relaxed);
    let matching: Vec<u32> = (0..m as u32)
        .filter(|&e| in_matching[e as usize].load(Ordering::SeqCst))
        .collect();
    (matching, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::rounds::rounds_matching_with_stats;
    use crate::matching::sequential::sequential_matching;
    use crate::matching::verify::verify_maximal_matching;
    use crate::ordering::{identity_permutation, random_edge_permutation};
    use greedy_graph::gen::random::random_edge_list;
    use greedy_graph::gen::rmat::{rmat_edge_list, RmatParams};
    use greedy_graph::gen::structured::{
        complete_edge_list, cycle_edge_list, grid_edge_list, path_edge_list, star_edge_list,
    };
    use greedy_graph::EdgeList;

    #[test]
    fn empty_edge_list() {
        let el = EdgeList::empty(4);
        assert!(rootset_matching(&el, &identity_permutation(0)).is_empty());
    }

    #[test]
    fn single_edge() {
        let el = EdgeList::from_pairs(2, vec![(0, 1)]);
        assert_eq!(rootset_matching(&el, &identity_permutation(1)), vec![0]);
    }

    #[test]
    fn matches_sequential_on_structured_graphs() {
        let lists: Vec<(&str, EdgeList)> = vec![
            ("path", path_edge_list(60)),
            ("cycle", cycle_edge_list(57)),
            ("star", star_edge_list(45)),
            ("complete", complete_edge_list(18)),
            ("grid", grid_edge_list(8, 9)),
        ];
        for (name, el) in lists {
            for seed in 0..3 {
                let pi = random_edge_permutation(el.num_edges(), seed);
                assert_eq!(
                    rootset_matching(&el, &pi),
                    sequential_matching(&el, &pi),
                    "mismatch on {name} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..6 {
            let el = random_edge_list(400, 1_600, seed);
            let pi = random_edge_permutation(el.num_edges(), seed + 31);
            let mm = rootset_matching(&el, &pi);
            assert_eq!(mm, sequential_matching(&el, &pi), "seed {seed}");
            assert!(verify_maximal_matching(&el, &mm));
        }
    }

    #[test]
    fn matches_sequential_on_rmat() {
        let el = rmat_edge_list(10, 6_000, RmatParams::default(), 4);
        let pi = random_edge_permutation(el.num_edges(), 5);
        assert_eq!(rootset_matching(&el, &pi), sequential_matching(&el, &pi));
    }

    #[test]
    fn step_count_matches_rounds_algorithm() {
        for seed in 0..3 {
            let el = random_edge_list(250, 900, seed);
            let pi = random_edge_permutation(el.num_edges(), seed + 3);
            let (_, a) = rootset_matching_with_stats(&el, &pi);
            let (_, b) = rounds_matching_with_stats(&el, &pi);
            assert_eq!(a.rounds, b.rounds, "seed {seed}");
        }
    }

    #[test]
    fn work_is_near_linear() {
        let el = random_edge_list(2_000, 8_000, 9);
        let pi = random_edge_permutation(el.num_edges(), 10);
        let (_, stats) = rootset_matching_with_stats(&el, &pi);
        let m = el.num_edges() as u64;
        assert!(
            stats.edge_work <= 12 * m,
            "edge work {} not close to linear in m = {m}",
            stats.edge_work
        );
    }

    #[test]
    fn identity_order_on_path() {
        let el = path_edge_list(41);
        let pi = identity_permutation(el.num_edges());
        assert_eq!(rootset_matching(&el, &pi), sequential_matching(&el, &pi));
    }
}
