//! Algorithm 4: the parallel greedy maximal matching in synchronous rounds.
//!
//! Every round, the edges with no earlier *undecided* adjacent edge join the
//! matching and knock out their neighbors. By the reduction to MIS on the
//! line graph (Lemma 5.1), the number of rounds is the dependence length of
//! the line graph under π, i.e. O(log² m) w.h.p. for a random edge order.
//!
//! Like [`crate::mis::rounds`], this is the clear-but-not-work-efficient
//! formulation (each round touches every remaining edge); the linear-work
//! versions are [`crate::matching::prefix`] and [`crate::matching::rootset`].

use greedy_graph::edge_list::EdgeList;
use greedy_prims::permutation::Permutation;
use rayon::prelude::*;

use crate::matching::{collect_in_edges, EdgeState};
use crate::stats::WorkStats;

/// Runs Algorithm 4; returns the same matching as the sequential greedy
/// algorithm for π, as sorted edge ids.
pub fn rounds_matching(edges: &EdgeList, pi: &Permutation) -> Vec<u32> {
    rounds_matching_with_stats(edges, pi).0
}

/// Runs Algorithm 4 with counters; `stats.rounds` is the dependence length of
/// the edge priority DAG.
pub fn rounds_matching_with_stats(edges: &EdgeList, pi: &Permutation) -> (Vec<u32>, WorkStats) {
    let m = edges.num_edges();
    assert_eq!(
        pi.len(),
        m,
        "rounds_matching: permutation covers {} elements but there are {} edges",
        pi.len(),
        m
    );
    let rank = pi.rank();
    let incidence = edges.incidence_lists();
    let mut state = vec![EdgeState::Undecided; m];
    let mut remaining: Vec<u32> = (0..m as u32).collect();
    let mut stats = WorkStats::new();

    // Adjacent edge ids of `e` (edges sharing an endpoint), excluding `e`.
    let adjacent = |e: u32| {
        let edge = edges.edge(e as usize);
        incidence[edge.u as usize]
            .iter()
            .chain(incidence[edge.v as usize].iter())
            .copied()
            .filter(move |&f| f != e)
    };

    while !remaining.is_empty() {
        stats.rounds += 1;
        stats.steps += 1;

        // Phase 1: roots — undecided edges whose earlier adjacent edges are
        // all decided Out.
        let is_root: Vec<bool> = remaining
            .par_iter()
            .map(|&e| {
                adjacent(e).all(|f| {
                    rank[f as usize] > rank[e as usize] || state[f as usize] == EdgeState::Out
                })
            })
            .collect();
        let mut root_flags = vec![false; m];
        for (i, &e) in remaining.iter().enumerate() {
            root_flags[e as usize] = is_root[i];
        }

        // Phase 2: owner-computed state transition.
        let new_states: Vec<EdgeState> = remaining
            .par_iter()
            .map(|&e| {
                if root_flags[e as usize] {
                    EdgeState::In
                } else if adjacent(e).any(|f| root_flags[f as usize]) {
                    EdgeState::Out
                } else {
                    EdgeState::Undecided
                }
            })
            .collect();

        stats.vertex_work += remaining.len() as u64;
        stats.edge_work += remaining
            .par_iter()
            .map(|&e| adjacent(e).count() as u64)
            .sum::<u64>();

        let mut next_remaining = Vec::with_capacity(remaining.len());
        for (i, &e) in remaining.iter().enumerate() {
            match new_states[i] {
                EdgeState::Undecided => next_remaining.push(e),
                s => state[e as usize] = s,
            }
        }
        assert!(
            next_remaining.len() < remaining.len(),
            "rounds_matching: no progress in a round"
        );
        remaining = next_remaining;
    }

    (collect_in_edges(&state), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::sequential::sequential_matching;
    use crate::matching::verify::verify_maximal_matching;
    use crate::ordering::{identity_permutation, random_edge_permutation};
    use greedy_graph::gen::random::random_edge_list;
    use greedy_graph::gen::rmat::{rmat_edge_list, RmatParams};
    use greedy_graph::gen::structured::{
        complete_edge_list, cycle_edge_list, path_edge_list, star_edge_list,
    };
    use greedy_graph::EdgeList;

    #[test]
    fn empty_edge_list() {
        let el = EdgeList::empty(3);
        assert!(rounds_matching(&el, &identity_permutation(0)).is_empty());
    }

    #[test]
    fn matches_sequential_on_structured_graphs() {
        let lists: Vec<(&str, EdgeList)> = vec![
            ("path", path_edge_list(40)),
            ("cycle", cycle_edge_list(41)),
            ("star", star_edge_list(30)),
            ("complete", complete_edge_list(16)),
        ];
        for (name, el) in lists {
            for seed in 0..3 {
                let pi = random_edge_permutation(el.num_edges(), seed);
                assert_eq!(
                    rounds_matching(&el, &pi),
                    sequential_matching(&el, &pi),
                    "mismatch on {name} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..5 {
            let el = random_edge_list(300, 1_200, seed);
            let pi = random_edge_permutation(el.num_edges(), seed + 21);
            let mm = rounds_matching(&el, &pi);
            assert_eq!(mm, sequential_matching(&el, &pi), "seed {seed}");
            assert!(verify_maximal_matching(&el, &mm));
        }
    }

    #[test]
    fn matches_sequential_on_rmat() {
        let el = rmat_edge_list(9, 3_000, RmatParams::default(), 2);
        let pi = random_edge_permutation(el.num_edges(), 3);
        assert_eq!(rounds_matching(&el, &pi), sequential_matching(&el, &pi));
    }

    #[test]
    fn star_needs_one_round() {
        // All edges of a star conflict; the earliest one wins immediately and
        // knocks every other edge out in the same round.
        let el = star_edge_list(50);
        let pi = random_edge_permutation(el.num_edges(), 4);
        let (mm, stats) = rounds_matching_with_stats(&el, &pi);
        assert_eq!(mm.len(), 1);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn dependence_length_small_for_random_orders() {
        let el = random_edge_list(1_000, 5_000, 6);
        let pi = random_edge_permutation(el.num_edges(), 7);
        let (_, stats) = rounds_matching_with_stats(&el, &pi);
        assert!(stats.rounds < 60, "rounds = {}", stats.rounds);
    }
}
