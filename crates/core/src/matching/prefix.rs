//! The prefix-based parallel greedy maximal matching.
//!
//! The edge-side analogue of Algorithm 3: each round takes the next prefix of
//! edges in priority order, resolves it with parallel greedy steps (an edge
//! is accepted once every earlier adjacent edge is decided), then knocks out
//! the later edges that share an endpoint with the newly accepted ones.
//! Smaller prefixes do less redundant work; larger prefixes expose more
//! parallelism; the matching is identical to the sequential greedy one for
//! every prefix size. This is the implementation benchmarked in Figure 2 and
//! Figure 4 of the paper.

use greedy_graph::edge_list::EdgeList;
use greedy_prims::permutation::Permutation;
use rayon::prelude::*;

use crate::matching::{collect_in_edges, EdgeState};
use crate::mis::prefix::PrefixPolicy;
use crate::stats::WorkStats;

/// Runs the prefix-based parallel greedy maximal matching. Returns the same
/// matching as [`crate::matching::sequential::sequential_matching`], as
/// sorted edge ids.
pub fn prefix_matching(edges: &EdgeList, pi: &Permutation, policy: PrefixPolicy) -> Vec<u32> {
    prefix_matching_with_stats(edges, pi, policy).0
}

/// Runs the prefix-based matching with counters: `rounds` = prefixes,
/// `steps` = inner steps, `vertex_work` = edge examinations, `edge_work` =
/// adjacency inspections.
pub fn prefix_matching_with_stats(
    edges: &EdgeList,
    pi: &Permutation,
    policy: PrefixPolicy,
) -> (Vec<u32>, WorkStats) {
    let m = edges.num_edges();
    assert_eq!(
        pi.len(),
        m,
        "prefix_matching: permutation covers {} elements but there are {} edges",
        pi.len(),
        m
    );
    let rank = pi.rank();
    let order = pi.order();
    let incidence = edges.incidence_lists();
    // The "maximum degree" knob for the adaptive policy is the maximum number
    // of edges adjacent to any single edge, bounded by twice the maximum
    // vertex degree.
    let max_edge_degree = 2 * edges.max_degree() as usize;

    let mut state = vec![EdgeState::Undecided; m];
    // A vertex is saturated once one of its edges is matched; saturation is
    // what knocks later edges out lazily.
    let mut vertex_matched = vec![false; edges.num_vertices()];
    let mut stats = WorkStats::new();
    let mut start = 0usize;

    let adjacent = |e: u32| {
        let edge = edges.edge(e as usize);
        incidence[edge.u as usize]
            .iter()
            .chain(incidence[edge.v as usize].iter())
            .copied()
            .filter(move |&f| f != e)
    };

    while start < m {
        let remaining = m - start;
        let k = policy.prefix_size(m, remaining, max_edge_degree, stats.rounds);
        let prefix = &order[start..start + k];
        stats.rounds += 1;

        // Lazy status update: an edge whose endpoint is already saturated is
        // knocked out as it enters its prefix.
        let mut active: Vec<u32> = prefix
            .iter()
            .copied()
            .filter(|&e| {
                if state[e as usize] != EdgeState::Undecided {
                    return false;
                }
                let edge = edges.edge(e as usize);
                if vertex_matched[edge.u as usize] || vertex_matched[edge.v as usize] {
                    state[e as usize] = EdgeState::Out;
                    false
                } else {
                    true
                }
            })
            .collect();
        // Work accounting (paper normalization): edges already decided when
        // their prefix arrives are charged one examination here; the active
        // ones are charged per inner step below, so prefix size 1 gives
        // exactly m units of work like the sequential algorithm.
        stats.vertex_work += (prefix.len() - active.len()) as u64;

        // Parallel greedy steps within the prefix. Every earlier edge outside
        // the prefix is already decided, so an active edge only waits on
        // earlier edges inside the prefix.
        while !active.is_empty() {
            stats.steps += 1;
            stats.vertex_work += active.len() as u64;

            let decisions: Vec<EdgeState> = active
                .par_iter()
                .map(|&e| {
                    let mut has_undecided_earlier = false;
                    for f in adjacent(e) {
                        if rank[f as usize] < rank[e as usize] {
                            match state[f as usize] {
                                EdgeState::In => return EdgeState::Out,
                                EdgeState::Undecided => has_undecided_earlier = true,
                                EdgeState::Out => {}
                            }
                        }
                    }
                    if has_undecided_earlier {
                        EdgeState::Undecided
                    } else {
                        EdgeState::In
                    }
                })
                .collect();
            stats.edge_work += active
                .par_iter()
                .map(|&e| adjacent(e).count() as u64)
                .sum::<u64>();

            let mut next_active = Vec::with_capacity(active.len());
            for (i, &e) in active.iter().enumerate() {
                match decisions[i] {
                    EdgeState::Undecided => next_active.push(e),
                    s => state[e as usize] = s,
                }
            }
            assert!(
                next_active.len() < active.len(),
                "prefix_matching: no progress within a prefix step"
            );
            active = next_active;
        }

        // Saturate the endpoints of the newly matched edges and knock out
        // their still-undecided later neighbors.
        let newly_in: Vec<u32> = prefix
            .iter()
            .copied()
            .filter(|&e| state[e as usize] == EdgeState::In)
            .collect();
        for &e in &newly_in {
            let edge = edges.edge(e as usize);
            vertex_matched[edge.u as usize] = true;
            vertex_matched[edge.v as usize] = true;
        }
        let knocked: Vec<u32> = newly_in
            .par_iter()
            .flat_map_iter(|&e| adjacent(e).filter(move |&f| rank[f as usize] > rank[e as usize]))
            .collect();
        stats.edge_work += newly_in
            .par_iter()
            .map(|&e| adjacent(e).count() as u64)
            .sum::<u64>();
        for f in knocked {
            if state[f as usize] == EdgeState::Undecided {
                state[f as usize] = EdgeState::Out;
            }
        }

        start += k;
    }

    (collect_in_edges(&state), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::sequential::sequential_matching;
    use crate::matching::verify::verify_maximal_matching;
    use crate::ordering::{identity_permutation, random_edge_permutation};
    use greedy_graph::gen::random::random_edge_list;
    use greedy_graph::gen::rmat::{rmat_edge_list, RmatParams};
    use greedy_graph::gen::structured::{
        complete_edge_list, cycle_edge_list, grid_edge_list, path_edge_list, star_edge_list,
    };
    use greedy_graph::EdgeList;

    fn policies() -> Vec<PrefixPolicy> {
        vec![
            PrefixPolicy::Fixed(1),
            PrefixPolicy::Fixed(13),
            PrefixPolicy::Fixed(500),
            PrefixPolicy::FractionOfInput(0.01),
            PrefixPolicy::FractionOfInput(1.0),
            PrefixPolicy::FractionOfRemaining(0.3),
            PrefixPolicy::Adaptive { c: 4.0 },
            PrefixPolicy::default(),
        ]
    }

    #[test]
    fn empty_edge_list() {
        let el = EdgeList::empty(4);
        assert!(prefix_matching(&el, &identity_permutation(0), PrefixPolicy::default()).is_empty());
    }

    #[test]
    fn every_policy_matches_sequential_on_random_graph() {
        let el = random_edge_list(300, 1_200, 1);
        let pi = random_edge_permutation(el.num_edges(), 2);
        let expected = sequential_matching(&el, &pi);
        for policy in policies() {
            let mm = prefix_matching(&el, &pi, policy);
            assert_eq!(mm, expected, "policy {policy:?} diverged from sequential");
            assert!(verify_maximal_matching(&el, &mm));
        }
    }

    #[test]
    fn every_policy_matches_sequential_on_structured_graphs() {
        let lists: Vec<(&str, EdgeList)> = vec![
            ("path", path_edge_list(50)),
            ("cycle", cycle_edge_list(44)),
            ("star", star_edge_list(40)),
            ("complete", complete_edge_list(14)),
            ("grid", grid_edge_list(7, 8)),
        ];
        for (name, el) in lists {
            let pi = random_edge_permutation(el.num_edges(), 8);
            let expected = sequential_matching(&el, &pi);
            for policy in policies() {
                assert_eq!(
                    prefix_matching(&el, &pi, policy),
                    expected,
                    "policy {policy:?} diverged on {name}"
                );
            }
        }
    }

    #[test]
    fn matches_sequential_on_rmat() {
        let el = rmat_edge_list(9, 4_000, RmatParams::default(), 5);
        let pi = random_edge_permutation(el.num_edges(), 6);
        let expected = sequential_matching(&el, &pi);
        for policy in [
            PrefixPolicy::Fixed(128),
            PrefixPolicy::FractionOfInput(0.05),
        ] {
            assert_eq!(prefix_matching(&el, &pi, policy), expected);
        }
    }

    #[test]
    fn prefix_size_one_is_sequential_round_count() {
        let el = random_edge_list(200, 800, 3);
        let pi = random_edge_permutation(el.num_edges(), 4);
        let (_, stats) = prefix_matching_with_stats(&el, &pi, PrefixPolicy::Fixed(1));
        assert_eq!(stats.rounds, el.num_edges() as u64);
        assert_eq!(stats.vertex_work, el.num_edges() as u64);
    }

    #[test]
    fn full_prefix_has_one_round_and_few_steps() {
        let el = random_edge_list(600, 2_500, 5);
        let pi = random_edge_permutation(el.num_edges(), 6);
        let (_, stats) = prefix_matching_with_stats(&el, &pi, PrefixPolicy::FractionOfInput(1.0));
        assert_eq!(stats.rounds, 1);
        assert!(stats.steps < 60, "steps = {}", stats.steps);
    }

    #[test]
    fn work_grows_and_rounds_shrink_with_prefix_size() {
        let el = random_edge_list(1_000, 4_000, 7);
        let pi = random_edge_permutation(el.num_edges(), 8);
        let (_, small) = prefix_matching_with_stats(&el, &pi, PrefixPolicy::Fixed(16));
        let (_, large) = prefix_matching_with_stats(&el, &pi, PrefixPolicy::Fixed(1_000));
        assert!(small.rounds > large.rounds);
        assert!(small.vertex_work <= large.vertex_work);
    }
}
