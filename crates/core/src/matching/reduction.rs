//! Maximal matching via MIS on the line graph — the reduction of Lemma 5.1.
//!
//! An edge is in the greedy matching of G under the edge order π exactly when
//! the corresponding line-graph vertex is in the greedy MIS of L(G) under the
//! same order. The paper uses this correspondence for its round bound and
//! explicitly *avoids* it as an implementation (L(G) can be much larger than
//! G); we implement it anyway as the oracle the property tests compare every
//! matching implementation against.

use greedy_graph::edge_list::EdgeList;
use greedy_graph::line_graph::line_graph;
use greedy_prims::permutation::Permutation;

use crate::mis::sequential::sequential_mis;

/// Computes the greedy maximal matching of `edges` under π by building the
/// line graph and running the sequential greedy MIS on it. Returns sorted
/// edge ids — identical to
/// [`crate::matching::sequential::sequential_matching`].
pub fn matching_via_line_graph(edges: &EdgeList, pi: &Permutation) -> Vec<u32> {
    assert_eq!(
        pi.len(),
        edges.num_edges(),
        "matching_via_line_graph: permutation covers {} elements but there are {} edges",
        pi.len(),
        edges.num_edges()
    );
    let lg = line_graph(edges);
    sequential_mis(&lg, pi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::prefix::prefix_matching;
    use crate::matching::rounds::rounds_matching;
    use crate::matching::sequential::sequential_matching;
    use crate::mis::prefix::PrefixPolicy;
    use crate::ordering::random_edge_permutation;
    use greedy_graph::gen::random::random_edge_list;
    use greedy_graph::gen::structured::{cycle_edge_list, path_edge_list, star_edge_list};

    #[test]
    fn agrees_with_sequential_matching_on_random_graphs() {
        for seed in 0..4 {
            let el = random_edge_list(150, 500, seed);
            let pi = random_edge_permutation(el.num_edges(), seed + 77);
            assert_eq!(
                matching_via_line_graph(&el, &pi),
                sequential_matching(&el, &pi),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn agrees_on_structured_graphs() {
        for el in [path_edge_list(30), cycle_edge_list(29), star_edge_list(25)] {
            let pi = random_edge_permutation(el.num_edges(), 5);
            assert_eq!(
                matching_via_line_graph(&el, &pi),
                sequential_matching(&el, &pi)
            );
        }
    }

    #[test]
    fn oracle_for_parallel_implementations() {
        let el = random_edge_list(120, 400, 9);
        let pi = random_edge_permutation(el.num_edges(), 10);
        let oracle = matching_via_line_graph(&el, &pi);
        assert_eq!(rounds_matching(&el, &pi), oracle);
        assert_eq!(prefix_matching(&el, &pi, PrefixPolicy::Fixed(37)), oracle);
    }
}
