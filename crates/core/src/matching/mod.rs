//! Maximal matching algorithms.
//!
//! All implementations take an [`greedy_graph::edge_list::EdgeList`] (edge
//! ids are indices into the list) and a priority permutation π over the edge
//! ids, and return the matching as a sorted `Vec<u32>` of edge ids. The
//! [`sequential`], [`rounds`], [`prefix`], and [`rootset`] variants all
//! return the same matching — the one the sequential greedy algorithm
//! produces for π — while [`reduction`] recomputes it through the
//! MIS-on-the-line-graph reduction as a test oracle.

pub mod prefix;
pub mod reduction;
pub mod rootset;
pub mod rounds;
pub mod sequential;
pub mod verify;

/// The decision state of an edge during matching construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EdgeState {
    /// Not yet decided.
    Undecided,
    /// Accepted into the matching.
    In,
    /// Rejected: an adjacent edge was accepted.
    Out,
}

/// Collects the edge ids marked [`EdgeState::In`], sorted ascending.
pub(crate) fn collect_in_edges(state: &[EdgeState]) -> Vec<u32> {
    state
        .iter()
        .enumerate()
        .filter_map(|(e, &s)| (s == EdgeState::In).then_some(e as u32))
        .collect()
}
