//! The sequential greedy maximal matching.
//!
//! Process the edges in the order given by π; accept an edge iff neither of
//! its endpoints is already matched. This is the linear-time algorithm the
//! paper's Section 5 starts from, and the reference result every parallel
//! matching implementation must reproduce exactly.

use greedy_graph::edge_list::EdgeList;
use greedy_prims::permutation::Permutation;

use crate::stats::WorkStats;

/// Runs the sequential greedy maximal matching. Returns the matched edge ids,
/// sorted ascending.
///
/// # Panics
/// Panics if `pi.len() != edges.num_edges()`.
pub fn sequential_matching(edges: &EdgeList, pi: &Permutation) -> Vec<u32> {
    sequential_matching_with_stats(edges, pi).0
}

/// Runs the sequential greedy maximal matching with work counters
/// (`vertex_work` counts edge examinations, so it equals m; `rounds` = m).
pub fn sequential_matching_with_stats(edges: &EdgeList, pi: &Permutation) -> (Vec<u32>, WorkStats) {
    let m = edges.num_edges();
    assert_eq!(
        pi.len(),
        m,
        "sequential_matching: permutation covers {} elements but there are {} edges",
        pi.len(),
        m
    );
    let mut vertex_matched = vec![false; edges.num_vertices()];
    let mut in_matching = vec![false; m];
    let mut stats = WorkStats::new();
    stats.rounds = m as u64;
    stats.steps = m as u64;

    for pos in 0..m {
        let e = pi.element_at(pos);
        stats.vertex_work += 1;
        let edge = edges.edge(e as usize);
        if !vertex_matched[edge.u as usize] && !vertex_matched[edge.v as usize] {
            in_matching[e as usize] = true;
            vertex_matched[edge.u as usize] = true;
            vertex_matched[edge.v as usize] = true;
        }
        stats.edge_work += 2;
    }
    let matching: Vec<u32> = in_matching
        .iter()
        .enumerate()
        .filter_map(|(e, &m)| m.then_some(e as u32))
        .collect();
    (matching, stats)
}

/// Returns, for each vertex, the id of its matched edge (or `u32::MAX` if
/// unmatched), given a matching produced by any of the algorithms in this
/// module family.
pub fn matched_edge_per_vertex(edges: &EdgeList, matching: &[u32]) -> Vec<u32> {
    let mut assigned = vec![u32::MAX; edges.num_vertices()];
    for &e in matching {
        let edge = edges.edge(e as usize);
        assigned[edge.u as usize] = e;
        assigned[edge.v as usize] = e;
    }
    assigned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::verify::verify_maximal_matching;
    use crate::ordering::{identity_permutation, random_edge_permutation};
    use greedy_graph::gen::random::random_edge_list;
    use greedy_graph::gen::structured::{path_edge_list, star_edge_list};
    use greedy_graph::EdgeList;

    #[test]
    fn empty_edge_list() {
        let el = EdgeList::empty(5);
        assert!(sequential_matching(&el, &identity_permutation(0)).is_empty());
    }

    #[test]
    fn single_edge() {
        let el = EdgeList::from_pairs(2, vec![(0, 1)]);
        assert_eq!(sequential_matching(&el, &identity_permutation(1)), vec![0]);
    }

    #[test]
    fn path_identity_order_takes_alternating_edges() {
        // Edges of P5: (0,1), (1,2), (2,3), (3,4); greedy in id order takes
        // edge 0 then edge 2.
        let el = path_edge_list(5);
        assert_eq!(
            sequential_matching(&el, &identity_permutation(4)),
            vec![0, 2]
        );
    }

    #[test]
    fn star_takes_exactly_one_edge() {
        let el = star_edge_list(6);
        let pi = random_edge_permutation(el.num_edges(), 3);
        let mm = sequential_matching(&el, &pi);
        assert_eq!(mm.len(), 1);
        assert_eq!(mm[0], pi.element_at(0), "the earliest star edge must win");
    }

    #[test]
    fn result_is_maximal_matching_on_random_graphs() {
        for seed in 0..5 {
            let el = random_edge_list(200, 700, seed);
            let pi = random_edge_permutation(el.num_edges(), seed + 9);
            let mm = sequential_matching(&el, &pi);
            assert!(verify_maximal_matching(&el, &mm), "seed {seed}");
        }
    }

    #[test]
    fn stats_count_each_edge_once() {
        let el = random_edge_list(100, 300, 1);
        let pi = random_edge_permutation(300, 2);
        let (_, stats) = sequential_matching_with_stats(&el, &pi);
        assert_eq!(stats.vertex_work, 300);
        assert_eq!(stats.rounds, 300);
    }

    #[test]
    fn matched_edge_per_vertex_is_consistent() {
        let el = random_edge_list(100, 250, 3);
        let pi = random_edge_permutation(250, 4);
        let mm = sequential_matching(&el, &pi);
        let per_vertex = matched_edge_per_vertex(&el, &mm);
        for &e in &mm {
            let edge = el.edge(e as usize);
            assert_eq!(per_vertex[edge.u as usize], e);
            assert_eq!(per_vertex[edge.v as usize], e);
        }
        let matched_vertices = per_vertex.iter().filter(|&&x| x != u32::MAX).count();
        assert_eq!(matched_vertices, 2 * mm.len());
    }

    #[test]
    #[should_panic(expected = "permutation covers")]
    fn mismatched_permutation_panics() {
        let el = path_edge_list(4);
        sequential_matching(&el, &identity_permutation(7));
    }
}
