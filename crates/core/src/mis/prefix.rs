//! Algorithm 3: the prefix-based parallel greedy MIS.
//!
//! Instead of processing *all* remaining vertices each round (Algorithm 2),
//! each round processes only a prefix of the remaining vertices in priority
//! order, running the parallel greedy steps inside the prefix until it is
//! fully decided. Smaller prefixes do less redundant work (a prefix of one
//! vertex is exactly the sequential algorithm); larger prefixes expose more
//! parallelism. Whatever the prefix size, the returned MIS is identical to
//! the sequential one.
//!
//! This is the implementation the paper benchmarks (Section 6), using lazy
//! status updates on the original vertex array: vertices knocked out by an
//! earlier prefix are simply skipped when they come up in a later prefix.

use greedy_graph::csr::Graph;
use greedy_prims::permutation::Permutation;
use rayon::prelude::*;

use crate::mis::{collect_in_vertices, VertexState};
use crate::stats::WorkStats;

/// How the prefix size is chosen each round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefixPolicy {
    /// A fixed number of positions per round (the knob swept in Figures 1/2;
    /// `Fixed(1)` degenerates to the sequential algorithm).
    Fixed(usize),
    /// A fixed fraction of the *input* size per round.
    FractionOfInput(f64),
    /// A fixed fraction of the *remaining* vertices per round (the δ of
    /// Algorithm 3 in its literal form).
    FractionOfRemaining(f64),
    /// The analysis schedule of Corollary 3.2: in super-round `i` use a
    /// prefix of `c · 2^i · ln(n) / Δ` vertices, doubling as the maximum
    /// degree halves. `c` is the constant multiplier.
    Adaptive {
        /// Multiplier on the `2^i · ln(n)/Δ` schedule.
        c: f64,
    },
}

impl PrefixPolicy {
    /// The prefix size to use when `remaining` vertices are left, given the
    /// original input size `n` and the a-priori maximum degree `max_degree`.
    pub fn prefix_size(&self, n: usize, remaining: usize, max_degree: usize, round: u64) -> usize {
        let raw = match *self {
            PrefixPolicy::Fixed(k) => k,
            PrefixPolicy::FractionOfInput(f) => (f * n as f64).ceil() as usize,
            PrefixPolicy::FractionOfRemaining(f) => (f * remaining as f64).ceil() as usize,
            PrefixPolicy::Adaptive { c } => {
                let delta = max_degree.max(1) as f64;
                let ln_n = (n.max(2) as f64).ln();
                let factor = 2f64.powi(round.min(62) as i32);
                (c * factor * ln_n / delta).ceil() as usize
            }
        };
        raw.clamp(1, remaining)
    }
}

impl Default for PrefixPolicy {
    /// A prefix of n/50 per round: large enough to parallelize well, small
    /// enough to stay near the work-optimal region found in Figure 1(c).
    fn default() -> Self {
        PrefixPolicy::FractionOfInput(0.02)
    }
}

/// Runs the prefix-based parallel greedy MIS (Algorithm 3). Returns the
/// lexicographically-first MIS for π — the identical set to
/// [`crate::mis::sequential::sequential_mis`] for every policy.
pub fn prefix_mis(graph: &Graph, pi: &Permutation, policy: PrefixPolicy) -> Vec<u32> {
    prefix_mis_with_stats(graph, pi, policy).0
}

/// Runs the prefix-based parallel greedy MIS and reports work counters:
/// `rounds` = prefixes processed, `steps` = inner parallel steps summed over
/// prefixes, `vertex_work` = vertex examinations (≥ n; equal to n at prefix
/// size 1), `edge_work` = adjacency inspections.
pub fn prefix_mis_with_stats(
    graph: &Graph,
    pi: &Permutation,
    policy: PrefixPolicy,
) -> (Vec<u32>, WorkStats) {
    let n = graph.num_vertices();
    assert_eq!(
        pi.len(),
        n,
        "prefix_mis: permutation covers {} elements but the graph has {} vertices",
        pi.len(),
        n
    );
    let max_degree = graph.max_degree();
    let rank = pi.rank();
    let order = pi.order();

    let mut state = vec![VertexState::Undecided; n];
    let mut stats = WorkStats::new();
    // `start` is the first position in π not yet covered by a prefix.
    let mut start = 0usize;

    while start < n {
        let remaining = n - start;
        let k = policy.prefix_size(n, remaining, max_degree, stats.rounds);
        let prefix = &order[start..start + k];
        stats.rounds += 1;

        // Vertices of the prefix that are still undecided (lazy status
        // updates: earlier prefixes may already have knocked some out).
        let mut active: Vec<u32> = prefix
            .iter()
            .copied()
            .filter(|&v| state[v as usize] == VertexState::Undecided)
            .collect();
        // Work accounting matches the paper's normalization: the sequential
        // algorithm (prefix size 1) examines each vertex exactly once, so a
        // vertex already decided when its prefix arrives is charged here and
        // the still-active ones are charged per inner step below.
        stats.vertex_work += (prefix.len() - active.len()) as u64;

        // Run the parallel greedy steps (Algorithm 2) inside the prefix. All
        // vertices earlier than the prefix are already decided, so a prefix
        // vertex only ever waits on earlier vertices *inside* the prefix.
        while !active.is_empty() {
            stats.steps += 1;
            stats.vertex_work += active.len() as u64;

            let decisions: Vec<VertexState> = active
                .par_iter()
                .map(|&v| {
                    let mut has_undecided_earlier = false;
                    for &w in graph.neighbors(v) {
                        if rank[w as usize] < rank[v as usize] {
                            match state[w as usize] {
                                VertexState::In => return VertexState::Out,
                                VertexState::Undecided => has_undecided_earlier = true,
                                VertexState::Out => {}
                            }
                        }
                    }
                    if has_undecided_earlier {
                        VertexState::Undecided
                    } else {
                        VertexState::In
                    }
                })
                .collect();
            stats.edge_work += active.iter().map(|&v| graph.degree(v) as u64).sum::<u64>();

            let mut next_active = Vec::with_capacity(active.len());
            for (i, &v) in active.iter().enumerate() {
                match decisions[i] {
                    VertexState::Undecided => next_active.push(v),
                    s => state[v as usize] = s,
                }
            }
            assert!(
                next_active.len() < active.len(),
                "prefix_mis: no progress within a prefix step"
            );
            active = next_active;
        }

        // Knock out the later neighbors of the vertices this prefix accepted.
        // (Their own later prefixes will observe state Out lazily; marking
        // them now keeps the inner loop's reads consistent.)
        let newly_in: Vec<u32> = prefix
            .iter()
            .copied()
            .filter(|&v| state[v as usize] == VertexState::In)
            .collect();
        let knocked: Vec<u32> = newly_in
            .par_iter()
            .flat_map_iter(|&v| {
                graph
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(move |&w| rank[w as usize] > rank[v as usize])
            })
            .collect();
        stats.edge_work += newly_in
            .iter()
            .map(|&v| graph.degree(v) as u64)
            .sum::<u64>();
        for w in knocked {
            if state[w as usize] == VertexState::Undecided {
                state[w as usize] = VertexState::Out;
            }
        }

        start += k;
    }

    (collect_in_vertices(&state), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::sequential::sequential_mis;
    use crate::mis::verify::verify_mis;
    use crate::ordering::{identity_permutation, random_permutation};
    use greedy_graph::gen::random::random_graph;
    use greedy_graph::gen::rmat::rmat_graph;
    use greedy_graph::gen::structured::{
        complete_graph, cycle_graph, grid_graph, path_graph, star_graph,
    };
    use greedy_graph::Graph;

    fn policies() -> Vec<PrefixPolicy> {
        vec![
            PrefixPolicy::Fixed(1),
            PrefixPolicy::Fixed(7),
            PrefixPolicy::Fixed(100),
            PrefixPolicy::Fixed(usize::MAX / 2),
            PrefixPolicy::FractionOfInput(0.01),
            PrefixPolicy::FractionOfInput(1.0),
            PrefixPolicy::FractionOfRemaining(0.25),
            PrefixPolicy::Adaptive { c: 4.0 },
            PrefixPolicy::default(),
        ]
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        assert!(prefix_mis(&g, &identity_permutation(0), PrefixPolicy::default()).is_empty());
    }

    #[test]
    fn every_policy_matches_sequential_on_random_graph() {
        let g = random_graph(500, 2_000, 1);
        let pi = random_permutation(500, 2);
        let expected = sequential_mis(&g, &pi);
        for policy in policies() {
            let mis = prefix_mis(&g, &pi, policy);
            assert_eq!(mis, expected, "policy {policy:?} diverged from sequential");
            assert!(verify_mis(&g, &mis));
        }
    }

    #[test]
    fn every_policy_matches_sequential_on_structured_graphs() {
        let graphs: Vec<(&str, Graph)> = vec![
            ("path", path_graph(60)),
            ("cycle", cycle_graph(61)),
            ("star", star_graph(50)),
            ("complete", complete_graph(40)),
            ("grid", grid_graph(8, 9)),
        ];
        for (name, g) in graphs {
            let pi = random_permutation(g.num_vertices(), 11);
            let expected = sequential_mis(&g, &pi);
            for policy in policies() {
                assert_eq!(
                    prefix_mis(&g, &pi, policy),
                    expected,
                    "policy {policy:?} diverged on {name}"
                );
            }
        }
    }

    #[test]
    fn matches_sequential_on_rmat() {
        let g = rmat_graph(10, 6_000, 3);
        let pi = random_permutation(g.num_vertices(), 4);
        let expected = sequential_mis(&g, &pi);
        for policy in [PrefixPolicy::Fixed(64), PrefixPolicy::FractionOfInput(0.05)] {
            assert_eq!(prefix_mis(&g, &pi, policy), expected);
        }
    }

    #[test]
    fn prefix_size_one_is_the_sequential_algorithm() {
        let g = random_graph(300, 1_200, 5);
        let pi = random_permutation(300, 6);
        let (_, stats) = prefix_mis_with_stats(&g, &pi, PrefixPolicy::Fixed(1));
        // One round per vertex and no redundant examinations: work equals the
        // input size exactly, as for the sequential algorithm (Figure 1a's
        // left endpoint).
        assert_eq!(stats.rounds, 300);
        assert_eq!(stats.vertex_work, 300);
    }

    #[test]
    fn full_prefix_has_few_rounds() {
        let g = random_graph(1_000, 4_000, 7);
        let pi = random_permutation(1_000, 8);
        let (_, stats) = prefix_mis_with_stats(&g, &pi, PrefixPolicy::FractionOfInput(1.0));
        assert_eq!(stats.rounds, 1);
        // The single round's inner steps equal the dependence length, which
        // is small for random orders.
        assert!(stats.steps < 60, "steps = {}", stats.steps);
    }

    #[test]
    fn work_grows_and_rounds_shrink_with_prefix_size() {
        // The monotone tradeoff behind Figures 1(a) and 1(b).
        let g = random_graph(2_000, 8_000, 9);
        let pi = random_permutation(2_000, 10);
        let (_, small) = prefix_mis_with_stats(&g, &pi, PrefixPolicy::Fixed(16));
        let (_, large) = prefix_mis_with_stats(&g, &pi, PrefixPolicy::Fixed(1_000));
        assert!(small.rounds > large.rounds);
        assert!(small.vertex_work <= large.vertex_work);
    }

    #[test]
    fn policy_prefix_size_respects_bounds() {
        for policy in policies() {
            for remaining in [1usize, 5, 100, 10_000] {
                let k = policy.prefix_size(10_000, remaining, 17, 3);
                assert!(
                    k >= 1 && k <= remaining,
                    "policy {policy:?} gave k={k} for remaining={remaining}"
                );
            }
        }
    }

    #[test]
    fn adaptive_policy_grows_with_round() {
        let p = PrefixPolicy::Adaptive { c: 1.0 };
        let a = p.prefix_size(1_000_000, 1_000_000, 1_000, 0);
        let b = p.prefix_size(1_000_000, 1_000_000, 1_000, 12);
        assert!(
            b > a,
            "adaptive prefix should double each super-round ({a} vs {b})"
        );
    }

    #[test]
    fn edgeless_graph_takes_everything_in_one_round_per_prefix() {
        let g = Graph::empty(100);
        let pi = identity_permutation(100);
        let (mis, stats) = prefix_mis_with_stats(&g, &pi, PrefixPolicy::Fixed(10));
        assert_eq!(mis.len(), 100);
        assert_eq!(stats.rounds, 10);
        assert_eq!(stats.steps, 10);
    }
}
