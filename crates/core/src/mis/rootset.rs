//! The linear-work root-set implementation of Algorithm 2 (Lemma 4.2).
//!
//! Instead of re-scanning every remaining vertex each round, this version
//! keeps the current *root set* of the priority DAG explicitly. Each step:
//!
//! 1. the roots join the MIS;
//! 2. their undecided neighbors are knocked out (claimed with a CAS so each
//!    vertex is knocked out exactly once);
//! 3. the neighbors of the knocked-out vertices are `misCheck`ed — each check
//!    scans the vertex's remaining parents (earlier neighbors), skipping the
//!    ones already decided by advancing a per-vertex cursor so that every
//!    parent edge is crossed at most once over the whole run (the
//!    amortization of Lemma 4.1);
//! 4. the checks that find no remaining parent produce the next root set
//!    (deduplicated with a per-step stamp, mirroring the paper's use of an
//!    arbitrary concurrent write to pick a unique responsible neighbor).
//!
//! Total work is O(n + m); the number of steps equals the dependence length.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

use greedy_graph::csr::Graph;
use greedy_prims::permutation::Permutation;
use rayon::prelude::*;

use crate::stats::WorkStats;

const UNDECIDED: u8 = 0;
const IN_MIS: u8 = 1;
const OUT: u8 = 2;

/// Runs the root-set (linear-work) parallel greedy MIS. Returns the
/// lexicographically-first MIS for π, identical to the sequential algorithm.
pub fn rootset_mis(graph: &Graph, pi: &Permutation) -> Vec<u32> {
    rootset_mis_with_stats(graph, pi).0
}

/// Runs the root-set parallel greedy MIS with work counters.
/// `stats.rounds` equals the dependence length of (graph, π).
pub fn rootset_mis_with_stats(graph: &Graph, pi: &Permutation) -> (Vec<u32>, WorkStats) {
    let n = graph.num_vertices();
    assert_eq!(
        pi.len(),
        n,
        "rootset_mis: permutation covers {} elements but the graph has {} vertices",
        pi.len(),
        n
    );
    let rank = pi.rank();

    // Parents of v = neighbors with an earlier priority. The per-vertex
    // cursor `ptr` advances past parents already decided, so every parent
    // edge is inspected O(1) times in total.
    let parents: Vec<Vec<u32>> = (0..n as u32)
        .into_par_iter()
        .map(|v| {
            graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&w| rank[w as usize] < rank[v as usize])
                .collect()
        })
        .collect();

    let state: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(UNDECIDED)).collect();
    let ptr: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    let stamp: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    let edge_work = AtomicU64::new(0);

    let mut stats = WorkStats::new();

    // Initial roots: vertices with no earlier neighbor at all.
    let mut roots: Vec<u32> = (0..n as u32)
        .into_par_iter()
        .filter(|&v| parents[v as usize].is_empty())
        .collect();
    stats.vertex_work += n as u64;

    while !roots.is_empty() {
        stats.rounds += 1;
        stats.steps += 1;
        stats.vertex_work += roots.len() as u64;

        // Phase 1: accept the roots.
        roots.par_iter().for_each(|&r| {
            state[r as usize].store(IN_MIS, Ordering::SeqCst);
        });

        // Phase 2: knock out their undecided neighbors (each claimed once).
        let knocked: Vec<u32> = roots
            .par_iter()
            .flat_map_iter(|&r| graph.neighbors(r).iter().copied())
            .filter(|&w| {
                state[w as usize]
                    .compare_exchange(UNDECIDED, OUT, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            })
            .collect();
        edge_work.fetch_add(
            roots.iter().map(|&r| graph.degree(r) as u64).sum::<u64>(),
            Ordering::Relaxed,
        );

        // Phase 3: the children (later neighbors) of knocked-out vertices are
        // the only vertices whose root status may have changed; claim each of
        // them once for this step.
        let step_id = stats.steps;
        let candidates: Vec<u32> = knocked
            .par_iter()
            .flat_map_iter(|&w| {
                graph
                    .neighbors(w)
                    .iter()
                    .copied()
                    .filter(move |&x| rank[x as usize] > rank[w as usize])
            })
            .filter(|&x| {
                state[x as usize].load(Ordering::SeqCst) == UNDECIDED
                    && stamp[x as usize].swap(step_id, Ordering::SeqCst) != step_id
            })
            .collect();
        edge_work.fetch_add(
            knocked.iter().map(|&w| graph.degree(w) as u64).sum::<u64>(),
            Ordering::Relaxed,
        );

        // Phase 4: misCheck each candidate — advance its parent cursor past
        // decided parents; it becomes a root iff the cursor reaches the end.
        let next_roots: Vec<u32> = candidates
            .par_iter()
            .copied()
            .filter(|&x| {
                let plist = &parents[x as usize];
                let mut i = ptr[x as usize].load(Ordering::SeqCst);
                let mut scanned = 0u64;
                while i < plist.len() {
                    let p = plist[i] as usize;
                    scanned += 1;
                    match state[p].load(Ordering::SeqCst) {
                        OUT => i += 1,
                        _ => break,
                    }
                }
                ptr[x as usize].store(i, Ordering::SeqCst);
                edge_work.fetch_add(scanned, Ordering::Relaxed);
                i == plist.len()
            })
            .collect();
        stats.vertex_work += candidates.len() as u64;

        roots = next_roots;
    }

    stats.edge_work += edge_work.load(Ordering::Relaxed);

    // Every vertex must be decided when the root set drains.
    let mis: Vec<u32> = (0..n as u32)
        .filter(|&v| {
            let s = state[v as usize].load(Ordering::SeqCst);
            debug_assert_ne!(
                s, UNDECIDED,
                "rootset_mis: vertex {v} left undecided — root propagation is broken"
            );
            s == IN_MIS
        })
        .collect();
    (mis, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::rounds::rounds_mis_with_stats;
    use crate::mis::sequential::sequential_mis;
    use crate::mis::verify::verify_mis;
    use crate::ordering::{identity_permutation, random_permutation};
    use greedy_graph::gen::random::random_graph;
    use greedy_graph::gen::rmat::rmat_graph;
    use greedy_graph::gen::structured::{
        complete_graph, cycle_graph, grid_graph, path_graph, star_graph,
    };
    use greedy_graph::Graph;

    #[test]
    fn empty_and_edgeless() {
        assert!(rootset_mis(&Graph::empty(0), &identity_permutation(0)).is_empty());
        assert_eq!(
            rootset_mis(&Graph::empty(4), &identity_permutation(4)),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..6 {
            let g = random_graph(500, 2_500, seed);
            let pi = random_permutation(500, seed + 50);
            let mis = rootset_mis(&g, &pi);
            assert_eq!(mis, sequential_mis(&g, &pi), "seed {seed}");
            assert!(verify_mis(&g, &mis));
        }
    }

    #[test]
    fn matches_sequential_on_structured_graphs() {
        let graphs: Vec<(&str, Graph)> = vec![
            ("path", path_graph(80)),
            ("cycle", cycle_graph(81)),
            ("star", star_graph(64)),
            ("complete", complete_graph(48)),
            ("grid", grid_graph(9, 11)),
        ];
        for (name, g) in graphs {
            for seed in 0..3 {
                let pi = random_permutation(g.num_vertices(), seed);
                assert_eq!(
                    rootset_mis(&g, &pi),
                    sequential_mis(&g, &pi),
                    "mismatch on {name} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn matches_sequential_on_rmat() {
        let g = rmat_graph(10, 8_000, 2);
        let pi = random_permutation(g.num_vertices(), 3);
        assert_eq!(rootset_mis(&g, &pi), sequential_mis(&g, &pi));
    }

    #[test]
    fn step_count_equals_rounds_algorithm_dependence_length() {
        // Both implementations execute Algorithm 2 step by step, so their
        // round counts must agree (the dependence length of (G, π)).
        for seed in 0..3 {
            let g = random_graph(400, 1_600, seed);
            let pi = random_permutation(400, seed + 7);
            let (_, a) = rootset_mis_with_stats(&g, &pi);
            let (_, b) = rounds_mis_with_stats(&g, &pi);
            assert_eq!(a.rounds, b.rounds, "seed {seed}");
        }
    }

    #[test]
    fn edge_work_is_near_linear() {
        // Lemma 4.2: O(m) total work. Allow a generous constant factor for
        // the two directions and the check accounting.
        let g = random_graph(2_000, 10_000, 4);
        let pi = random_permutation(2_000, 5);
        let (_, stats) = rootset_mis_with_stats(&g, &pi);
        let arcs = 2 * g.num_edges() as u64;
        assert!(
            stats.edge_work <= 4 * arcs,
            "edge work {} not linear in arcs {arcs}",
            stats.edge_work
        );
    }

    #[test]
    fn identity_order_on_path() {
        let g = path_graph(33);
        let pi = identity_permutation(33);
        assert_eq!(rootset_mis(&g, &pi), sequential_mis(&g, &pi));
    }

    #[test]
    fn complete_graph_one_step() {
        let g = complete_graph(32);
        let pi = random_permutation(32, 9);
        let (mis, stats) = rootset_mis_with_stats(&g, &pi);
        assert_eq!(mis.len(), 1);
        assert_eq!(stats.rounds, 1);
    }
}
