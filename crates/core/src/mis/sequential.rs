//! Algorithm 1: the sequential greedy MIS.
//!
//! Process the vertices in the order given by π; add a vertex to the MIS iff
//! none of its earlier neighbors was added. The result is the
//! lexicographically-first MIS for π and is the reference every parallel
//! implementation in this crate must reproduce exactly.

use greedy_graph::csr::Graph;
use greedy_prims::permutation::Permutation;

use crate::mis::{collect_in_vertices, VertexState};
use crate::stats::WorkStats;

/// Runs the sequential greedy MIS (Algorithm 1). Returns the MIS as a sorted
/// vertex list.
///
/// # Panics
/// Panics if `pi.len() != graph.num_vertices()`.
pub fn sequential_mis(graph: &Graph, pi: &Permutation) -> Vec<u32> {
    sequential_mis_with_stats(graph, pi).0
}

/// Runs the sequential greedy MIS and reports work counters.
///
/// The counters follow the paper's accounting: the sequential algorithm
/// examines each vertex exactly once (`vertex_work == n`, `rounds == n`) and
/// traverses the adjacency list only of the vertices it accepts.
pub fn sequential_mis_with_stats(graph: &Graph, pi: &Permutation) -> (Vec<u32>, WorkStats) {
    let n = graph.num_vertices();
    assert_eq!(
        pi.len(),
        n,
        "sequential_mis: permutation covers {} elements but the graph has {} vertices",
        pi.len(),
        n
    );
    let mut state = vec![VertexState::Undecided; n];
    let mut stats = WorkStats::new();
    stats.rounds = n as u64;
    stats.steps = n as u64;

    for pos in 0..n {
        let v = pi.element_at(pos);
        stats.vertex_work += 1;
        if state[v as usize] != VertexState::Undecided {
            continue;
        }
        // v has no earlier neighbor in the MIS (it would have been marked
        // Out), so it joins the MIS and knocks out its neighbors.
        state[v as usize] = VertexState::In;
        for &w in graph.neighbors(v) {
            stats.edge_work += 1;
            if state[w as usize] == VertexState::Undecided {
                state[w as usize] = VertexState::Out;
            }
        }
    }
    (collect_in_vertices(&state), stats)
}

/// Membership-flag variant: returns a boolean vector `in_mis[v]`.
pub fn sequential_mis_flags(graph: &Graph, pi: &Permutation) -> Vec<bool> {
    let mis = sequential_mis(graph, pi);
    let mut flags = vec![false; graph.num_vertices()];
    for v in mis {
        flags[v as usize] = true;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::verify::verify_mis;
    use crate::ordering::{identity_permutation, random_permutation};
    use greedy_graph::gen::random::random_graph;
    use greedy_graph::gen::structured::{complete_graph, path_graph, star_graph};
    use greedy_graph::Graph;

    #[test]
    fn empty_graph_returns_empty_set() {
        let g = Graph::empty(0);
        let pi = identity_permutation(0);
        assert!(sequential_mis(&g, &pi).is_empty());
    }

    #[test]
    fn edgeless_graph_returns_all_vertices() {
        let g = Graph::empty(5);
        let pi = identity_permutation(5);
        assert_eq!(sequential_mis(&g, &pi), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn complete_graph_returns_first_vertex_in_order() {
        let g = complete_graph(10);
        // With the identity order, vertex 0 is first.
        assert_eq!(sequential_mis(&g, &identity_permutation(10)), vec![0]);
        // With a random order, the single MIS vertex is the earliest in π.
        let pi = random_permutation(10, 3);
        let mis = sequential_mis(&g, &pi);
        assert_eq!(mis, vec![pi.element_at(0)]);
    }

    #[test]
    fn path_graph_identity_order_takes_alternating_vertices() {
        let g = path_graph(6);
        assert_eq!(sequential_mis(&g, &identity_permutation(6)), vec![0, 2, 4]);
    }

    #[test]
    fn star_graph_depends_on_whether_center_is_early() {
        let g = star_graph(6);
        // Identity order: center (0) first, so MIS = {0}.
        assert_eq!(sequential_mis(&g, &identity_permutation(6)), vec![0]);
        // Order that puts the center last: all leaves join.
        let order: Vec<u32> = vec![1, 2, 3, 4, 5, 0];
        let pi = greedy_prims::permutation::Permutation::from_order(order);
        assert_eq!(sequential_mis(&g, &pi), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn result_is_a_valid_mis_on_random_graphs() {
        for seed in 0..5 {
            let g = random_graph(300, 900, seed);
            let pi = random_permutation(300, seed + 100);
            let mis = sequential_mis(&g, &pi);
            assert!(verify_mis(&g, &mis), "seed {seed}");
        }
    }

    #[test]
    fn stats_match_the_sequential_accounting() {
        let g = random_graph(200, 600, 1);
        let pi = random_permutation(200, 2);
        let (mis, stats) = sequential_mis_with_stats(&g, &pi);
        assert_eq!(stats.vertex_work, 200);
        assert_eq!(stats.rounds, 200);
        // Edge work only charges the adjacency of accepted vertices.
        let expected_edge_work: u64 = mis.iter().map(|&v| g.degree(v) as u64).sum();
        assert_eq!(stats.edge_work, expected_edge_work);
    }

    #[test]
    fn flags_agree_with_list() {
        let g = random_graph(100, 250, 4);
        let pi = random_permutation(100, 9);
        let mis = sequential_mis(&g, &pi);
        let flags = sequential_mis_flags(&g, &pi);
        for v in 0..100u32 {
            assert_eq!(flags[v as usize], mis.binary_search(&v).is_ok());
        }
    }

    #[test]
    fn different_orders_can_give_different_sets() {
        let g = path_graph(4);
        let a = sequential_mis(&g, &identity_permutation(4));
        let order: Vec<u32> = vec![1, 3, 0, 2];
        let b = sequential_mis(
            &g,
            &greedy_prims::permutation::Permutation::from_order(order),
        );
        assert_ne!(a, b);
        assert!(verify_mis(&g, &a));
        assert!(verify_mis(&g, &b));
    }

    #[test]
    #[should_panic(expected = "permutation covers")]
    fn mismatched_permutation_panics() {
        let g = path_graph(4);
        sequential_mis(&g, &identity_permutation(3));
    }
}
