//! Luby's Algorithm A — the baseline the paper compares against.
//!
//! Each round, every remaining vertex draws a fresh random priority; a vertex
//! joins the MIS if its priority beats all of its remaining neighbors', then
//! MIS vertices and their neighbors leave the graph. Re-randomizing each
//! round is exactly what distinguishes Luby's algorithm from Algorithm 2: the
//! paper notes that if Algorithm 2 regenerated π every recursive call it
//! *would be* Luby's Algorithm A. The price is that the result is not the
//! lexicographically-first MIS of any fixed order, and — as the experiments
//! in Section 6 show — the full-graph rounds do several times more work than
//! the prefix-based algorithm.
//!
//! Priorities are drawn with a deterministic per-(round, vertex) hash, so for
//! a fixed seed the algorithm returns the same MIS regardless of thread
//! count.

use greedy_graph::csr::Graph;
use greedy_prims::random::hash64;
use rayon::prelude::*;

use crate::mis::{collect_in_vertices, VertexState};
use crate::stats::WorkStats;

/// Runs Luby's Algorithm A with deterministic per-round priorities derived
/// from `seed`. Returns a valid MIS (generally *not* the sequential greedy
/// one).
pub fn luby_mis(graph: &Graph, seed: u64) -> Vec<u32> {
    luby_mis_with_stats(graph, seed).0
}

/// Runs Luby's Algorithm A and reports work counters (`rounds` = number of
/// synchronous rounds; `vertex_work`/`edge_work` = examinations, which are
/// the quantities that make it lose to the prefix-based algorithm in
/// Figure 3).
pub fn luby_mis_with_stats(graph: &Graph, seed: u64) -> (Vec<u32>, WorkStats) {
    let n = graph.num_vertices();
    let mut state = vec![VertexState::Undecided; n];
    let mut remaining: Vec<u32> = (0..n as u32).collect();
    let mut stats = WorkStats::new();

    while !remaining.is_empty() {
        stats.rounds += 1;
        stats.steps += 1;
        let round_seed = hash64(seed, stats.rounds);

        // Fresh priorities for the still-undecided vertices. Ties are broken
        // by vertex id, so the round is a strict total order.
        let priority = |v: u32| -> (u64, u32) { (hash64(round_seed, v as u64), v) };

        // Phase 1: a vertex wins if it beats every undecided neighbor.
        let winners: Vec<bool> = remaining
            .par_iter()
            .map(|&v| {
                let pv = priority(v);
                graph
                    .neighbors(v)
                    .iter()
                    .all(|&w| state[w as usize] != VertexState::Undecided || priority(w) > pv)
            })
            .collect();
        let mut winner_flags = vec![false; n];
        for (i, &v) in remaining.iter().enumerate() {
            winner_flags[v as usize] = winners[i];
        }

        // Phase 2: winners join, their neighbors leave.
        let new_states: Vec<VertexState> = remaining
            .par_iter()
            .map(|&v| {
                if winner_flags[v as usize] {
                    VertexState::In
                } else if graph.neighbors(v).iter().any(|&w| winner_flags[w as usize]) {
                    VertexState::Out
                } else {
                    VertexState::Undecided
                }
            })
            .collect();

        stats.vertex_work += remaining.len() as u64;
        stats.edge_work += 2 * remaining
            .iter()
            .map(|&v| graph.degree(v) as u64)
            .sum::<u64>();

        let mut next_remaining = Vec::with_capacity(remaining.len());
        for (i, &v) in remaining.iter().enumerate() {
            match new_states[i] {
                VertexState::Undecided => next_remaining.push(v),
                s => state[v as usize] = s,
            }
        }
        assert!(
            next_remaining.len() < remaining.len() || remaining.is_empty(),
            "luby_mis: no progress in a round"
        );
        remaining = next_remaining;
    }

    (collect_in_vertices(&state), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::sequential::sequential_mis;
    use crate::mis::verify::verify_mis;
    use crate::ordering::random_permutation;
    use greedy_graph::gen::random::random_graph;
    use greedy_graph::gen::rmat::rmat_graph;
    use greedy_graph::gen::structured::{complete_graph, path_graph, star_graph};
    use greedy_graph::Graph;

    #[test]
    fn empty_and_edgeless() {
        assert!(luby_mis(&Graph::empty(0), 1).is_empty());
        assert_eq!(luby_mis(&Graph::empty(5), 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn returns_valid_mis_on_random_graphs() {
        for seed in 0..5 {
            let g = random_graph(500, 2_000, seed);
            let mis = luby_mis(&g, seed + 1);
            assert!(verify_mis(&g, &mis), "seed {seed}");
        }
    }

    #[test]
    fn returns_valid_mis_on_structured_graphs() {
        for g in [
            path_graph(50),
            star_graph(30),
            complete_graph(25),
            rmat_graph(9, 2_000, 1),
        ] {
            let mis = luby_mis(&g, 7);
            assert!(verify_mis(&g, &mis));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = random_graph(300, 1_200, 2);
        assert_eq!(luby_mis(&g, 5), luby_mis(&g, 5));
    }

    #[test]
    fn complete_graph_gives_single_vertex() {
        let g = complete_graph(40);
        assert_eq!(luby_mis(&g, 3).len(), 1);
    }

    #[test]
    fn round_count_is_small() {
        // Luby: O(log n) rounds w.h.p.
        let g = random_graph(2_000, 10_000, 4);
        let (_, stats) = luby_mis_with_stats(&g, 6);
        assert!(stats.rounds < 40, "rounds = {}", stats.rounds);
    }

    #[test]
    fn generally_differs_from_sequential_greedy() {
        // Not a guarantee on every input, but on a moderately sized random
        // graph the probability that Luby's output coincides with the
        // lexicographically-first MIS is negligible.
        let g = random_graph(1_000, 5_000, 8);
        let pi = random_permutation(1_000, 9);
        let seq = sequential_mis(&g, &pi);
        let luby = luby_mis(&g, 10);
        assert_ne!(seq, luby);
    }

    #[test]
    fn does_more_work_than_prefix_based() {
        // The experimental observation behind Figure 3: Luby processes the
        // whole remaining graph every round.
        use crate::mis::prefix::{prefix_mis_with_stats, PrefixPolicy};
        let g = random_graph(2_000, 10_000, 11);
        let pi = random_permutation(2_000, 12);
        let (_, luby) = luby_mis_with_stats(&g, 13);
        let (_, prefix) = prefix_mis_with_stats(&g, &pi, PrefixPolicy::FractionOfInput(0.02));
        assert!(
            luby.total_work() > prefix.total_work(),
            "luby {} should exceed prefix {}",
            luby.total_work(),
            prefix.total_work()
        );
    }
}
