//! MIS verification.
//!
//! Checking a maximal independent set is much cheaper than computing one:
//! independence is "no edge inside the set" and maximality is "every vertex
//! outside the set has a neighbor inside". Every test and example in the
//! workspace funnels through these checks.

use greedy_graph::csr::Graph;
use rayon::prelude::*;

/// True if `set` (a sorted-or-unsorted list of vertex ids) is an independent
/// set of `graph`: no two members are adjacent.
pub fn verify_independent(graph: &Graph, set: &[u32]) -> bool {
    let mut member = vec![false; graph.num_vertices()];
    for &v in set {
        if v as usize >= graph.num_vertices() {
            return false;
        }
        member[v as usize] = true;
    }
    set.par_iter()
        .all(|&v| graph.neighbors(v).iter().all(|&w| !member[w as usize]))
}

/// True if `set` is maximal: every vertex not in the set has a neighbor in
/// the set.
pub fn verify_maximal(graph: &Graph, set: &[u32]) -> bool {
    let mut member = vec![false; graph.num_vertices()];
    for &v in set {
        if v as usize >= graph.num_vertices() {
            return false;
        }
        member[v as usize] = true;
    }
    (0..graph.num_vertices() as u32)
        .into_par_iter()
        .all(|v| member[v as usize] || graph.neighbors(v).iter().any(|&w| member[w as usize]))
}

/// True if `set` is a maximal independent set of `graph`.
pub fn verify_mis(graph: &Graph, set: &[u32]) -> bool {
    verify_independent(graph, set) && verify_maximal(graph, set)
}

/// True if the two vertex (or edge-id) lists denote the same set.
/// Order-insensitive; duplicate entries are rejected.
pub fn verify_same_set(a: &[u32], b: &[u32]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort_unstable();
    b.sort_unstable();
    if a.windows(2).any(|w| w[0] == w[1]) || b.windows(2).any(|w| w[0] == w[1]) {
        return false;
    }
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use greedy_graph::gen::structured::{complete_graph, path_graph, star_graph};
    use greedy_graph::Graph;

    #[test]
    fn empty_set_on_empty_graph_is_mis() {
        let g = Graph::empty(0);
        assert!(verify_mis(&g, &[]));
    }

    #[test]
    fn empty_set_on_nonempty_graph_is_not_maximal() {
        let g = path_graph(3);
        assert!(verify_independent(&g, &[]));
        assert!(!verify_maximal(&g, &[]));
        assert!(!verify_mis(&g, &[]));
    }

    #[test]
    fn full_set_on_edgeless_graph_is_mis() {
        let g = Graph::empty(4);
        assert!(verify_mis(&g, &[0, 1, 2, 3]));
        // A strict subset is independent but not maximal.
        assert!(verify_independent(&g, &[1, 2]));
        assert!(!verify_maximal(&g, &[1, 2]));
    }

    #[test]
    fn path_graph_cases() {
        let g = path_graph(4); // 0-1-2-3
        assert!(verify_mis(&g, &[0, 2]));
        assert!(verify_mis(&g, &[1, 3]));
        assert!(verify_mis(&g, &[0, 3]));
        assert!(!verify_mis(&g, &[0, 1])); // not independent
        assert!(!verify_mis(&g, &[1])); // not maximal (3 uncovered)
    }

    #[test]
    fn star_graph_cases() {
        let g = star_graph(5);
        assert!(verify_mis(&g, &[0]));
        assert!(verify_mis(&g, &[1, 2, 3, 4]));
        assert!(!verify_mis(&g, &[0, 1]));
        assert!(!verify_mis(&g, &[1, 2]));
    }

    #[test]
    fn complete_graph_cases() {
        let g = complete_graph(5);
        for v in 0..5u32 {
            assert!(verify_mis(&g, &[v]));
        }
        assert!(!verify_mis(&g, &[0, 1]));
        assert!(!verify_mis(&g, &[]));
    }

    #[test]
    fn out_of_range_vertex_fails() {
        let g = path_graph(3);
        assert!(!verify_independent(&g, &[7]));
        assert!(!verify_maximal(&g, &[7]));
    }

    #[test]
    fn same_set_comparisons() {
        assert!(verify_same_set(&[1, 2, 3], &[3, 2, 1]));
        assert!(verify_same_set(&[], &[]));
        assert!(!verify_same_set(&[1, 2], &[1, 2, 3]));
        assert!(!verify_same_set(&[1, 1, 2], &[1, 2, 2]));
        assert!(!verify_same_set(&[1, 2], &[1, 3]));
    }
}
