//! Maximal independent set algorithms.
//!
//! All implementations take a CSR [`greedy_graph::csr::Graph`] and a priority
//! permutation π over its vertices, and return the set of MIS vertices as a
//! sorted `Vec<u32>`. The [`sequential`], [`rounds`], [`prefix`], and
//! [`rootset`] variants all return the lexicographically-first MIS for π —
//! the same set regardless of schedule, prefix size, or thread count — while
//! [`luby`] returns some valid MIS (the comparison baseline).

pub mod luby;
pub mod prefix;
pub mod prefix_packed;
pub mod rootset;
pub mod rounds;
pub mod sequential;
pub mod verify;

/// The decision state of a vertex during MIS construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VertexState {
    /// Not yet decided.
    Undecided,
    /// Accepted into the MIS.
    In,
    /// Rejected: some neighbor is in the MIS.
    Out,
}

/// Collects the vertices marked [`VertexState::In`], sorted ascending.
pub(crate) fn collect_in_vertices(state: &[VertexState]) -> Vec<u32> {
    state
        .iter()
        .enumerate()
        .filter_map(|(v, &s)| (s == VertexState::In).then_some(v as u32))
        .collect()
}
