//! The packed-prefix linear-work implementation of Theorem 4.5.
//!
//! The paper's second linear-work MIS algorithm keeps the prefix machinery of
//! Algorithm 3 but, instead of repeatedly re-scanning the prefix in place,
//! it *densely packs* the surviving prefix vertices and their internal edges
//! into fresh arrays before running the inner parallel greedy steps:
//!
//! 1. process the prefix's **external** edges (edges to earlier, already
//!    decided vertices) once, knocking out vertices with an earlier MIS
//!    neighbor;
//! 2. accept the surviving vertices that have **no internal** edges
//!    immediately;
//! 3. pack the remainder — the induced subgraph `G[P']` — into new arrays
//!    (prefix sums + pack, the primitives from `greedy-prims`);
//! 4. run the naive parallel greedy steps on the packed subgraph, which
//!    Lemmas 4.3/4.4 show is so sparse (for prefixes of size O(n/Δ′)) that
//!    re-scanning it every step stays within linear work overall.
//!
//! The returned MIS is identical to the sequential greedy result, like every
//! other implementation in this module family.

use greedy_graph::csr::Graph;
use greedy_prims::pack::par_pack;
use greedy_prims::permutation::Permutation;
use rayon::prelude::*;

use crate::mis::prefix::PrefixPolicy;
use crate::mis::{collect_in_vertices, VertexState};
use crate::stats::WorkStats;

/// Runs the packed-prefix (Theorem 4.5) parallel greedy MIS. Returns the
/// lexicographically-first MIS for π.
pub fn packed_prefix_mis(graph: &Graph, pi: &Permutation, policy: PrefixPolicy) -> Vec<u32> {
    packed_prefix_mis_with_stats(graph, pi, policy).0
}

/// Runs the packed-prefix parallel greedy MIS with work counters.
/// `rounds` counts prefixes, `steps` counts inner steps over packed
/// subgraphs, `vertex_work`/`edge_work` count examinations as elsewhere.
pub fn packed_prefix_mis_with_stats(
    graph: &Graph,
    pi: &Permutation,
    policy: PrefixPolicy,
) -> (Vec<u32>, WorkStats) {
    let n = graph.num_vertices();
    assert_eq!(
        pi.len(),
        n,
        "packed_prefix_mis: permutation covers {} elements but the graph has {} vertices",
        pi.len(),
        n
    );
    let max_degree = graph.max_degree();
    let rank = pi.rank();
    let order = pi.order();

    let mut state = vec![VertexState::Undecided; n];
    let mut stats = WorkStats::new();
    let mut start = 0usize;

    while start < n {
        let remaining = n - start;
        let k = policy.prefix_size(n, remaining, max_degree, stats.rounds);
        let prefix = &order[start..start + k];
        stats.rounds += 1;

        // Step 1+2: one parallel pass over the prefix handling external
        // edges (edges to vertices already decided or outside the prefix).
        // A vertex is knocked out if an earlier MIS neighbor exists; it is
        // accepted immediately if it has no *internal* edge (no undecided
        // neighbor inside this prefix, in either direction); otherwise it is
        // a survivor and goes to the packed subgraph G[P'].
        //
        // Accepting only internal-edge-free vertices keeps the survivor set
        // closed under internal adjacency: every remaining dependence of a
        // survivor is on another survivor, so the packed subgraph is
        // self-contained.
        #[derive(Clone, Copy, PartialEq)]
        enum First {
            Skip,    // already decided before this prefix
            Accept,  // no internal edges and no earlier MIS neighbor
            Reject,  // earlier MIS neighbor
            Survive, // has at least one internal edge
        }
        let prefix_lo = start as u32;
        let prefix_hi = (start + k) as u32;
        let first_pass: Vec<First> = prefix
            .par_iter()
            .map(|&v| {
                if state[v as usize] != VertexState::Undecided {
                    return First::Skip;
                }
                let mut has_internal = false;
                for &w in graph.neighbors(v) {
                    let wr = rank[w as usize];
                    match state[w as usize] {
                        VertexState::In => {
                            debug_assert!(wr < rank[v as usize]);
                            return First::Reject;
                        }
                        VertexState::Undecided if wr >= prefix_lo && wr < prefix_hi => {
                            has_internal = true;
                        }
                        _ => {}
                    }
                }
                if has_internal {
                    First::Survive
                } else {
                    First::Accept
                }
            })
            .collect();
        stats.vertex_work += prefix.len() as u64;
        stats.edge_work += prefix.iter().map(|&v| graph.degree(v) as u64).sum::<u64>();

        for (i, &v) in prefix.iter().enumerate() {
            match first_pass[i] {
                First::Accept => state[v as usize] = VertexState::In,
                First::Reject => state[v as usize] = VertexState::Out,
                First::Skip | First::Survive => {}
            }
        }

        // Step 3: pack the survivors (the vertices of G[P']) densely.
        let survive_flags: Vec<bool> = first_pass.iter().map(|&f| f == First::Survive).collect();
        let survivors: Vec<u32> = par_pack(prefix, &survive_flags);

        if !survivors.is_empty() {
            // Pack the induced subgraph: for each survivor, its earlier
            // neighbors *within the survivor set* (those are the only edges
            // that can still delay it — everything else is decided or later).
            let local_index: std::collections::HashMap<u32, u32> = survivors
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u32))
                .collect();
            let packed_parents: Vec<Vec<u32>> = survivors
                .par_iter()
                .map(|&v| {
                    graph
                        .neighbors(v)
                        .iter()
                        .filter(|&&w| rank[w as usize] < rank[v as usize])
                        .filter_map(|&w| local_index.get(&w).copied())
                        .collect()
                })
                .collect();
            stats.edge_work += survivors
                .iter()
                .map(|&v| graph.degree(v) as u64)
                .sum::<u64>();

            // Step 4: naive parallel greedy steps over the packed subgraph.
            // local_state mirrors `state` for the survivor set only.
            let mut local_state = vec![VertexState::Undecided; survivors.len()];
            let mut active: Vec<u32> = (0..survivors.len() as u32).collect();
            // Vertices outside the survivor set are all decided, so only the
            // packed parents matter from here on.
            while !active.is_empty() {
                stats.steps += 1;
                stats.vertex_work += active.len() as u64;
                let decisions: Vec<VertexState> = active
                    .par_iter()
                    .map(|&i| {
                        let mut waits = false;
                        for &p in &packed_parents[i as usize] {
                            match local_state[p as usize] {
                                VertexState::In => return VertexState::Out,
                                VertexState::Undecided => waits = true,
                                VertexState::Out => {}
                            }
                        }
                        if waits {
                            VertexState::Undecided
                        } else {
                            VertexState::In
                        }
                    })
                    .collect();
                stats.edge_work += active
                    .iter()
                    .map(|&i| packed_parents[i as usize].len() as u64)
                    .sum::<u64>();
                let mut next_active = Vec::with_capacity(active.len());
                for (j, &i) in active.iter().enumerate() {
                    match decisions[j] {
                        VertexState::Undecided => next_active.push(i),
                        s => local_state[i as usize] = s,
                    }
                }
                assert!(
                    next_active.len() < active.len(),
                    "packed_prefix_mis: no progress on the packed subgraph"
                );
                active = next_active;
            }
            for (i, &v) in survivors.iter().enumerate() {
                state[v as usize] = local_state[i];
            }
        }

        // Knock out later neighbors of everything this prefix accepted.
        let newly_in: Vec<u32> = prefix
            .iter()
            .copied()
            .filter(|&v| state[v as usize] == VertexState::In)
            .collect();
        let knocked: Vec<u32> = newly_in
            .par_iter()
            .flat_map_iter(|&v| {
                graph
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(move |&w| rank[w as usize] > rank[v as usize])
            })
            .collect();
        stats.edge_work += newly_in
            .iter()
            .map(|&v| graph.degree(v) as u64)
            .sum::<u64>();
        for w in knocked {
            if state[w as usize] == VertexState::Undecided {
                state[w as usize] = VertexState::Out;
            }
        }

        start += k;
    }

    (collect_in_vertices(&state), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::prefix::prefix_mis_with_stats;
    use crate::mis::sequential::sequential_mis;
    use crate::mis::verify::verify_mis;
    use crate::ordering::{identity_permutation, random_permutation};
    use greedy_graph::gen::random::random_graph;
    use greedy_graph::gen::rmat::rmat_graph;
    use greedy_graph::gen::structured::{
        complete_graph, cycle_graph, grid_graph, path_graph, star_graph,
    };
    use greedy_graph::Graph;

    fn policies() -> Vec<PrefixPolicy> {
        vec![
            PrefixPolicy::Fixed(1),
            PrefixPolicy::Fixed(31),
            PrefixPolicy::FractionOfInput(0.02),
            PrefixPolicy::FractionOfInput(1.0),
            PrefixPolicy::Adaptive { c: 2.0 },
        ]
    }

    #[test]
    fn empty_and_edgeless() {
        assert!(packed_prefix_mis(
            &Graph::empty(0),
            &identity_permutation(0),
            PrefixPolicy::default()
        )
        .is_empty());
        assert_eq!(
            packed_prefix_mis(
                &Graph::empty(6),
                &identity_permutation(6),
                PrefixPolicy::Fixed(2)
            ),
            vec![0, 1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..4 {
            let g = random_graph(500, 2_000, seed);
            let pi = random_permutation(500, seed + 60);
            let expected = sequential_mis(&g, &pi);
            for policy in policies() {
                let mis = packed_prefix_mis(&g, &pi, policy);
                assert_eq!(mis, expected, "seed {seed} policy {policy:?}");
                assert!(verify_mis(&g, &mis));
            }
        }
    }

    #[test]
    fn matches_sequential_on_structured_graphs() {
        for g in [
            path_graph(70),
            cycle_graph(71),
            star_graph(50),
            complete_graph(36),
            grid_graph(9, 8),
            rmat_graph(10, 5_000, 2),
        ] {
            let pi = random_permutation(g.num_vertices(), 13);
            let expected = sequential_mis(&g, &pi);
            for policy in [PrefixPolicy::Fixed(17), PrefixPolicy::FractionOfInput(1.0)] {
                assert_eq!(packed_prefix_mis(&g, &pi, policy), expected);
            }
        }
    }

    #[test]
    fn agrees_with_in_place_prefix_rounds_and_steps() {
        // Both process identical prefixes, so the outer round counts agree;
        // the packed variant may use fewer vertex examinations because the
        // first pass decides external-edge-only vertices immediately.
        let g = random_graph(2_000, 8_000, 5);
        let pi = random_permutation(2_000, 6);
        let policy = PrefixPolicy::Fixed(200);
        let (a, sa) = packed_prefix_mis_with_stats(&g, &pi, policy);
        let (b, sb) = prefix_mis_with_stats(&g, &pi, policy);
        assert_eq!(a, b);
        assert_eq!(sa.rounds, sb.rounds);
    }

    #[test]
    fn small_prefixes_have_small_packed_subgraphs() {
        // Lemma 4.3/4.4: for prefixes of size ~n/Δ′ the packed subgraph is a
        // vanishing fraction of the prefix, so the extra steps cost little.
        // Proxy check: with a prefix of 0.2% of n on a sparse random graph
        // (δ·d ≈ 0.02 ≪ 1) the survivors re-examined by the packed inner loop
        // are a small fraction of n, so total examinations stay close to n.
        let g = random_graph(10_000, 50_000, 7);
        let pi = random_permutation(10_000, 8);
        let (_, stats) =
            packed_prefix_mis_with_stats(&g, &pi, PrefixPolicy::FractionOfInput(0.002));
        assert!(
            stats.vertex_work < 11_000,
            "vertex work {} should stay near n = 10_000",
            stats.vertex_work
        );
    }

    #[test]
    fn identity_order_matches_sequential() {
        let g = random_graph(400, 1_500, 9);
        let pi = identity_permutation(400);
        assert_eq!(
            packed_prefix_mis(&g, &pi, PrefixPolicy::Fixed(37)),
            sequential_mis(&g, &pi)
        );
    }
}
