//! Algorithm 2: the parallel greedy MIS in synchronous rounds.
//!
//! Every round, the *roots* of the priority DAG — the undecided vertices all
//! of whose earlier neighbors are already decided out — join the MIS, and
//! their neighbors are knocked out. The number of rounds this takes is the
//! **dependence length** of (G, π), the quantity Theorem 3.5 bounds by
//! O(log² n) w.h.p. for random π.
//!
//! This is the "naïve" implementation the paper describes in Section 4: each
//! round examines every remaining vertex and its edges, so the total work is
//! O(m · dependence length). It is the clearest executable statement of
//! Algorithm 2 and doubles as the dependence-length measurement used by the
//! analysis module; the linear-work versions live in
//! [`crate::mis::prefix`] and [`crate::mis::rootset`].

use greedy_graph::csr::Graph;
use greedy_prims::permutation::Permutation;
use rayon::prelude::*;

use crate::mis::{collect_in_vertices, VertexState};
use crate::stats::WorkStats;

/// Runs Algorithm 2 and returns the lexicographically-first MIS for π.
pub fn rounds_mis(graph: &Graph, pi: &Permutation) -> Vec<u32> {
    rounds_mis_with_stats(graph, pi).0
}

/// Runs Algorithm 2, reporting counters. `stats.rounds` is the dependence
/// length of (graph, π).
pub fn rounds_mis_with_stats(graph: &Graph, pi: &Permutation) -> (Vec<u32>, WorkStats) {
    let n = graph.num_vertices();
    assert_eq!(
        pi.len(),
        n,
        "rounds_mis: permutation covers {} elements but the graph has {} vertices",
        pi.len(),
        n
    );
    let mut state = vec![VertexState::Undecided; n];
    let mut stats = WorkStats::new();
    // Vertices still undecided; shrinks every round.
    let mut remaining: Vec<u32> = (0..n as u32).collect();

    while !remaining.is_empty() {
        stats.rounds += 1;
        stats.steps += 1;

        // Phase 1: identify this round's roots. A root is an undecided vertex
        // none of whose earlier neighbors is still undecided (they are all
        // Out; an earlier In neighbor would already have knocked it out).
        let rank = pi.rank();
        let root_flags: Vec<bool> = remaining
            .par_iter()
            .map(|&v| {
                graph.neighbors(v).iter().all(|&w| {
                    rank[w as usize] > rank[v as usize] || state[w as usize] == VertexState::Out
                })
            })
            .collect();

        // Phase 2: every remaining vertex recomputes its state by reading the
        // root flags of its earlier neighbors (owner-writes, race-free).
        let root_set: Vec<bool> = {
            let mut flags = vec![false; n];
            for (i, &v) in remaining.iter().enumerate() {
                flags[v as usize] = root_flags[i];
            }
            flags
        };
        let new_states: Vec<VertexState> = remaining
            .par_iter()
            .map(|&v| {
                if root_set[v as usize] {
                    VertexState::In
                } else if graph.neighbors(v).iter().any(|&w| root_set[w as usize]) {
                    VertexState::Out
                } else {
                    VertexState::Undecided
                }
            })
            .collect();

        // Work accounting: each remaining vertex was examined once and its
        // full adjacency scanned (twice: once per phase — charge it once to
        // stay comparable with the sequential accounting).
        stats.vertex_work += remaining.len() as u64;
        stats.edge_work += remaining
            .iter()
            .map(|&v| graph.degree(v) as u64)
            .sum::<u64>();

        // Apply the new states and shrink the frontier.
        let mut next_remaining = Vec::with_capacity(remaining.len());
        for (i, &v) in remaining.iter().enumerate() {
            match new_states[i] {
                VertexState::Undecided => next_remaining.push(v),
                s => state[v as usize] = s,
            }
        }
        assert!(
            next_remaining.len() < remaining.len(),
            "rounds_mis: no progress in a round; the priority DAG handling is broken"
        );
        remaining = next_remaining;
    }

    (collect_in_vertices(&state), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::sequential::sequential_mis;
    use crate::mis::verify::verify_mis;
    use crate::ordering::{identity_permutation, random_permutation};
    use greedy_graph::gen::random::random_graph;
    use greedy_graph::gen::rmat::rmat_graph;
    use greedy_graph::gen::structured::{complete_graph, cycle_graph, path_graph, star_graph};
    use greedy_graph::Graph;

    #[test]
    fn empty_and_edgeless_graphs() {
        assert!(rounds_mis(&Graph::empty(0), &identity_permutation(0)).is_empty());
        assert_eq!(
            rounds_mis(&Graph::empty(4), &identity_permutation(4)),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn matches_sequential_on_structured_graphs() {
        for (name, g) in [
            ("path", path_graph(50)),
            ("cycle", cycle_graph(51)),
            ("star", star_graph(40)),
            ("complete", complete_graph(30)),
        ] {
            for seed in 0..3 {
                let pi = random_permutation(g.num_vertices(), seed);
                assert_eq!(
                    rounds_mis(&g, &pi),
                    sequential_mis(&g, &pi),
                    "mismatch on {name} with seed {seed}"
                );
            }
        }
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..5 {
            let g = random_graph(400, 1_600, seed);
            let pi = random_permutation(400, seed + 10);
            let mis = rounds_mis(&g, &pi);
            assert_eq!(mis, sequential_mis(&g, &pi), "seed {seed}");
            assert!(verify_mis(&g, &mis));
        }
    }

    #[test]
    fn matches_sequential_on_rmat() {
        let g = rmat_graph(9, 3_000, 1);
        let pi = random_permutation(g.num_vertices(), 5);
        assert_eq!(rounds_mis(&g, &pi), sequential_mis(&g, &pi));
    }

    #[test]
    fn complete_graph_needs_one_round() {
        // The paper's example: longest path in the priority DAG is Ω(n) but
        // the dependence length is O(1). For a complete graph a single round
        // decides everything: the unique root joins and knocks everyone out.
        let g = complete_graph(64);
        let pi = random_permutation(64, 2);
        let (_, stats) = rounds_mis_with_stats(&g, &pi);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn edgeless_graph_needs_one_round() {
        let g = Graph::empty(100);
        let (_, stats) = rounds_mis_with_stats(&g, &identity_permutation(100));
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn path_with_identity_order_is_the_adversarial_case() {
        // With the identity order on a path only one new root appears per
        // round (0, then 2, then 4, …): dependence length n/2. This is the
        // kind of order that makes the lexicographically-first MIS
        // P-complete in general; the random order below is what the paper's
        // theorem speaks to.
        let g = path_graph(10);
        let (_, stats) = rounds_mis_with_stats(&g, &identity_permutation(10));
        assert_eq!(stats.rounds, 5);
        let (_, random_stats) =
            rounds_mis_with_stats(&path_graph(512), &random_permutation(512, 1));
        assert!(random_stats.rounds < 40, "rounds = {}", random_stats.rounds);
    }

    #[test]
    fn adversarial_order_on_path_is_slow() {
        // Order the path so each vertex depends on the previous one:
        // rank v = n-1-v makes vertex n-1 earliest, n-2 next, ... so the
        // chain resolves in alternating fashion — still fast. A truly serial
        // chain needs ranks that alternate sides; instead verify the
        // dependence length never exceeds n and the result stays correct.
        let n = 64;
        let g = path_graph(n);
        let rank: Vec<u32> = (0..n as u32).rev().collect();
        let pi = greedy_prims::permutation::Permutation::from_rank(rank);
        let (mis, stats) = rounds_mis_with_stats(&g, &pi);
        assert!(stats.rounds as usize <= n);
        assert_eq!(mis, sequential_mis(&g, &pi));
    }

    #[test]
    fn dependence_length_is_small_for_random_orders() {
        // Theorem 3.5: O(log² n) w.h.p. For n = 2000 and a sparse random
        // graph, the dependence length should be far below n — use a loose
        // sanity threshold.
        let g = random_graph(2_000, 10_000, 3);
        let pi = random_permutation(2_000, 4);
        let (_, stats) = rounds_mis_with_stats(&g, &pi);
        assert!(
            stats.rounds < 60,
            "dependence length {} unexpectedly large",
            stats.rounds
        );
    }

    #[test]
    fn work_exceeds_sequential_work() {
        let g = random_graph(500, 2_000, 6);
        let pi = random_permutation(500, 7);
        let (_, stats) = rounds_mis_with_stats(&g, &pi);
        assert!(stats.vertex_work >= 500);
    }
}
