//! # greedy-core
//!
//! The algorithms of *"Greedy Sequential Maximal Independent Set and Matching
//! are Parallel on Average"* (Blelloch, Fineman, Shun; SPAA 2012).
//!
//! ## Maximal independent set (MIS)
//!
//! Given an undirected graph `G` and a total order π on its vertices, the
//! sequential greedy algorithm repeatedly takes the earliest remaining vertex,
//! adds it to the MIS, and removes it and its neighbors. The set it returns is
//! the *lexicographically first* MIS for π. This crate provides four
//! implementations that all return **exactly that same set**:
//!
//! * [`mis::sequential::sequential_mis`] — Algorithm 1, the plain loop.
//! * [`mis::rounds::rounds_mis`] — Algorithm 2: every vertex is decided as
//!   soon as all of its earlier neighbors are decided; runs in synchronous
//!   rounds whose count is the *dependence length* of (G, π).
//! * [`mis::prefix::prefix_mis`] — Algorithm 3: rounds operate on a prefix of
//!   the remaining vertices, trading extra work for parallelism. This is the
//!   implementation the paper uses for its experiments.
//! * [`mis::rootset::rootset_mis`] — the linear-work implementation of
//!   Lemma 4.2, which maintains the root set of the priority DAG explicitly.
//!
//! [`mis::luby::luby_mis`] implements Luby's Algorithm A as the comparison
//! baseline (it returns a valid MIS, but not the lexicographically first one).
//!
//! ## Maximal matching (MM)
//!
//! The same family for maximal matching on a random edge order
//! (Algorithm 4): [`matching::sequential::sequential_matching`],
//! [`matching::rounds::rounds_matching`], [`matching::prefix::prefix_matching`],
//! [`matching::rootset::rootset_matching`], plus the line-graph reduction
//! [`matching::reduction::matching_via_line_graph`] used as a test oracle.
//!
//! ## Analysis
//!
//! [`analysis`] measures the quantities the paper's theory bounds: the
//! dependence length of the priority DAG and the length of its longest
//! directed path (Theorem 3.5).
//!
//! ```
//! use greedy_core::prelude::*;
//! use greedy_graph::gen::random::random_graph;
//!
//! let g = random_graph(500, 2_000, 1);
//! let pi = random_permutation(g.num_vertices(), 7);
//!
//! let seq = sequential_mis(&g, &pi);
//! let par = prefix_mis(&g, &pi, PrefixPolicy::default());
//! assert_eq!(seq, par);               // determinism: same set, any schedule
//! assert!(verify_mis(&g, &par));      // independent and maximal
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod dag;
pub mod matching;
pub mod mis;
pub mod ordering;
pub mod stats;

/// Commonly used items.
pub mod prelude {
    pub use crate::analysis::{dependence_length, priority_dag_longest_path};
    pub use crate::dag::{greedy_from_scratch, repair_fixed_point, ConflictDag, RepairStats};
    pub use crate::matching::prefix::{prefix_matching, prefix_matching_with_stats};
    pub use crate::matching::rootset::rootset_matching;
    pub use crate::matching::rounds::rounds_matching;
    pub use crate::matching::sequential::sequential_matching;
    pub use crate::matching::verify::{verify_matching, verify_maximal_matching};
    pub use crate::mis::luby::luby_mis;
    pub use crate::mis::prefix::{prefix_mis, prefix_mis_with_stats, PrefixPolicy};
    pub use crate::mis::prefix_packed::{packed_prefix_mis, packed_prefix_mis_with_stats};
    pub use crate::mis::rootset::rootset_mis;
    pub use crate::mis::rounds::rounds_mis;
    pub use crate::mis::sequential::sequential_mis;
    pub use crate::mis::verify::{verify_mis, verify_same_set};
    pub use crate::ordering::{random_edge_permutation, random_permutation};
    pub use crate::stats::WorkStats;
    pub use greedy_prims::permutation::Permutation;
}
