//! Priority-DAG analysis: dependence length and longest directed path.
//!
//! The priority DAG of (G, π) orients every edge from its earlier endpoint to
//! its later one. Two quantities matter in the paper's analysis:
//!
//! * the **longest directed path**, which upper-bounds the dependence length
//!   (Lemma 3.3 bounds it per prefix);
//! * the **dependence length** — the number of iterations Algorithm 2 needs,
//!   i.e. the number of times the root set must be peeled before the DAG is
//!   empty. Theorem 3.5: O(log² n) w.h.p. for random π on *any* graph.
//!
//! The complete graph separates the two: its longest path is n−1 while its
//! dependence length is 1 (the single earliest vertex decides everyone).
//! The `dependence_length` experiment regenerates that comparison.

use greedy_graph::csr::Graph;
use greedy_prims::permutation::Permutation;

use crate::mis::rounds::rounds_mis_with_stats;

/// The length (number of vertices) of the longest directed path in the
/// priority DAG of (graph, π).
///
/// Computed by dynamic programming over vertices in priority order:
/// `depth(v) = 1 + max(depth(u))` over earlier neighbors `u`.
pub fn priority_dag_longest_path(graph: &Graph, pi: &Permutation) -> usize {
    let n = graph.num_vertices();
    assert_eq!(
        pi.len(),
        n,
        "priority_dag_longest_path: permutation covers {} elements but the graph has {} vertices",
        pi.len(),
        n
    );
    if n == 0 {
        return 0;
    }
    let rank = pi.rank();
    let mut depth = vec![0u32; n];
    let mut longest = 0u32;
    for pos in 0..n {
        let v = pi.element_at(pos) as usize;
        let mut d = 1u32;
        for &w in graph.neighbors(v as u32) {
            if rank[w as usize] < rank[v] {
                d = d.max(depth[w as usize] + 1);
            }
        }
        depth[v] = d;
        longest = longest.max(d);
    }
    longest as usize
}

/// The dependence length of (graph, π): the number of rounds Algorithm 2
/// takes, equivalently the number of root-set peels of the priority DAG.
pub fn dependence_length(graph: &Graph, pi: &Permutation) -> usize {
    rounds_mis_with_stats(graph, pi).1.rounds as usize
}

/// Per-round trace of Algorithm 2: the number of vertices accepted into the
/// MIS in each round. Its length is the dependence length; its sum is the
/// MIS size.
pub fn round_trace(graph: &Graph, pi: &Permutation) -> Vec<usize> {
    let n = graph.num_vertices();
    assert_eq!(pi.len(), n, "round_trace: permutation size mismatch");
    let rank = pi.rank();

    // Round of v = 1 + max round over earlier neighbors that are *not* out,
    // computed by simulating the peel: simpler and robust — run the peel.
    #[derive(Clone, Copy, PartialEq)]
    enum S {
        Undecided,
        In,
        Out,
    }
    let mut state = vec![S::Undecided; n];
    let mut remaining: Vec<u32> = (0..n as u32).collect();
    let mut trace = Vec::new();
    while !remaining.is_empty() {
        let roots: Vec<u32> = remaining
            .iter()
            .copied()
            .filter(|&v| {
                graph
                    .neighbors(v)
                    .iter()
                    .all(|&w| rank[w as usize] > rank[v as usize] || state[w as usize] == S::Out)
            })
            .collect();
        trace.push(roots.len());
        for &r in &roots {
            state[r as usize] = S::In;
        }
        for &r in &roots {
            for &w in graph.neighbors(r) {
                if state[w as usize] == S::Undecided {
                    state[w as usize] = S::Out;
                }
            }
        }
        let before = remaining.len();
        remaining.retain(|&v| state[v as usize] == S::Undecided);
        assert!(remaining.len() < before, "round_trace: no progress");
    }
    trace
}

/// Convenience: the expected-shape check of Theorem 3.5, returning
/// `(dependence_length, ceil(log2(n))^2)` so callers can compare the measured
/// value against the theory's order of growth.
pub fn dependence_vs_log_squared(graph: &Graph, pi: &Permutation) -> (usize, usize) {
    let n = graph.num_vertices().max(2);
    let log = (n as f64).log2().ceil() as usize;
    (dependence_length(graph, pi), log * log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::{identity_permutation, random_permutation};
    use greedy_graph::gen::random::random_graph;
    use greedy_graph::gen::structured::{complete_graph, path_graph, star_graph};
    use greedy_graph::Graph;

    #[test]
    fn longest_path_empty_and_edgeless() {
        assert_eq!(
            priority_dag_longest_path(&Graph::empty(0), &identity_permutation(0)),
            0
        );
        assert_eq!(
            priority_dag_longest_path(&Graph::empty(5), &identity_permutation(5)),
            1
        );
    }

    #[test]
    fn longest_path_of_complete_graph_is_n() {
        // Every pair is comparable, so the DAG is a total order: path of n vertices.
        let g = complete_graph(12);
        let pi = random_permutation(12, 1);
        assert_eq!(priority_dag_longest_path(&g, &pi), 12);
    }

    #[test]
    fn complete_graph_separates_path_from_dependence() {
        // The paper's motivating example: longest path Ω(n), dependence O(1).
        let g = complete_graph(40);
        let pi = random_permutation(40, 2);
        assert_eq!(priority_dag_longest_path(&g, &pi), 40);
        assert_eq!(dependence_length(&g, &pi), 1);
    }

    #[test]
    fn path_graph_identity_order() {
        // Orientation 0→1→2→…: the whole path is directed, and the identity
        // order is the adversarial one — only one new root appears per round
        // (vertex 0, then 2, then 4, …), so the dependence length is ~n/2.
        // A random order instead gives the O(log² n) behaviour.
        let g = path_graph(10);
        let pi = identity_permutation(10);
        assert_eq!(priority_dag_longest_path(&g, &pi), 10);
        assert_eq!(dependence_length(&g, &pi), 5);
        let random = dependence_length(&path_graph(512), &random_permutation(512, 3));
        assert!(
            random < 40,
            "random-order dependence length {random} should be polylog"
        );
    }

    #[test]
    fn dependence_length_equals_round_trace_length() {
        let g = random_graph(300, 1_200, 3);
        let pi = random_permutation(300, 4);
        let trace = round_trace(&g, &pi);
        assert_eq!(trace.len(), dependence_length(&g, &pi));
        let mis_size: usize = trace.iter().sum();
        let mis = crate::mis::sequential::sequential_mis(&g, &pi);
        assert_eq!(mis_size, mis.len());
    }

    #[test]
    fn dependence_length_below_longest_path() {
        for seed in 0..3 {
            let g = random_graph(400, 2_000, seed);
            let pi = random_permutation(400, seed + 5);
            assert!(dependence_length(&g, &pi) <= priority_dag_longest_path(&g, &pi));
        }
    }

    #[test]
    fn theorem_bound_shape_on_random_graph() {
        // Not a proof, but the measured dependence length should be within a
        // small constant of log²n for a random order (Theorem 3.5).
        let g = random_graph(3_000, 15_000, 6);
        let pi = random_permutation(3_000, 7);
        let (dep, log_sq) = dependence_vs_log_squared(&g, &pi);
        assert!(
            dep <= 2 * log_sq,
            "dependence length {dep} far above log²n = {log_sq}"
        );
    }

    #[test]
    fn star_graph_dependence_is_tiny() {
        let g = star_graph(1_000);
        let pi = random_permutation(1_000, 8);
        assert!(dependence_length(&g, &pi) <= 2);
    }
}
