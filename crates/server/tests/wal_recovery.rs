//! Crash-recovery correctness for the write-ahead log.
//!
//! The contract under test: for any update stream and a crash after any
//! prefix of committed rounds, `wal::recover` rebuilds state byte-identical
//! to a from-scratch engine that applied the same prefix — and a damaged
//! log tail (torn final record, bit-flipped CRC) truncates the replay at
//! the last valid record instead of panicking or diverging.

use std::fs;
use std::path::PathBuf;

use greedy_engine::prelude::{EdgeBatch, Engine};
use greedy_prims::random::hash64;
use greedy_server::prelude::*;
use greedy_server::wal::{self, FsyncPolicy, Wal, WalConfig};
use proptest::prelude::*;

/// A unique, empty scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "greedy_wal_recovery_{}_{}",
        name,
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn quick_wal(dir: PathBuf) -> WalConfig {
    WalConfig {
        dir,
        // Fsync off in tests: the page-cache view is the file view within
        // one process, and what recovery reads is the file, so durability
        // policy does not change any assertion here.
        fsync: FsyncPolicy::Off,
        segment_rounds: 4,
        checkpoint_every: 0,
        retain_all: false,
    }
}

/// The deterministic update stream every test replays: round `r` inserts a
/// handful of pseudorandom edges and deletes a couple of earlier ones.
fn round_batch(n: u32, stream: u64, r: u64) -> EdgeBatch {
    let mut batch = EdgeBatch::new();
    for i in 0..8 {
        batch.insert(
            (hash64(stream, r * 100 + 2 * i) % n as u64) as u32,
            (hash64(stream, r * 100 + 2 * i + 1) % n as u64) as u32,
        );
    }
    for i in 0..3 {
        // Deleting edges that may not exist is fine: the engine counts only
        // effective deletions, absent edges are no-ops.
        batch.delete(
            (hash64(stream ^ 7, r * 100 + i) % n as u64) as u32,
            (hash64(stream ^ 9, r * 100 + i) % n as u64) as u32,
        );
    }
    batch
}

/// Runs `rounds` rounds through an engine + WAL exactly as the scheduler's
/// commit path does (append each round's batch + exact delta), then stops
/// WITHOUT a final checkpoint — i.e. crashes. Returns the engine as it was
/// at the crash.
fn run_and_crash(cfg: &WalConfig, n: usize, seed: u64, stream: u64, rounds: u64) -> Engine {
    let mut engine = Engine::new(n, seed);
    let mut wal = Wal::create(cfg.clone(), &engine, 0).expect("wal create");
    for r in 1..=rounds {
        let batch = round_batch(n as u32, stream, r);
        let report = engine.apply_batch(&batch);
        let delta = FullDelta::from_report(r, &report);
        wal.append_round(r, &batch.insertions, &batch.deletions, &delta)
            .expect("wal append");
        wal.maybe_checkpoint(r, &engine).expect("wal checkpoint");
    }
    // Dropping the writer without close()/checkpoint(): the crash.
    engine
}

/// The from-scratch referee: a fresh engine that applies the same prefix.
fn replay_prefix(n: usize, seed: u64, stream: u64, rounds: u64) -> Engine {
    let mut engine = Engine::new(n, seed);
    for r in 1..=rounds {
        engine.apply_batch(&round_batch(n as u32, stream, r));
    }
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash after ANY prefix of rounds, with any (small) checkpoint
    /// cadence: recovery == from-scratch replay of that prefix, byte for
    /// byte.
    #[test]
    fn recovery_equals_replay_after_any_crash_prefix(
        rounds in 0u64..20,
        stream in 1u64..1_000,
        checkpoint_every in 0u64..7,
    ) {
        let dir = scratch(&format!("prop_{rounds}_{stream}_{checkpoint_every}"));
        let cfg = WalConfig { checkpoint_every, ..quick_wal(dir.clone()) };
        let crashed = run_and_crash(&cfg, 300, 11, stream, rounds);
        let recovered = wal::recover(&dir).expect("recover").expect("log exists");
        prop_assert_eq!(recovered.round, rounds);
        prop_assert!(!recovered.tail_truncated);
        prop_assert_eq!(
            recovered.engine.server_snapshot(),
            crashed.server_snapshot()
        );
        let referee = replay_prefix(300, 11, stream, rounds);
        prop_assert_eq!(
            recovered.engine.server_snapshot(),
            referee.server_snapshot()
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_final_record_is_truncated_not_fatal() {
    let dir = scratch("torn");
    let cfg = quick_wal(dir.clone());
    run_and_crash(&cfg, 200, 5, 77, 6);
    // Tear mid-record: a crash half way through the final append.
    wal::tear_log_tail(&dir, 5).expect("tear");
    let recovered = wal::recover(&dir).expect("recover").expect("log exists");
    assert_eq!(recovered.round, 5, "the torn round must be dropped");
    assert!(recovered.tail_truncated);
    let referee = replay_prefix(200, 5, 77, 5);
    assert_eq!(
        recovered.engine.server_snapshot(),
        referee.server_snapshot()
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_record_truncates_the_log_there() {
    let dir = scratch("bitflip");
    let cfg = WalConfig {
        // One big segment so all six rounds share a file and the flip can
        // land in the middle of it.
        segment_rounds: 1_000,
        ..quick_wal(dir.clone())
    };
    run_and_crash(&cfg, 200, 5, 78, 6);
    let seg = wal::list_segments(&dir).expect("list")[0];
    let path = dir.join(format!("wal-{seg:020}.log"));
    let mut bytes = fs::read(&path).expect("read segment");
    // Walk the record framing to the 4th record (round 4) and flip one
    // payload byte; rounds 1..=3 stay valid, 4..=6 must be discarded.
    let mut pos = 0usize;
    for _ in 0..3 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
    }
    bytes[pos + 8 + 2] ^= 0x10;
    fs::write(&path, &bytes).expect("write corrupted segment");
    let recovered = wal::recover(&dir).expect("recover").expect("log exists");
    assert_eq!(recovered.round, 3, "replay must stop before the bad CRC");
    assert!(recovered.tail_truncated);
    let referee = replay_prefix(200, 5, 78, 3);
    assert_eq!(
        recovered.engine.server_snapshot(),
        referee.server_snapshot()
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_truncate_superseded_segments_and_recovery_still_works() {
    let dir = scratch("truncate");
    let cfg = WalConfig {
        segment_rounds: 3,
        checkpoint_every: 5,
        ..quick_wal(dir.clone())
    };
    run_and_crash(&cfg, 250, 9, 123, 13);
    // Rounds 1..=13 with a checkpoint every 5: the newest checkpoint is at
    // round 10, and every segment wholly before round 11 is deleted.
    let checkpoints = wal::list_checkpoints(&dir).expect("list checkpoints");
    assert_eq!(*checkpoints.last().unwrap(), 10);
    assert_eq!(checkpoints.len(), 1, "older checkpoints are deleted");
    let segments = wal::list_segments(&dir).expect("list segments");
    assert!(
        segments.iter().all(|&first| first >= 8),
        "segments wholly covered by the round-10 checkpoint must be gone, kept: {segments:?}"
    );
    let recovered = wal::recover(&dir).expect("recover").expect("log exists");
    assert_eq!(recovered.round, 13);
    assert_eq!(recovered.checkpoint_round, 10);
    let referee = replay_prefix(250, 9, 123, 13);
    assert_eq!(
        recovered.engine.server_snapshot(),
        referee.server_snapshot()
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn server_restart_resumes_rounds_and_state_from_the_log() {
    let dir = scratch("restart");
    let config = ServerConfig {
        wal: Some(WalConfig {
            fsync: FsyncPolicy::PerRound,
            ..WalConfig::durable(dir.clone())
        }),
        ..ServerConfig::default()
    };

    // First life: commit a few rounds, remember the state, shut down
    // cleanly (which writes a final checkpoint).
    let handle = serve(Engine::new(60, 4), config.clone()).expect("serve");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    client.insert_edges(&[(1, 2), (3, 4)]).expect("insert");
    client.insert_edges(&[(5, 6)]).expect("insert");
    client.delete_edges(&[(1, 2)]).expect("delete");
    let stats = client.stats().expect("stats");
    assert!(
        stats.durable_round >= stats.round,
        "per-round fsync: every acked round is durable (round {}, durable {})",
        stats.round,
        stats.durable_round
    );
    let report = handle.shutdown();
    let first_life = report.engine.server_snapshot();
    let last_round = stats.round;

    // Second life: the engine argument is a decoy — the directory is
    // authoritative, so the recovered server must serve the first life's
    // state and CONTINUE its round numbering, not restart at 1.
    let handle = serve(Engine::new(60, 4), config).expect("re-serve");
    if greedy_obs::ENABLED {
        // How this server came up is the journal's first entry.
        let text = handle.metrics_text();
        assert!(
            text.contains(&format!(
                "wal_recovery round={last_round} replayed=0 tail_truncated=false"
            )),
            "recovery outcome must be journalled, got:\n{text}"
        );
    }
    assert_eq!(handle.committed_round(), last_round);
    assert_eq!(handle.snapshot().round, last_round);
    assert_eq!(handle.snapshot().state, first_life);
    assert!(handle.durable_round() >= last_round);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let delta = client.insert_edges(&[(7, 8)]).expect("insert");
    assert_eq!(delta.round, last_round + 1, "round ids must not restart");
    let report = handle.shutdown();
    assert_eq!(report.engine.num_edges(), 3); // {3,4} {5,6} {7,8}
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sharded_server_recovers_a_single_engine_log_and_continues() {
    use greedy_engine::prelude::ShardedEngine;

    // Cross-engine recovery: a log written by the single-arena engine is
    // picked up by a 3-shard server (recovery rebuilds the one-arena state;
    // the sharded engine re-partitions it — sound because the greedy fixed
    // point is unique given the recovered edges + seed), and vice versa a
    // sharded life's log restarts under the single-arena engine. The state,
    // round numbering, and subsequent commits carry straight through.
    let dir = scratch("sharded_restart");
    let config = ServerConfig {
        wal: Some(WalConfig {
            fsync: FsyncPolicy::PerRound,
            ..WalConfig::durable(dir.clone())
        }),
        ..ServerConfig::default()
    };

    let handle = serve(Engine::new(60, 4), config.clone()).expect("serve");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .insert_edges(&[(1, 2), (3, 4), (2, 3)])
        .expect("insert");
    client.delete_edges(&[(3, 4)]).expect("delete");
    let report = handle.shutdown();
    let first_life = report.engine.server_snapshot();
    let first_round = 2;

    // Second life: sharded. The engine argument's own state is a decoy.
    let handle = serve(ShardedEngine::new(60, 4, 3), config.clone()).expect("re-serve sharded");
    assert_eq!(handle.committed_round(), first_round);
    assert_eq!(handle.snapshot().state, first_life);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let delta = client.insert_edges(&[(7, 8), (40, 41)]).expect("insert");
    assert_eq!(delta.round, first_round + 1, "round ids must not restart");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards, 3);
    let report = handle.shutdown();
    assert_eq!(report.engine.shard_count(), 3);
    let second_life = report.engine.server_snapshot();

    // Third life: back to the single-arena engine, reading the sharded
    // life's log (same record format — the sweep test proves same bytes).
    let handle = serve(Engine::new(60, 4), config).expect("re-serve single");
    assert_eq!(handle.committed_round(), first_round + 1);
    assert_eq!(handle.snapshot().state, second_life);
    let report = handle.shutdown();
    assert_eq!(report.engine.num_edges(), 4); // {1,2} {2,3} {7,8} {40,41}
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn durable_lag_is_nonzero_under_group_commit_and_zero_per_round() {
    // Group commit fsyncs every 3rd round: after exactly one committed
    // round nothing is synced yet, so the disk verifiably trails the ack.
    let dir = scratch("lag");
    let config = ServerConfig {
        wal: Some(WalConfig {
            fsync: FsyncPolicy::EveryRounds(3),
            ..WalConfig::durable(dir.clone())
        }),
        ..ServerConfig::default()
    };
    let handle = serve(Engine::new(40, 6), config).expect("serve");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.insert_edges(&[(0, 1)]).expect("insert");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.round, 1);
    assert_eq!(stats.durable_round, 0, "round 1 must not be synced yet");
    assert_eq!(stats.durable_lag, 1, "StatsReply must expose the lag");
    if greedy_obs::ENABLED {
        assert!(
            handle.metrics_text().contains("server_durable_lag 1"),
            "the gauge must show the unsynced round"
        );
    }
    // Two more rounds trip the group fsync: the sawtooth returns to zero.
    client.insert_edges(&[(2, 3)]).expect("insert");
    client.insert_edges(&[(4, 5)]).expect("insert");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.round, 3);
    assert_eq!(stats.durable_round, 3);
    assert_eq!(stats.durable_lag, 0);
    if greedy_obs::ENABLED {
        assert!(handle.metrics_text().contains("server_durable_lag 0"));
    }
    handle.shutdown();

    // Per-round fsync never shows lag.
    let dir2 = scratch("lag_per_round");
    let config = ServerConfig {
        wal: Some(WalConfig::durable(dir2.clone())),
        ..ServerConfig::default()
    };
    let handle = serve(Engine::new(40, 6), config).expect("serve");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.insert_edges(&[(0, 1)]).expect("insert");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.durable_lag, 0, "PerRound acks only durable rounds");
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&dir2);
}

#[test]
fn recovery_after_unclean_server_stop_replays_every_acked_round() {
    let dir = scratch("unclean");
    let config = ServerConfig {
        wal: Some(WalConfig {
            fsync: FsyncPolicy::EveryRounds(2),
            // Keep every segment and checkpoint: the test deletes the final
            // checkpoint below, and replay-from-base needs the full log.
            retain_all: true,
            ..WalConfig::durable(dir.clone())
        }),
        ..ServerConfig::default()
    };
    let handle = serve(Engine::new(40, 8), config).expect("serve");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut last = 0;
    for r in 0..5u32 {
        last = client
            .insert_edges(&[(r, r + 10), (r + 1, r + 20)])
            .expect("insert")
            .round;
    }
    let report = handle.shutdown();
    // Simulate the crash by discarding the *final checkpoint's* claim to be
    // the newest state: delete every checkpoint except the base one, so
    // recovery must come from log replay alone.
    for ck in wal::list_checkpoints(&dir).expect("list") {
        if ck != 0 {
            let _ = fs::remove_file(dir.join(format!("checkpoint-{ck:020}.ckpt")));
        }
    }
    let recovered = wal::recover(&dir).expect("recover").expect("log exists");
    assert_eq!(recovered.round, last);
    assert_eq!(recovered.checkpoint_round, 0);
    assert_eq!(recovered.replayed, last);
    assert_eq!(
        recovered.engine.server_snapshot(),
        report.engine.server_snapshot()
    );
    let _ = fs::remove_dir_all(&dir);
}
