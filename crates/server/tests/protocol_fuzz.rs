//! Structured-mutation battery over the wire protocol: every malformed
//! frame — truncated, oversized, garbage, byte-flipped, count-lying — must
//! decode to an error (and, over a socket, an `Error` response + close),
//! never a panic or an attacker-sized allocation.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use greedy_engine::prelude::Engine;
use greedy_server::prelude::*;
use greedy_server::protocol::{
    read_frame, MAX_DELTA_MATCH_FLIPS, MAX_DELTA_MIS_FLIPS, MAX_DELTA_SLOTS, MAX_FRAME_LEN,
    SUBSCRIBE_FRESH,
};

/// Every request variant, encoded.
fn request_corpus() -> Vec<Vec<u8>> {
    [
        Request::InsertEdges(vec![(0, 1), (5, 9)]),
        Request::DeleteEdges(vec![(2, 3)]),
        Request::QueryMis(vec![0, 1, 2]),
        Request::QueryMatched(vec![7]),
        Request::Stats,
        Request::Metrics,
        Request::Shutdown,
        Request::Subscribe { from: 3 },
        Request::Subscribe {
            from: SUBSCRIBE_FRESH,
        },
        Request::Trace { last_k: 0 },
        Request::Trace { last_k: 32 },
        Request::Trace { last_k: u64::MAX },
    ]
    .iter()
    .map(Request::encode)
    .collect()
}

/// Every response variant, encoded — including the new push-path frames.
fn response_corpus() -> Vec<Vec<u8>> {
    [
        Response::Committed(RoundDelta {
            round: 3,
            inserted: 2,
            deleted: 1,
            mis_changed: 4,
            matching_changed: 2,
            matching_slots: vec![0, 9],
            truncated: false,
        }),
        Response::MisMembership {
            round: 1,
            in_mis: vec![true, false],
        },
        Response::Matched {
            round: 2,
            partners: vec![u32::MAX, 3],
        },
        Response::Stats(StatsReply::default()),
        Response::Metrics("# TYPE server_queries_total counter\nserver_queries_total 4\n".into()),
        Response::ShuttingDown,
        Response::Delta(DeltaFrame {
            round: 5,
            inserted: 1,
            deleted: 0,
            mis_flips: vec![1, 8],
            match_flips: vec![MatchFlip {
                slot: 2,
                u: 1,
                v: 8,
                matched: true,
            }],
            truncated: false,
        }),
        Response::Snapshot(SnapshotChunk {
            round: 5,
            num_vertices: 70,
            num_edges: 3,
            start: 0,
            mis_words: vec![0b101, 0b11],
            partners: vec![u32::MAX; 70],
            last: true,
        }),
        Response::Error("boom".into()),
        Response::Trace(vec![
            RoundTrace::default(),
            RoundTrace {
                round: 9,
                updates: 4,
                total_us: 120,
                mis_rounds: 2,
                ..RoundTrace::default()
            },
        ]),
        Response::Trace(Vec::new()),
    ]
    .iter()
    .map(Response::encode)
    .collect()
}

/// No strict prefix of a valid payload may decode: every message must be
/// consumed exactly, so truncation at *any* byte is detected.
#[test]
fn every_truncation_is_rejected() {
    for payload in request_corpus() {
        for cut in 0..payload.len() {
            assert!(
                Request::decode(&payload[..cut]).is_err(),
                "request prefix of {cut}/{} bytes decoded",
                payload.len()
            );
        }
        assert!(Request::decode(&payload).is_ok());
    }
    for payload in response_corpus() {
        for cut in 0..payload.len() {
            assert!(
                Response::decode(&payload[..cut]).is_err(),
                "response prefix of {cut}/{} bytes decoded",
                payload.len()
            );
        }
        assert!(Response::decode(&payload).is_ok());
    }
}

/// Trailing bytes after a complete message are rejected, whatever they are.
#[test]
fn trailing_bytes_are_rejected() {
    for payload in request_corpus() {
        for extra in [0u8, 1, 0xFF] {
            let mut long = payload.clone();
            long.push(extra);
            assert!(Request::decode(&long).is_err());
        }
    }
    for payload in response_corpus() {
        let mut long = payload.clone();
        long.push(0);
        assert!(Response::decode(&long).is_err());
    }
}

/// Single-byte mutations at every position: decoding must never panic.
/// (A mutation may still decode — flipping a vertex id yields a different
/// valid message — the property is robustness, not rejection.)
#[test]
fn byte_flips_never_panic() {
    for payload in request_corpus() {
        for pos in 0..payload.len() {
            for val in [0u8, 1, 0x7F, 0xFF, payload[pos].wrapping_add(1)] {
                let mut mutated = payload.clone();
                mutated[pos] = val;
                let _ = Request::decode(&mutated);
                let _ = Response::decode(&mutated);
            }
        }
    }
    for payload in response_corpus() {
        for pos in 0..payload.len() {
            for val in [0u8, 0xFF, payload[pos].wrapping_add(1)] {
                let mut mutated = payload.clone();
                mutated[pos] = val;
                let _ = Response::decode(&mutated);
                let _ = Request::decode(&mutated);
            }
        }
    }
}

/// A list count that promises more elements than the payload holds must be
/// rejected *before* allocation — a u32::MAX count in a 20-byte payload
/// would otherwise reserve gigabytes. Exercised for every list-bearing
/// field of every frame kind, including the new delta/snapshot lists.
#[test]
fn lying_list_counts_do_not_allocate() {
    // Request lists: InsertEdges pairs, QueryMis vertices.
    for tag in [1u8, 2, 3, 4] {
        let mut buf = vec![tag];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&buf).is_err());
    }
    // Committed.matching_slots.
    let mut buf = vec![1u8];
    buf.extend_from_slice(&[0u8; 40]); // round..matching_changed
    buf.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(Response::decode(&buf).is_err());
    // Delta.mis_flips and Delta.match_flips.
    let mut buf = vec![7u8];
    buf.extend_from_slice(&[0u8; 24]); // round, inserted, deleted
    buf.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(Response::decode(&buf).is_err());
    let mut buf = vec![7u8];
    buf.extend_from_slice(&[0u8; 24]);
    buf.extend_from_slice(&0u32.to_le_bytes()); // empty mis_flips
    buf.extend_from_slice(&u32::MAX.to_le_bytes()); // lying match_flips
    assert!(Response::decode(&buf).is_err());
    // Snapshot.mis_words and Snapshot.partners.
    let mut buf = vec![8u8];
    buf.extend_from_slice(&[0u8; 32]); // round..start
    buf.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(Response::decode(&buf).is_err());
    let mut buf = vec![8u8];
    buf.extend_from_slice(&[0u8; 32]);
    buf.extend_from_slice(&0u32.to_le_bytes()); // empty words
    buf.extend_from_slice(&u32::MAX.to_le_bytes()); // lying partners
    assert!(Response::decode(&buf).is_err());
    // Error message length.
    let mut buf = vec![6u8];
    buf.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(Response::decode(&buf).is_err());
    // Trace record count (a u64): u64::MAX records in a 10-byte payload
    // would otherwise reserve 120 exabytes of RoundTraces.
    let mut buf = vec![11u8, 1, 15];
    buf.extend_from_slice(&u64::MAX.to_le_bytes());
    assert!(Response::decode(&buf).is_err());
    // And a subtler liar: a count the remaining bytes cannot carry.
    let mut buf = vec![11u8, 1, 15];
    buf.extend_from_slice(&3u64.to_le_bytes());
    buf.extend_from_slice(&[0u8; 15 * 8]); // one record, not three
    assert!(Response::decode(&buf).is_err());
}

/// `Request::Trace` over a live socket: a lying `last_k` cannot size any
/// allocation (the server clamps to its recorder), truncated trace request
/// bodies get an `Error` + close, and the server keeps serving.
#[test]
fn trace_requests_with_lying_or_truncated_bodies_are_harmless() {
    let handle = serve(Engine::new(50, 3), ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client.insert_edges(&[(0, 1), (2, 3)]).unwrap();

    // A client claiming u64::MAX traces gets what the recorder holds.
    let traces = client.trace(u64::MAX).unwrap();
    assert_eq!(traces, handle.recent_rounds());

    // Truncated Trace body (tag present, `last_k` cut short).
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let payload = [9u8, 5, 0, 0]; // needs 8 bytes of last_k
        raw.write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        raw.write_all(&payload).unwrap();
        let reply = read_one_frame(&mut raw);
        assert!(matches!(
            Response::decode(&reply).unwrap(),
            Response::Error(_)
        ));
        assert_eof(&mut raw);
    }
    // Trace with trailing garbage.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut payload = Request::Trace { last_k: 1 }.encode();
        payload.push(0xAA);
        raw.write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        raw.write_all(&payload).unwrap();
        let reply = read_one_frame(&mut raw);
        assert!(matches!(
            Response::decode(&reply).unwrap(),
            Response::Error(_)
        ));
        assert_eof(&mut raw);
    }

    // Still serving.
    let mut client = Client::connect(addr).unwrap();
    client.insert_edges(&[(4, 5)]).unwrap();
    handle.shutdown();
}

/// Deterministic garbage: random payloads must never panic the decoders.
#[test]
fn random_garbage_never_panics() {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..2_000 {
        let len = (next() % 64 + 1) as usize;
        let payload: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
    }
}

/// The cap boundary (the capped-delta footgun): at exactly the cap nothing
/// is truncated and the frame fits; one past the cap the wire encoding is
/// flagged truncated, and a replica refuses to fold it.
#[test]
fn caps_bind_exactly_at_the_boundary() {
    // A commit acknowledgment at exactly MAX_DELTA_SLOTS fits a frame.
    let full = Response::Committed(RoundDelta {
        round: 1,
        matching_changed: MAX_DELTA_SLOTS as u64,
        matching_slots: (0..MAX_DELTA_SLOTS as u32).collect(),
        truncated: false,
        ..RoundDelta::default()
    });
    let payload = full.encode();
    assert!(payload.len() as u32 <= MAX_FRAME_LEN);
    assert_eq!(Response::decode(&payload).unwrap(), full);

    // A delta at exactly both wire caps is not truncated and fits a frame.
    let at_cap = FullDelta {
        round: 1,
        inserted: 0,
        deleted: 0,
        mis_flips: (0..MAX_DELTA_MIS_FLIPS as u32).collect(),
        match_flips: (0..MAX_DELTA_MATCH_FLIPS as u32)
            .map(|i| MatchFlip {
                slot: i,
                u: i,
                v: i + 1,
                matched: true,
            })
            .collect(),
    };
    let frame = at_cap.to_wire();
    assert!(!frame.truncated, "exactly at the cap must not truncate");
    let payload = Response::Delta(frame).encode();
    assert!(
        payload.len() as u32 <= MAX_FRAME_LEN,
        "a maximal untruncated delta must fit the frame cap, got {} bytes",
        payload.len()
    );

    // One past either cap: truncated on the wire, refused by the replica.
    for (extra_mis, extra_match) in [(1usize, 0usize), (0, 1)] {
        let over = FullDelta {
            mis_flips: (0..(MAX_DELTA_MIS_FLIPS + extra_mis) as u32).collect(),
            match_flips: (0..(MAX_DELTA_MATCH_FLIPS + extra_match) as u32)
                .map(|i| MatchFlip {
                    slot: i,
                    u: 0,
                    v: 1,
                    matched: true,
                })
                .collect(),
            ..at_cap.clone()
        };
        let frame = over.to_wire();
        assert!(frame.truncated, "past the cap must truncate");
        let empty = greedy_engine::prelude::ServerSnapshot::from_parts(0, &[0], &[u32::MAX; 2]);
        let mut replica = ReplicaState::from_snapshot(0, &empty);
        assert_eq!(
            replica.fold(&frame),
            Err(FoldError::Truncated),
            "a replica must refuse a truncated delta"
        );
    }
}

fn read_one_frame(stream: &mut TcpStream) -> Vec<u8> {
    read_frame(stream).unwrap().expect("expected a frame")
}

fn assert_eof(stream: &mut TcpStream) {
    let mut buf = [0u8; 1];
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    assert_eq!(stream.read(&mut buf).unwrap_or(0), 0, "expected close");
}

/// Malformed Subscribe traffic over a live socket: the server answers
/// `Error`, closes that connection, and keeps serving everyone else.
#[test]
fn malformed_subscribe_frames_error_close_and_leave_the_server_up() {
    let handle = serve(Engine::new(50, 3), ServerConfig::default()).unwrap();
    let addr = handle.addr();

    // Truncated Subscribe body (tag present, `from` cut short).
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let payload = [7u8, 1, 2, 3]; // needs 8 more bytes
        raw.write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        raw.write_all(&payload).unwrap();
        let reply = read_one_frame(&mut raw);
        assert!(matches!(
            Response::decode(&reply).unwrap(),
            Response::Error(_)
        ));
        assert_eof(&mut raw);
    }
    // Subscribe with trailing garbage.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut payload = Request::Subscribe { from: 1 }.encode();
        payload.extend_from_slice(&[9, 9]);
        raw.write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        raw.write_all(&payload).unwrap();
        let reply = read_one_frame(&mut raw);
        assert!(matches!(
            Response::decode(&reply).unwrap(),
            Response::Error(_)
        ));
        assert_eof(&mut raw);
    }
    // A lying length prefix larger than the frame cap.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&(MAX_FRAME_LEN + 1).to_le_bytes()).unwrap();
        let reply = read_one_frame(&mut raw);
        assert!(matches!(
            Response::decode(&reply).unwrap(),
            Response::Error(_)
        ));
        assert_eof(&mut raw);
    }

    // The server is still fully serviceable — including for new subscribers.
    let mut client = Client::connect(addr).unwrap();
    client.insert_edges(&[(1, 2)]).unwrap();
    let mut subscriber = Client::connect(addr).unwrap().subscribe_fresh().unwrap();
    let state = subscriber.next_round().unwrap().expect("snapshot seed");
    assert_eq!(state.num_edges(), 1);
    drop(subscriber);
    handle.shutdown();
}
