//! Subscriber lifecycle over real sockets: ring replay, the full-snapshot
//! fallback for subscribers past the ring, pruning of disconnected
//! subscribers, and commit-path liveness regardless of subscriber health.

use std::thread;
use std::time::{Duration, Instant};

use greedy_engine::prelude::Engine;
use greedy_server::prelude::*;

fn quick() -> ServerConfig {
    ServerConfig {
        rounds: RoundConfig {
            max_batch_updates: 4,
            max_delay: Duration::from_millis(1),
        },
        ..ServerConfig::default()
    }
}

/// A subscriber whose base round is still inside the delta ring is caught
/// up by replay — zero resyncs — and then rides the live feed.
#[test]
fn recent_base_is_caught_up_from_the_ring() {
    let handle = serve(Engine::new(200, 5), quick()).unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();

    // Capture a base state, then fall a few rounds behind (well inside the
    // default 64-round ring).
    let mut seed_sub = Client::connect(addr).unwrap().subscribe_fresh().unwrap();
    client.insert_edges(&[(0, 1)]).unwrap();
    let base = seed_sub.next_round().unwrap().unwrap().clone();
    drop(seed_sub);
    for i in 0..5u32 {
        client.insert_edges(&[(2 * i + 2, 2 * i + 3)]).unwrap();
    }

    let base_round = base.round();
    let mut sub = Client::connect(addr).unwrap().subscribe_from(base).unwrap();
    // Replay must advance one round at a time, contiguously, with no
    // snapshot fallback.
    let mut round = base_round;
    while round < handle.committed_round() {
        let state = sub.next_round().unwrap().expect("feed closed early");
        assert_eq!(state.round(), round + 1, "replay must be contiguous");
        round = state.round();
    }
    assert_eq!(sub.resyncs(), 0, "a ring-covered base must not resync");
    assert_eq!(
        sub.state().unwrap().to_snapshot(),
        handle.snapshot().state,
        "replayed state must converge on the published snapshot"
    );
    handle.shutdown();
}

/// A subscriber that stalls past the K-round ring gets the full-snapshot
/// fallback and still converges to the exact published state.
#[test]
fn base_past_the_ring_falls_back_to_a_snapshot_and_converges() {
    let handle = serve(
        Engine::new(200, 6),
        ServerConfig {
            delta_ring: 2, // tiny ring: three rounds behind is already too far
            ..quick()
        },
    )
    .unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();

    let mut seed_sub = Client::connect(addr).unwrap().subscribe_fresh().unwrap();
    client.insert_edges(&[(0, 1)]).unwrap();
    let base = seed_sub.next_round().unwrap().unwrap().clone();
    drop(seed_sub);
    // Push the ring far past the base.
    for i in 0..10u32 {
        client.insert_edges(&[(2 * i + 2, 2 * i + 3)]).unwrap();
    }
    assert!(handle.committed_round() > base.round() + 2);

    let mut sub = Client::connect(addr).unwrap().subscribe_from(base).unwrap();
    let state = sub
        .next_round()
        .unwrap()
        .expect("feed closed early")
        .clone();
    assert_eq!(sub.resyncs(), 1, "past the ring must resync via snapshot");
    assert_eq!(
        state.to_snapshot(),
        handle.snapshot().state,
        "snapshot fallback must land on the published state"
    );
    // And the connection keeps serving deltas afterwards.
    let resync_round = state.round();
    client.insert_edges(&[(100, 101)]).unwrap();
    let state = sub
        .next_round()
        .unwrap()
        .expect("feed closed early")
        .clone();
    assert!(state.round() > resync_round);
    assert_eq!(sub.resyncs(), 1, "post-resync rounds fold as deltas");
    handle.shutdown();
}

/// Disconnected subscribers are pruned without blocking the commit path,
/// and commit latency stays bounded with subscribers attached, detached,
/// or never draining.
#[test]
fn dead_or_stalled_subscribers_never_block_commits() {
    let handle = serve(Engine::new(2_000, 7), quick()).unwrap();
    let addr = handle.addr();

    // One subscriber that disconnects immediately, one that never reads.
    let dead = Client::connect(addr).unwrap().subscribe_fresh().unwrap();
    drop(dead);
    let stalled = Client::connect(addr).unwrap().subscribe_fresh().unwrap();

    let mut client = Client::connect(addr).unwrap();
    let started = Instant::now();
    let commits = 300usize;
    for i in 0..commits as u32 {
        client
            .insert_edges(&[(i % 1_000, 1_000 + (i % 1_000))])
            .unwrap();
    }
    let elapsed = started.elapsed();
    // The commit path only ever try_sends toward subscribers, so even a
    // subscriber that never drains cannot stretch commits toward the 5s
    // write timeout or block on its channel. The bound is generous (CI
    // machines vary) but orders of magnitude below any blocking regime.
    assert!(
        elapsed < Duration::from_millis(200 * 50),
        "{commits} commits took {elapsed:?} with dead/stalled subscribers"
    );

    // The stalled subscriber can still catch up afterwards (possibly via a
    // lag resync) and lands byte-identically on the published state.
    let mut stalled = stalled;
    stalled.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let target = handle.committed_round();
    loop {
        let state = stalled.next_round().unwrap().expect("feed closed early");
        if state.round() >= target {
            break;
        }
    }
    assert_eq!(
        stalled.state().unwrap().to_snapshot(),
        handle.snapshot().state
    );
    handle.shutdown();
}

/// Shutdown flushes the feed: a live subscriber receives every committed
/// round (including the final one) before the stream ends cleanly.
#[test]
fn shutdown_delivers_the_final_round_then_closes_the_feed() {
    let handle = serve(Engine::new(100, 8), quick()).unwrap();
    let addr = handle.addr();

    let mut sub = Client::connect(addr).unwrap().subscribe_fresh().unwrap();
    let collector = thread::spawn(move || {
        let mut last = None;
        while let Some(state) = sub.next_round().unwrap() {
            last = Some((state.round(), state.to_snapshot()));
        }
        last
    });

    let mut client = Client::connect(addr).unwrap();
    for i in 0..20u32 {
        client.insert_edges(&[(i, i + 50)]).unwrap();
    }
    let report = handle.shutdown();
    let (round, snapshot) = collector.join().unwrap().expect("no rounds seen");
    assert!(round >= 1, "the subscriber never advanced past round 0");
    assert_eq!(
        snapshot,
        report.engine.server_snapshot(),
        "the last pushed round must be the final committed state"
    );
}
