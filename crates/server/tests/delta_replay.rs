//! The delta path's correctness spine: folding the per-round delta stream
//! over the round-0 snapshot must reproduce, byte for byte, every snapshot
//! the server published — at every rayon pool size, and end-to-end over a
//! real socket.

use std::thread;
use std::time::Duration;

use greedy_engine::prelude::{EdgeBatch, Engine};
use greedy_graph::gen::random::random_graph;
use greedy_prims::random::hash64;
use greedy_server::prelude::*;

fn in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

/// 1, 2, 3, 7, and whatever this machine reports — the same sweep the
/// umbrella determinism suite uses.
fn sweep_threads() -> Vec<usize> {
    let machine = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut t = vec![1, 2, 3, 7, machine];
    t.sort_unstable();
    t.dedup();
    t
}

/// Drives a fresh engine through a deterministic 10-round update stream
/// (inserts + deletions drawn from present edges) and returns each round's
/// exact delta plus each round's published snapshot.
fn run_stream(threads: usize) -> (Vec<FullDelta>, Vec<greedy_engine::prelude::ServerSnapshot>) {
    in_pool(threads, || {
        let base = random_graph(2_000, 6_000, 41);
        let mut engine = Engine::from_graph(&base, 13);
        let mut deltas = Vec::new();
        let mut snapshots = vec![engine.server_snapshot()];
        for round in 1..=10u64 {
            let mut batch = EdgeBatch::new();
            for i in 0..60 {
                batch.insert(
                    (hash64(201, round * 1_000 + 2 * i) % 2_000) as u32,
                    (hash64(201, round * 1_000 + 2 * i + 1) % 2_000) as u32,
                );
            }
            for i in 0..25 {
                let x = (hash64(202, round * 1_000 + 2 * i) % 2_000) as u32;
                let adj = engine.graph().neighbors(x);
                if !adj.is_empty() {
                    let w =
                        adj[(hash64(202, round * 1_000 + 2 * i + 1) % adj.len() as u64) as usize];
                    batch.delete(x, w);
                }
            }
            let report = engine.apply_batch(&batch);
            deltas.push(FullDelta::from_report(round, &report));
            snapshots.push(engine.server_snapshot());
        }
        (deltas, snapshots)
    })
}

/// The property test the tentpole hangs on, swept across pool sizes: the
/// delta stream is schedule-independent, and folding it over round 0
/// re-derives every published snapshot byte for byte.
#[test]
fn folded_delta_stream_matches_snapshots_at_every_thread_count() {
    let (ref_deltas, ref_snapshots) = run_stream(1);
    assert!(
        ref_deltas.iter().any(|d| !d.match_flips.is_empty())
            && ref_deltas.iter().any(|d| !d.mis_flips.is_empty()),
        "the stream never flipped anything — the test is vacuous"
    );
    for threads in sweep_threads() {
        let (deltas, snapshots) = run_stream(threads);
        assert_eq!(
            deltas, ref_deltas,
            "delta stream changed with {threads} threads"
        );
        assert_eq!(
            snapshots, ref_snapshots,
            "snapshots changed with {threads} threads"
        );
        let mut replica = ReplicaState::from_snapshot(0, &snapshots[0]);
        for (delta, expected) in deltas.iter().zip(&snapshots[1..]) {
            let frame = delta.to_wire();
            assert!(!frame.truncated, "stream deltas must fit the wire");
            replica.fold(&frame).expect("contiguous stream must fold");
            assert_eq!(
                &replica.to_snapshot(),
                expected,
                "replica diverged at round {} with {threads} threads",
                delta.round
            );
        }
    }
}

/// Server-side version of the same property: every delta the round recorder
/// captured, folded over the pre-traffic snapshot, reproduces every
/// published snapshot — under concurrent writers over real sockets.
#[test]
fn recorded_delta_stream_refolds_every_published_snapshot() {
    let base = random_graph(1_500, 4_000, 17);
    let handle = serve(
        Engine::from_graph(&base, 29),
        ServerConfig {
            rounds: RoundConfig {
                max_batch_updates: 64,
                max_delay: Duration::from_millis(1),
            },
            record_rounds: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();
    let round0 = handle.snapshot();
    assert_eq!(round0.round, 0);

    let writers: Vec<_> = (0..6u64)
        .map(|w| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..25u64 {
                    let a = (hash64(301, w * 1_000 + 2 * i) % 1_500) as u32;
                    let b = (hash64(301, w * 1_000 + 2 * i + 1) % 1_500) as u32;
                    if i % 4 == 3 {
                        client.delete_edges(&[(a, b)]).unwrap();
                    } else {
                        client.insert_edges(&[(a, b)]).unwrap();
                    }
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    let report = handle.shutdown();
    assert!(!report.rounds.is_empty());

    let mut replica = ReplicaState::from_snapshot(0, &round0.state);
    for committed in &report.rounds {
        assert_eq!(
            committed.delta.round, committed.round,
            "recorded delta must be keyed by its round"
        );
        let frame = committed.delta.to_wire();
        assert!(!frame.truncated);
        replica.fold(&frame).expect("recorded stream must fold");
        assert_eq!(
            replica.to_snapshot(),
            committed.snapshot.state,
            "folded replica diverges from the published snapshot at round {}",
            committed.round
        );
        assert_eq!(
            replica.num_edges() as usize,
            committed.snapshot.state.num_edges()
        );
    }
    assert_eq!(
        replica.to_snapshot(),
        report.engine.server_snapshot(),
        "final folded state must equal the final engine state"
    );
}

/// The sharded tentpole's serving-layer acceptance sweep: a server driven by
/// the vertex-partitioned engine at S ∈ {1, 2, 3, 7} publishes byte-identical
/// snapshots, emits a byte-identical recorded delta stream, and writes
/// byte-identical WAL files (round records *and* checkpoints) compared to the
/// single-arena engine over the same committed rounds. One sequential writer
/// pins the round boundaries: each submit blocks until its round commits, so
/// round k holds exactly call k's updates in every run.
#[test]
fn sharded_server_rounds_match_single_engine_byte_for_byte() {
    use greedy_engine::prelude::{ServerSnapshot, ShardedEngine};
    use greedy_server::wal::{FsyncPolicy, WalConfig};

    let base = random_graph(1_200, 3_500, 53);
    let config = |dir: std::path::PathBuf| ServerConfig {
        rounds: RoundConfig {
            max_batch_updates: 4096,
            max_delay: Duration::from_millis(1),
        },
        record_rounds: true,
        wal: Some(WalConfig {
            dir,
            fsync: FsyncPolicy::Off,
            segment_rounds: 3,
            checkpoint_every: 4,
            retain_all: false,
        }),
        ..ServerConfig::default()
    };
    let scratch = |shards: usize| {
        let dir = std::env::temp_dir().join(format!(
            "greedy_shard_sweep_s{}_{}",
            shards,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    // Drives one server through 10 deterministic single-writer rounds and
    // returns (per-round published snapshots, wire delta stream, final
    // stats reply, WAL directory bytes keyed by file name).
    type WalFiles = Vec<(String, Vec<u8>)>;
    let run = |handle: ServerHandle<ShardedEngine>,
               dir: std::path::PathBuf|
     -> (Vec<ServerSnapshot>, Vec<DeltaFrame>, StatsReply, WalFiles) {
        let mut client = Client::connect(handle.addr()).unwrap();
        for round in 1..=10u64 {
            let mut inserts = Vec::new();
            let mut deletes = Vec::new();
            for i in 0..40 {
                inserts.push((
                    (hash64(501, round * 1_000 + 2 * i) % 1_200) as u32,
                    (hash64(501, round * 1_000 + 2 * i + 1) % 1_200) as u32,
                ));
            }
            for i in 0..15 {
                deletes.push((
                    (hash64(502, round * 1_000 + 2 * i) % 1_200) as u32,
                    (hash64(502, round * 1_000 + 2 * i + 1) % 1_200) as u32,
                ));
            }
            client.insert_edges(&inserts).unwrap();
            client.delete_edges(&deletes).unwrap();
        }
        let stats = client.stats().unwrap();
        drop(client);
        let report = handle.shutdown();
        let snapshots: Vec<ServerSnapshot> = report
            .rounds
            .iter()
            .map(|c| c.snapshot.state.clone())
            .collect();
        let deltas: Vec<DeltaFrame> = report.rounds.iter().map(|c| c.delta.to_wire()).collect();
        let mut files: WalFiles = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        let _ = std::fs::remove_dir_all(&dir);
        (snapshots, deltas, stats, files)
    };

    let ref_dir = scratch(1);
    let handle = serve(
        ShardedEngine::from_graph(&base, 31, 1),
        config(ref_dir.clone()),
    )
    .unwrap();
    let (ref_snapshots, ref_deltas, ref_stats, ref_files) = run(handle, ref_dir);
    assert_eq!(ref_snapshots.len(), 20, "one round per client call");
    assert_eq!(ref_stats.shards, 1);
    // One shard owns every update, so the high-water mark is the largest
    // sub-batch a round ever staged — the 40-insert calls.
    assert_eq!(ref_stats.max_shard_staged, 40);
    assert!(
        ref_files.iter().any(|(n, _)| n.contains("checkpoint")),
        "the cadence must have written a mid-stream checkpoint"
    );

    for shards in [2usize, 3, 7] {
        let dir = scratch(shards);
        let handle = serve(
            ShardedEngine::from_graph(&base, 31, shards),
            config(dir.clone()),
        )
        .unwrap();
        let (snapshots, deltas, stats, files) = run(handle, dir);
        assert_eq!(
            snapshots, ref_snapshots,
            "published snapshots changed with {shards} shards"
        );
        assert_eq!(
            deltas, ref_deltas,
            "recorded delta stream changed with {shards} shards"
        );
        assert_eq!(files, ref_files, "WAL bytes changed with {shards} shards");
        assert_eq!(stats.shards, shards as u64, "stats must report the layout");
        assert!(
            stats.max_shard_staged > 0 && stats.max_shard_staged <= 40,
            "per-shard staging high-water mark out of range: {}",
            stats.max_shard_staged
        );
        // The snapshot-derived counters ride the same wire block and must be
        // S-independent.
        assert_eq!(
            (
                stats.round,
                stats.num_edges,
                stats.mis_size,
                stats.matching_size,
                stats.edges_inserted,
                stats.edges_deleted
            ),
            (
                ref_stats.round,
                ref_stats.num_edges,
                ref_stats.mis_size,
                ref_stats.matching_size,
                ref_stats.edges_inserted,
                ref_stats.edges_deleted
            ),
            "snapshot counters changed with {shards} shards"
        );
    }
}

/// End-to-end over the socket: a push subscriber's reconstructed state is
/// byte-identical to the recorded published snapshot of every round it
/// lands on, including the final one.
#[test]
fn tcp_subscriber_reconstruction_is_byte_identical() {
    let handle = serve(
        Engine::from_graph(&random_graph(1_000, 3_000, 7), 19),
        ServerConfig {
            rounds: RoundConfig {
                max_batch_updates: 32,
                max_delay: Duration::from_millis(1),
            },
            record_rounds: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let mut subscriber = Client::connect(addr).unwrap().subscribe_fresh().unwrap();
    let collector = thread::spawn(move || {
        let mut states = Vec::new();
        while let Some(state) = subscriber.next_round().unwrap() {
            states.push((state.round(), state.to_snapshot()));
        }
        (states, subscriber.resyncs())
    });

    let writers: Vec<_> = (0..4u64)
        .map(|w| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..20u64 {
                    let a = (hash64(401, w * 1_000 + 2 * i) % 1_000) as u32;
                    let b = (hash64(401, w * 1_000 + 2 * i + 1) % 1_000) as u32;
                    client.insert_edges(&[(a, b)]).unwrap();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    let report = handle.shutdown();
    let (states, resyncs) = collector.join().unwrap();

    assert!(!states.is_empty(), "the subscriber saw no rounds");
    // Every state the subscriber reconstructed must match the published
    // snapshot of the same round, byte for byte.
    let mut checked = 0usize;
    for (round, snapshot) in &states {
        if let Some(committed) = report.rounds.iter().find(|c| c.round == *round) {
            assert_eq!(
                snapshot, &committed.snapshot.state,
                "subscriber state diverges from round {round}"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no subscriber round overlapped the record");
    // The feed drains fully at shutdown: the last reconstructed state is the
    // final committed round's.
    let (last_round, last_state) = states.last().unwrap();
    assert_eq!(*last_round, report.rounds.last().unwrap().round);
    assert_eq!(last_state, &report.engine.server_snapshot());
    // With a live subscriber attached from the start, reconstruction should
    // be delta-driven: at most the initial seeding snapshot.
    assert!(
        resyncs <= 1,
        "an attached subscriber resynced {resyncs} times"
    );
}
