//! End-to-end observability checks: the `Request::Metrics` wire frame must
//! return exactly what `ServerHandle::metrics_text()` renders, the commit
//! pipeline must actually land samples in the registry, and disabling
//! metrics must degrade to a constant exposition rather than an error.

use std::time::Duration;

use greedy_engine::prelude::Engine;
use greedy_server::prelude::*;

/// Pulls `name value` off the exposition (first exact-name match).
fn metric_value(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let (n, v) = line.split_once(' ')?;
        (n == name).then(|| v.parse().ok())?
    })
}

#[test]
fn wire_metrics_match_handle_metrics_byte_for_byte() {
    let handle = serve(Engine::new(200, 11), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // Traffic: a few committed rounds plus reads on both query paths.
    client.insert_edges(&[(0, 1), (1, 2), (2, 3)]).unwrap();
    client.insert_edges(&[(3, 4), (10, 11)]).unwrap();
    client.delete_edges(&[(1, 2)]).unwrap();
    client.query_mis(&[0, 1, 2, 3]).unwrap();
    client.query_matched(&[10, 11]).unwrap();

    // The server is quiesced: every round above was acknowledged *after* its
    // trace was recorded, and scraping touches no instrument — so the wire
    // exposition and the in-process one must be identical bytes, repeatedly.
    let over_wire = client.metrics().unwrap();
    let in_process = handle.metrics_text();
    assert_eq!(over_wire, in_process, "wire and handle expositions differ");
    assert_eq!(
        client.metrics().unwrap(),
        over_wire,
        "scrape perturbed state"
    );

    if greedy_obs::ENABLED {
        assert_eq!(
            metric_value(&over_wire, "server_rounds_committed_total"),
            Some(3)
        );
        assert_eq!(metric_value(&over_wire, "server_queries_total"), Some(2));
        assert_eq!(
            metric_value(&over_wire, "server_commit_total_us_count"),
            Some(3)
        );
        assert_eq!(metric_value(&over_wire, "server_query_us_count"), Some(2));
        assert_eq!(
            metric_value(&over_wire, "server_repair_rounds_mis_count"),
            Some(3)
        );
        assert!(metric_value(&over_wire, "server_connections_total").unwrap() >= 1);
        // 3 + 2 - 1 effective updates across the three rounds.
        assert_eq!(
            metric_value(&over_wire, "server_updates_effective_total"),
            Some(6)
        );

        // The flight recorder kept every round, newest last.
        let traces = handle.recent_rounds();
        assert_eq!(traces.len(), 3);
        assert_eq!(traces.last().unwrap().round, handle.committed_round());
        assert!(traces.iter().all(|t| t.total_us >= t.apply_us));

        // Stats carries the histogram-backed percentiles.
        let stats = client.stats().unwrap();
        assert!(stats.commit_p50_us <= stats.commit_p99_us);
        assert!(stats.commit_p99_us > 0);
    }

    handle.shutdown();
}

#[test]
fn subscriber_resyncs_and_gauge_show_up() {
    let handle = serve(Engine::new(100, 5), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.insert_edges(&[(0, 1)]).unwrap();

    let mut sub = Client::connect(handle.addr())
        .unwrap()
        .subscribe_fresh()
        .unwrap();
    sub.set_timeout(Some(Duration::from_secs(30))).unwrap();
    // A fresh subscriber is seeded by a full snapshot stream.
    sub.next_round().unwrap().expect("snapshot seed");

    if greedy_obs::ENABLED {
        let text = handle.metrics_text();
        assert_eq!(metric_value(&text, "server_feed_subscribers"), Some(1));
        assert!(metric_value(&text, "server_feed_resyncs_total").unwrap() >= 1);
    }
    drop(sub);
    handle.shutdown();
}

#[test]
fn disabled_metrics_serve_a_constant_exposition() {
    let config = ServerConfig {
        metrics: false,
        ..ServerConfig::default()
    };
    let handle = serve(Engine::new(50, 3), config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.insert_edges(&[(0, 1)]).unwrap();

    assert_eq!(handle.metrics_text(), "# metrics disabled\n");
    assert_eq!(client.metrics().unwrap(), handle.metrics_text());
    assert!(handle.metrics().is_none());
    assert!(handle.recent_rounds().is_empty());

    // Stats still answers; the histogram-backed fields just stay zero.
    let stats = client.stats().unwrap();
    assert_eq!(stats.commit_p50_us, 0);
    assert_eq!(stats.round, 1);

    handle.shutdown();
}
