//! End-to-end observability checks: the `Request::Metrics` wire frame must
//! return exactly what `ServerHandle::metrics_text()` renders, the commit
//! pipeline must actually land samples in the registry, and disabling
//! metrics must degrade to a constant exposition rather than an error.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use greedy_engine::prelude::Engine;
use greedy_server::prelude::*;
use greedy_server::protocol::read_frame;

/// Pulls `name value` off the exposition (first exact-name match).
fn metric_value(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let (n, v) = line.split_once(' ')?;
        (n == name).then(|| v.parse().ok())?
    })
}

#[test]
fn wire_metrics_match_handle_metrics_byte_for_byte() {
    let handle = serve(Engine::new(200, 11), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // Traffic: a few committed rounds plus reads on both query paths.
    client.insert_edges(&[(0, 1), (1, 2), (2, 3)]).unwrap();
    client.insert_edges(&[(3, 4), (10, 11)]).unwrap();
    client.delete_edges(&[(1, 2)]).unwrap();
    client.query_mis(&[0, 1, 2, 3]).unwrap();
    client.query_matched(&[10, 11]).unwrap();

    // The server is quiesced: every round above was acknowledged *after* its
    // trace was recorded, and scraping touches no instrument — so the wire
    // exposition and the in-process one must be identical bytes, repeatedly.
    let over_wire = client.metrics().unwrap();
    let in_process = handle.metrics_text();
    assert_eq!(over_wire, in_process, "wire and handle expositions differ");
    assert_eq!(
        client.metrics().unwrap(),
        over_wire,
        "scrape perturbed state"
    );

    if greedy_obs::ENABLED {
        assert_eq!(
            metric_value(&over_wire, "server_rounds_committed_total"),
            Some(3)
        );
        assert_eq!(metric_value(&over_wire, "server_queries_total"), Some(2));
        assert_eq!(
            metric_value(&over_wire, "server_commit_total_us_count"),
            Some(3)
        );
        assert_eq!(metric_value(&over_wire, "server_query_us_count"), Some(2));
        assert_eq!(
            metric_value(&over_wire, "server_repair_rounds_mis_count"),
            Some(3)
        );
        assert!(metric_value(&over_wire, "server_connections_total").unwrap() >= 1);
        // 3 + 2 - 1 effective updates across the three rounds.
        assert_eq!(
            metric_value(&over_wire, "server_updates_effective_total"),
            Some(6)
        );

        // The flight recorder kept every round, newest last.
        let traces = handle.recent_rounds();
        assert_eq!(traces.len(), 3);
        assert_eq!(traces.last().unwrap().round, handle.committed_round());
        assert!(traces.iter().all(|t| t.total_us >= t.apply_us));

        // Stats carries the histogram-backed percentiles.
        let stats = client.stats().unwrap();
        assert!(stats.commit_p50_us <= stats.commit_p99_us);
        assert!(stats.commit_p99_us > 0);
    }

    handle.shutdown();
}

#[test]
fn trace_frame_over_tcp_is_byte_identical_to_in_process_encoding() {
    let handle = serve(Engine::new(300, 23), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    client.insert_edges(&[(0, 1), (1, 2), (4, 5)]).unwrap();
    client.insert_edges(&[(2, 3), (20, 21)]).unwrap();
    client.delete_edges(&[(1, 2)]).unwrap();

    // Raw socket: the tentpole guarantee is that the wire body of a Trace
    // response is *exactly* `encode_round_traces` over what the in-process
    // flight recorder returns — one canonical encoder, zero drift.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let payload = Request::Trace { last_k: u64::MAX }.encode();
    raw.write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    raw.write_all(&payload).unwrap();
    let reply = read_frame(&mut raw).unwrap().expect("a trace frame");
    assert_eq!(reply[0], 11, "Trace response tag");
    let expected = encode_round_traces(&handle.recent_rounds());
    assert_eq!(
        &reply[1..],
        &expected[..],
        "wire trace body must be byte-identical to the in-process encoding"
    );

    // The typed client decodes the same bytes back to the same traces, and
    // `last_k` clamps to the newest records.
    let all = client.trace(u64::MAX).unwrap();
    assert_eq!(all, handle.recent_rounds());
    let last_two = client.trace(2).unwrap();
    assert_eq!(last_two, handle.trace(2));
    if greedy_obs::ENABLED {
        assert_eq!(all.len(), 3);
        assert_eq!(last_two.len(), 2);
        assert_eq!(last_two[1].round, handle.committed_round());
        assert_eq!(&all[1..], &last_two[..], "tail must be the newest rounds");
    } else {
        assert!(all.is_empty());
        assert!(last_two.is_empty());
    }
    assert!(client.trace(0).unwrap().is_empty());

    handle.shutdown();
}

#[test]
fn engine_internals_and_journal_ride_the_exposition() {
    let handle = serve(Engine::new(400, 9), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    // Enough churn to guarantee arena activity beyond the initial build.
    let edges: Vec<(u32, u32)> = (0..300u32).map(|i| (i, (i + 7) % 400)).collect();
    client.insert_edges(&edges).unwrap();
    client.delete_edges(&edges[..150]).unwrap();

    let text = client.metrics().unwrap();
    assert_eq!(text, handle.metrics_text(), "wire and handle must agree");
    if greedy_obs::ENABLED {
        // The engine set is merged into the same exposition as the server
        // set, and the mandatory internals are live after real traffic.
        let value = |name: &str| {
            text.lines()
                .find_map(|l| {
                    let (n, v) = l.split_once(' ')?;
                    (n == name).then(|| v.parse::<i64>().ok())?
                })
                .unwrap_or_else(|| panic!("metric {name} missing"))
        };
        assert!(value("engine_rebuilds_total") >= 1, "initial build counts");
        assert!(value("engine_arena_capacity") > 0);
        assert!(value("engine_arena_live") > 0);
        assert!(value("engine_mis_repair_work_count") > 0);
        // Per-trigger counters tile the total.
        let by_reason: i64 = [
            "engine_rebuilds_initial_total",
            "engine_rebuilds_insert_overflow_total",
            "engine_rebuilds_dead_space_total",
            "engine_rebuilds_shrink_total",
        ]
        .iter()
        .map(|n| value(n))
        .sum();
        assert_eq!(by_reason, value("engine_rebuilds_total"));
        // The journal rendering rides along, comment-prefixed. The *initial*
        // build predates the journal attachment (only its counter survives,
        // via the instrument clone's first delta), but inserting 300 edges
        // into segments built empty forces a runtime overflow rebuild, and
        // that one must be journalled with its trigger.
        assert!(text.contains("# event_journal retained="));
        assert!(text.contains("# event seq="));
        assert!(text.contains("arena_rebuild shard=0 reason=insert_overflow"));
        let journal_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# event")).collect();
        assert!(!journal_lines.is_empty());
        // Everything non-metric in the exposition is comment-prefixed.
        assert!(text
            .lines()
            .all(|l| l.starts_with('#') || l.split(' ').count() == 2));
    }
    handle.shutdown();
}

#[test]
fn subscriber_resyncs_and_gauge_show_up() {
    let handle = serve(Engine::new(100, 5), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.insert_edges(&[(0, 1)]).unwrap();

    let mut sub = Client::connect(handle.addr())
        .unwrap()
        .subscribe_fresh()
        .unwrap();
    sub.set_timeout(Some(Duration::from_secs(30))).unwrap();
    // A fresh subscriber is seeded by a full snapshot stream.
    sub.next_round().unwrap().expect("snapshot seed");

    if greedy_obs::ENABLED {
        let text = handle.metrics_text();
        assert_eq!(metric_value(&text, "server_feed_subscribers"), Some(1));
        assert!(metric_value(&text, "server_feed_resyncs_total").unwrap() >= 1);
    }
    drop(sub);
    handle.shutdown();
}

#[test]
fn disabled_metrics_serve_a_constant_exposition() {
    let config = ServerConfig {
        metrics: false,
        ..ServerConfig::default()
    };
    let handle = serve(Engine::new(50, 3), config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.insert_edges(&[(0, 1)]).unwrap();

    assert_eq!(handle.metrics_text(), "# metrics disabled\n");
    assert_eq!(client.metrics().unwrap(), handle.metrics_text());
    assert!(handle.metrics().is_none());
    assert!(handle.recent_rounds().is_empty());

    // Stats still answers; the histogram-backed fields just stay zero.
    let stats = client.stats().unwrap();
    assert_eq!(stats.commit_p50_us, 0);
    assert_eq!(stats.round, 1);

    handle.shutdown();
}
