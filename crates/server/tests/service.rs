//! End-to-end tests of the update/query service over real sockets.
//!
//! The load-bearing property is **round coherence**: every snapshot the
//! server publishes must be byte-identical to what a from-scratch greedy
//! engine computes on the committed edge set — i.e. group-committing
//! concurrent writers into shared rounds loses nothing and invents nothing.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use greedy_engine::prelude::{EdgeBatch, Engine};
use greedy_graph::csr::Graph;
use greedy_graph::gen::random::random_graph;
use greedy_server::prelude::*;

fn quick_rounds() -> RoundConfig {
    RoundConfig {
        max_batch_updates: 256,
        max_delay: Duration::from_millis(1),
    }
}

#[test]
fn client_round_trips_against_direct_engine() {
    let base = random_graph(500, 1_500, 11);
    let handle = serve(
        Engine::from_graph(&base, 23),
        ServerConfig {
            rounds: quick_rounds(),
            record_rounds: false,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Pre-traffic queries answer from round 0 and match a direct engine.
    let oracle = Engine::from_graph(&base, 23);
    let vs: Vec<u32> = (0..500).collect();
    let (round, bits) = client.query_mis(&vs).unwrap();
    assert_eq!(round, 0);
    let expected: Vec<bool> = vs.iter().map(|&v| oracle.in_mis(v)).collect();
    assert_eq!(bits, expected);

    // A write commits, the delta is the engine's report, and subsequent
    // queries see a round at least that new.
    let mut oracle = oracle;
    let updates = [(0u32, 400u32), (1, 401), (2, 402)];
    let delta = client.insert_edges(&updates).unwrap();
    let report = oracle.apply_batch(&EdgeBatch::from_pairs(updates, []));
    assert!(delta.round >= 1);
    assert_eq!(delta.inserted as usize, report.edges_inserted);
    assert_eq!(delta.mis_changed as usize, report.mis_changed.len());

    let (round, bits) = client.query_mis(&vs).unwrap();
    assert!(round >= delta.round);
    let expected: Vec<bool> = vs.iter().map(|&v| oracle.in_mis(v)).collect();
    assert_eq!(bits, expected);

    // Partner queries agree with the oracle's matching.
    let (_, partners) = client.query_matched(&vs).unwrap();
    let snap = oracle.server_snapshot();
    let expected: Vec<Option<u32>> = vs.iter().map(|&v| snap.partner_of(v)).collect();
    assert_eq!(partners, expected);

    // Deletion round-trip.
    let delta = client.delete_edges(&[(0, 400)]).unwrap();
    assert_eq!(delta.deleted, 1);
    oracle.apply_batch(&EdgeBatch::from_pairs([], [(0, 400)]));

    // Stats reflect the committed state.
    let stats = client.stats().unwrap();
    assert_eq!(stats.num_vertices, 500);
    assert_eq!(stats.num_edges as usize, oracle.num_edges());
    assert_eq!(stats.mis_size as usize, oracle.mis().len());
    assert!(stats.batches >= 2);

    let report = handle.shutdown();
    assert_eq!(report.engine.num_edges(), oracle.num_edges());
    assert_eq!(
        report.engine.server_snapshot(),
        oracle.server_snapshot(),
        "served state must equal the directly-driven engine"
    );
}

/// Concurrent writers land in coherent rounds: replaying the committed
/// batches from scratch reproduces, round for round, exactly the snapshots
/// the server published — and the final state equals a from-scratch greedy
/// engine on the final edge set.
#[test]
fn concurrent_writers_produce_coherent_recorded_rounds() {
    let n = 2_000u32;
    let seed = 5;
    let handle = serve(
        Engine::new(n as usize, seed),
        ServerConfig {
            rounds: RoundConfig {
                max_batch_updates: 64,
                max_delay: Duration::from_millis(1),
            },
            record_rounds: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let writers: Vec<_> = (0..8u32)
        .map(|w| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut last_round = 0;
                for i in 0..30u32 {
                    // Disjoint per-writer edge spaces keep the final edge set
                    // independent of interleaving; coherence is checked
                    // against what actually committed, either way.
                    let u = w * 200 + i;
                    let v = w * 200 + i + 100;
                    let delta = if i % 5 == 4 {
                        client.delete_edges(&[(u - 1, v - 1)]).unwrap()
                    } else {
                        client.insert_edges(&[(u, v)]).unwrap()
                    };
                    assert!(delta.round >= last_round, "rounds move forward");
                    last_round = delta.round;
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }

    let report = handle.shutdown();
    assert!(!report.rounds.is_empty());
    assert!(
        report.rounds.len() < 240,
        "8 writers x 30 submissions must group-commit into fewer rounds, got {}",
        report.rounds.len()
    );

    // Replay: every published snapshot equals an engine that has seen
    // exactly the committed batches, in order.
    let mut replay = Engine::new(n as usize, seed);
    for committed in &report.rounds {
        let batch = EdgeBatch {
            insertions: committed.insertions.clone(),
            deletions: committed.deletions.clone(),
        };
        replay.apply_batch(&batch);
        assert_eq!(
            replay.server_snapshot(),
            committed.snapshot.state,
            "published snapshot of round {} diverges from replay",
            committed.round
        );
        assert_eq!(committed.snapshot.stats.batches, committed.round);
    }
    assert_eq!(replay.server_snapshot(), report.engine.server_snapshot());

    // From-scratch recompute of the final edge set: byte-identical state.
    let final_graph: Graph = report.engine.snapshot().graph;
    let scratch = Engine::from_graph(&final_graph, seed);
    assert_eq!(
        scratch.server_snapshot(),
        report.engine.server_snapshot(),
        "final served state must equal a from-scratch greedy recompute"
    );
}

#[test]
fn malformed_frames_get_an_error_and_leave_the_server_serving() {
    let handle = serve(Engine::new(10, 1), ServerConfig::default()).unwrap();
    let addr = handle.addr();

    // 1. Unknown request tag: expect an Error response, then close.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let payload = [99u8]; // no such tag
        raw.write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        raw.write_all(&payload).unwrap();
        let reply = read_one_frame(&mut raw);
        match Response::decode(&reply).unwrap() {
            Response::Error(msg) => assert!(msg.contains("bad request"), "got: {msg}"),
            other => panic!("expected Error, got {other:?}"),
        }
        assert_eof(&mut raw);
    }

    // 2. Oversized length prefix: rejected before allocation.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let reply = read_one_frame(&mut raw);
        assert!(matches!(
            Response::decode(&reply).unwrap(),
            Response::Error(_)
        ));
        assert_eof(&mut raw);
    }

    // 3. Truncated payload (length says 10, body delivers 2, then close).
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&10u32.to_le_bytes()).unwrap();
        raw.write_all(&[1, 2]).unwrap();
        raw.shutdown(std::net::Shutdown::Write).unwrap();
        let reply = read_one_frame(&mut raw);
        assert!(matches!(
            Response::decode(&reply).unwrap(),
            Response::Error(_)
        ));
    }

    // The server is still fully functional for well-formed clients.
    let mut client = Client::connect(addr).unwrap();
    let delta = client.insert_edges(&[(1, 2)]).unwrap();
    assert_eq!(delta.inserted, 1);
    let report = handle.shutdown();
    assert_eq!(report.engine.num_edges(), 1);
}

#[test]
fn out_of_range_ids_are_domain_errors_and_keep_the_connection() {
    let handle = serve(Engine::new(8, 2), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let err = client.insert_edges(&[(0, 8)]).unwrap_err();
    assert!(err.to_string().contains("out of range"), "got: {err}");
    let err = client.query_mis(&[9]).unwrap_err();
    assert!(err.to_string().contains("out of range"), "got: {err}");

    // Same connection keeps working afterwards.
    let delta = client.insert_edges(&[(0, 7)]).unwrap();
    assert_eq!(delta.inserted, 1);
    handle.shutdown();
}

#[test]
fn clean_shutdown_joins_all_threads_and_drains_staged_updates() {
    let handle = serve(
        Engine::new(100, 9),
        ServerConfig {
            rounds: RoundConfig {
                // Neither flush bound can fire on its own: only the shutdown
                // drain can commit what we stage.
                max_batch_updates: 1_000_000,
                max_delay: Duration::from_secs(3600),
            },
            record_rounds: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // A writer whose round can only commit through the shutdown drain.
    let writer = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.insert_edges(&[(0, 1), (2, 3)]).unwrap()
    });
    // Idle connections must not keep the server alive either.
    let idle = Client::connect(addr).unwrap();
    // Give the writer a moment to actually stage its updates (its submission
    // blocks until the shutdown drain, so there is no commit to wait on).
    thread::sleep(Duration::from_millis(50));
    assert_eq!(
        handle.committed_round(),
        0,
        "nothing can commit before drain"
    );

    // shutdown() returns only once every thread is joined — if a connection
    // or engine thread leaked, this would hang the test instead of passing.
    let report = handle.shutdown();
    let delta = writer.join().unwrap();
    assert_eq!(delta.inserted, 2, "staged updates commit during shutdown");
    assert_eq!(report.engine.num_edges(), 2);
    assert_eq!(report.rounds.len(), 1);
    drop(idle);

    // The listener is gone: nothing accepts on that port any more. (A
    // connect could only succeed if another process grabbed the ephemeral
    // port in this instant — not a realistic CI race.)
    assert!(
        TcpStream::connect(addr).is_err(),
        "no listener may survive shutdown"
    );
}

#[test]
fn client_initiated_shutdown_stops_the_server() {
    let handle = serve(Engine::new(20, 3), ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client.insert_edges(&[(0, 1)]).unwrap();
    client.shutdown_server().unwrap();

    // New writers are refused from now on (either the connect fails because
    // the accept loop already exited, or the submission reports shutdown).
    if let Ok(mut late) = Client::connect(addr) {
        late.set_timeout(Some(Duration::from_secs(5))).unwrap();
        assert!(late.insert_edges(&[(2, 3)]).is_err());
    }
    let report = handle.shutdown();
    assert_eq!(report.engine.num_edges(), 1);
}

/// Readers are answered from the published snapshot: a query's round id is
/// monotone and never behind a commit the same thread already observed.
#[test]
fn queries_observe_monotone_rounds_while_writers_stream() {
    let handle = serve(
        Engine::from_graph(&random_graph(1_000, 3_000, 4), 31),
        ServerConfig {
            rounds: quick_rounds(),
            record_rounds: false,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let writer = {
        let stop = stop.clone();
        thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut i = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                i += 1;
                let u = i % 900;
                client.insert_edges(&[(u, u + 37)]).unwrap();
                client.delete_edges(&[(u, u + 37)]).unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let stop = stop.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut last = 0u64;
                let mut observed = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (round, bits) = client.query_mis(&[1, 2, 3]).unwrap();
                    assert!(round >= last, "snapshot rounds went backwards");
                    assert_eq!(bits.len(), 3);
                    last = round;
                    observed += 1;
                }
                (last, observed)
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(300));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
    for r in readers {
        let (last, observed) = r.join().unwrap();
        assert!(observed > 0);
        assert!(last > 0, "readers saw committed rounds");
    }
    handle.shutdown();
}

// ------------------------------------------------------------------ helpers

fn read_one_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).unwrap();
    payload
}

fn assert_eof(stream: &mut TcpStream) {
    let mut byte = [0u8; 1];
    assert_eq!(
        stream.read(&mut byte).unwrap(),
        0,
        "server must close after a protocol error"
    );
}
