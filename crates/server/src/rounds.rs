//! The round scheduler: group-committing writers into engine batches.
//!
//! Writers do not call the engine; they stage edge updates into a mutex'd
//! staging buffer and block. A dedicated engine thread ([`RoundScheduler::
//! drive`]) drains the buffer into **one** [`Engine::apply_batch`] call per
//! round — the bulk-synchronous pseudo-streaming pattern: a round flushes as
//! soon as [`RoundConfig::max_batch_updates`] updates have accumulated
//! (throughput bound) or [`RoundConfig::max_delay`] after the first staged
//! update (latency bound), whichever comes first. After the batch is applied
//! the engine thread publishes the new snapshot and wakes every writer whose
//! updates rode in that round with the round's [`RoundDelta`].
//!
//! Batching is what turns per-update costs into per-round costs: the engine's
//! repair work is proportional to the *affected* state, and its parallel sort
//! and merge machinery amortizes over the whole batch, so k writers' updates
//! cost one repair, not k.
//!
//! Locking discipline: the staging mutex is held only to splice vectors and
//! bump counters — never across `apply_batch`, snapshot construction, or
//! publication. Writers therefore contend with each other only for
//! `Vec::extend`-length critical sections, and queries (which go through
//! [`crate::snapshot::SnapshotCell`], not this module) never touch this lock
//! at all.

use std::collections::HashMap;
use std::mem;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use greedy_engine::prelude::{EdgeBatch, Engine};
use greedy_graph::edge_list::Edge;

use crate::feed::{DeltaFeed, FullDelta};
use crate::protocol::RoundDelta;
use crate::snapshot::{PublishedSnapshot, SnapshotCell};

/// Flush policy for the round scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundConfig {
    /// Flush as soon as this many updates are staged.
    pub max_batch_updates: usize,
    /// Flush this long after the first update of a round was staged, even if
    /// the round is not full — bounds a lone writer's commit latency.
    pub max_delay: Duration,
}

impl Default for RoundConfig {
    fn default() -> Self {
        Self {
            max_batch_updates: 4096,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// Error returned to writers that arrive after shutdown began.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuttingDown;

/// One committed round, as recorded when
/// [`crate::serve::ServerConfig::record_rounds`] is on: the exact batch the
/// engine applied plus the snapshot published for it. Tests replay these to
/// prove every published snapshot equals a recompute of the committed edge
/// set.
#[derive(Debug, Clone)]
pub struct CommittedRound {
    /// Round id (starts at 1; snapshot round 0 is the pre-traffic state).
    pub round: u64,
    /// Insertions the round applied, in staging order.
    pub insertions: Vec<Edge>,
    /// Deletions the round applied, in staging order.
    pub deletions: Vec<Edge>,
    /// The snapshot published for this round.
    pub snapshot: std::sync::Arc<PublishedSnapshot>,
    /// The round's exact, uncapped delta (the same `Arc` the feed's ring
    /// holds) — what the replay tests fold over round 0 to re-derive every
    /// published snapshot.
    pub delta: std::sync::Arc<FullDelta>,
}

/// Where the engine thread delivers each committed round. Bundled so
/// [`RoundScheduler::drive`] publishes all sinks at one point in the commit
/// sequence: snapshot first (queries see the round before its delta is
/// offered to subscribers), then the recorder, then the feed.
pub struct CommitSinks<'a> {
    /// The swap-published snapshot slot queries read.
    pub cell: &'a SnapshotCell,
    /// Coherence-audit recorder ([`crate::serve::ServerConfig::record_rounds`]).
    pub record: Option<&'a Mutex<Vec<CommittedRound>>>,
    /// Subscriber hub + replay ring; `None` in tests that only exercise the
    /// scheduler.
    pub feed: Option<&'a DeltaFeed>,
}

/// Per-round rendezvous between the engine thread and the writers waiting on
/// that round. The delta sits behind an `Arc` so each waiter leaves the
/// scheduler lock with a pointer clone and deep-copies outside it.
struct Slot {
    result: Option<std::sync::Arc<RoundDelta>>,
    waiters: usize,
}

struct State {
    insertions: Vec<Edge>,
    deletions: Vec<Edge>,
    /// Updates staged for the open round (`insertions.len() +
    /// deletions.len()`).
    staged: usize,
    /// When the open round received its first update (starts the delay
    /// clock).
    opened_at: Option<Instant>,
    /// Id the currently staged updates will commit as.
    staging_round: u64,
    /// Highest committed round id.
    committed_round: u64,
    slots: HashMap<u64, Slot>,
    shutdown: bool,
    /// Set by the engine thread on exit; any writer still waiting then (none,
    /// in correct operation) errors out instead of hanging.
    engine_exited: bool,
}

/// The group-commit coordinator shared by all connection threads and the
/// engine thread.
pub struct RoundScheduler {
    state: Mutex<State>,
    /// Wakes the engine thread (staging filled, or shutdown requested).
    engine_wake: Condvar,
    /// Wakes writers (a round committed) — and, on engine exit, any
    /// stragglers.
    commit_wake: Condvar,
    config: RoundConfig,
}

impl RoundScheduler {
    /// A scheduler with the given flush policy.
    pub fn new(config: RoundConfig) -> Self {
        assert!(config.max_batch_updates >= 1, "rounds must hold an update");
        Self {
            state: Mutex::new(State {
                insertions: Vec::new(),
                deletions: Vec::new(),
                staged: 0,
                opened_at: None,
                staging_round: 1,
                committed_round: 0,
                slots: HashMap::new(),
                shutdown: false,
                engine_exited: false,
            }),
            engine_wake: Condvar::new(),
            commit_wake: Condvar::new(),
            config,
        }
    }

    /// The flush policy.
    pub fn config(&self) -> RoundConfig {
        self.config
    }

    /// Highest committed round id.
    pub fn committed_round(&self) -> u64 {
        self.state
            .lock()
            .expect("scheduler poisoned")
            .committed_round
    }

    /// Stages a writer's updates and blocks until the round containing them
    /// commits; returns that round's delta. An empty submission stages
    /// nothing and reports the last committed round immediately.
    pub fn submit(
        &self,
        insertions: Vec<Edge>,
        deletions: Vec<Edge>,
    ) -> Result<RoundDelta, ShuttingDown> {
        let count = insertions.len() + deletions.len();
        let mut s = self.state.lock().expect("scheduler poisoned");
        if s.shutdown {
            return Err(ShuttingDown);
        }
        if count == 0 {
            return Ok(RoundDelta {
                round: s.committed_round,
                ..RoundDelta::default()
            });
        }
        s.insertions.extend(insertions);
        s.deletions.extend(deletions);
        s.staged += count;
        let first_of_round = s.opened_at.is_none();
        if first_of_round {
            s.opened_at = Some(Instant::now());
        }
        let ticket = s.staging_round;
        s.slots
            .entry(ticket)
            .or_insert(Slot {
                result: None,
                waiters: 0,
            })
            .waiters += 1;
        // Wake the engine thread when the round fills, and on the round's
        // first update so its delay clock is armed against a live engine
        // wait rather than an unbounded sleep.
        if first_of_round || s.staged >= self.config.max_batch_updates {
            self.engine_wake.notify_one();
        }
        loop {
            if let Some(slot) = s.slots.get_mut(&ticket) {
                if let Some(delta) = slot.result.clone() {
                    slot.waiters -= 1;
                    if slot.waiters == 0 {
                        s.slots.remove(&ticket);
                    }
                    // The deep copy of the (possibly large) delta happens
                    // outside the scheduler lock.
                    drop(s);
                    return Ok((*delta).clone());
                }
            }
            if s.engine_exited {
                return Err(ShuttingDown);
            }
            s = self.commit_wake.wait(s).expect("scheduler poisoned");
        }
    }

    /// Begins shutdown: new submissions are refused, the engine thread
    /// commits whatever is staged in one final round and then exits.
    pub fn shutdown(&self) {
        let mut s = self.state.lock().expect("scheduler poisoned");
        s.shutdown = true;
        self.engine_wake.notify_all();
    }

    /// True once [`RoundScheduler::shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.state.lock().expect("scheduler poisoned").shutdown
    }

    /// The engine thread's body: waits for rounds to fill (or time out, or
    /// shutdown), applies each as one batch, publishes the round into every
    /// sink, and wakes the round's writers. Returns the engine once shutdown
    /// has drained the staging buffer, so the caller can inspect final
    /// state.
    pub fn drive(&self, mut engine: Engine, sinks: CommitSinks<'_>) -> Engine {
        loop {
            let (insertions, deletions, round) = {
                let mut s = self.state.lock().expect("scheduler poisoned");
                loop {
                    if s.staged >= self.config.max_batch_updates {
                        break;
                    }
                    if s.staged > 0 {
                        let deadline =
                            s.opened_at.expect("open round has a start") + self.config.max_delay;
                        let now = Instant::now();
                        if s.shutdown || now >= deadline {
                            break;
                        }
                        let (guard, _) = self
                            .engine_wake
                            .wait_timeout(s, deadline - now)
                            .expect("scheduler poisoned");
                        s = guard;
                    } else if s.shutdown {
                        // Nothing staged and shutdown requested: done. Wake
                        // any straggler so nobody waits on a dead engine.
                        s.engine_exited = true;
                        self.commit_wake.notify_all();
                        return engine;
                    } else {
                        s = self.engine_wake.wait(s).expect("scheduler poisoned");
                    }
                }
                let insertions = mem::take(&mut s.insertions);
                let deletions = mem::take(&mut s.deletions);
                s.staged = 0;
                s.opened_at = None;
                let round = s.staging_round;
                s.staging_round += 1;
                (insertions, deletions, round)
            };

            // All engine work happens outside the staging lock: writers keep
            // staging the *next* round while this one is applied.
            let batch = EdgeBatch {
                insertions,
                deletions,
            };
            let report = engine.apply_batch(&batch);
            // `server_snapshot` is copy-on-write: its cost is the pages the
            // round touched, not O(n) — cheap enough to take every round.
            let snapshot = std::sync::Arc::new(PublishedSnapshot {
                round,
                state: engine.server_snapshot(),
                stats: *engine.stats(),
            });
            sinks.cell.publish_arc(snapshot.clone());
            let full = std::sync::Arc::new(FullDelta::from_report(round, &report));
            if let Some(rec) = sinks.record {
                rec.lock()
                    .expect("round record poisoned")
                    .push(CommittedRound {
                        round,
                        insertions: batch.insertions,
                        deletions: batch.deletions,
                        snapshot,
                        delta: full.clone(),
                    });
            }
            if let Some(feed) = sinks.feed {
                feed.publish(full);
            }

            let truncated = report.matching_changed.len() > crate::protocol::MAX_DELTA_SLOTS;
            let delta = std::sync::Arc::new(RoundDelta {
                round,
                inserted: report.edges_inserted as u64,
                deleted: report.edges_deleted as u64,
                mis_changed: report.mis_changed.len() as u64,
                matching_changed: report.matching_changed.len() as u64,
                // Stable slot ids of the flipped edges — already sorted by
                // slot in the engine's report; truncated so the commit
                // acknowledgment always fits a protocol frame (the count
                // above stays exact, and `truncated` says so explicitly).
                matching_slots: report
                    .matching_changed
                    .iter()
                    .take(crate::protocol::MAX_DELTA_SLOTS)
                    .map(|d| d.slot)
                    .collect(),
                truncated,
            });
            let mut s = self.state.lock().expect("scheduler poisoned");
            s.committed_round = round;
            if let Some(slot) = s.slots.get_mut(&round) {
                slot.result = Some(delta);
            }
            self.commit_wake.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs.iter().map(|&(u, v)| Edge::new(u, v)).collect()
    }

    fn spawn_engine(
        scheduler: &Arc<RoundScheduler>,
        cell: &Arc<SnapshotCell>,
        n: usize,
        seed: u64,
    ) -> thread::JoinHandle<Engine> {
        let engine = Engine::new(n, seed);
        let scheduler = scheduler.clone();
        let cell = cell.clone();
        thread::spawn(move || {
            scheduler.drive(
                engine,
                CommitSinks {
                    cell: &cell,
                    record: None,
                    feed: None,
                },
            )
        })
    }

    fn fresh_cell(n: usize, seed: u64) -> Arc<SnapshotCell> {
        let engine = Engine::new(n, seed);
        Arc::new(SnapshotCell::new(PublishedSnapshot {
            round: 0,
            state: engine.server_snapshot(),
            stats: *engine.stats(),
        }))
    }

    #[test]
    fn single_writer_commits_and_reads_back() {
        let scheduler = Arc::new(RoundScheduler::new(RoundConfig {
            max_batch_updates: 100,
            max_delay: Duration::from_millis(1),
        }));
        let cell = fresh_cell(10, 3);
        let engine = spawn_engine(&scheduler, &cell, 10, 3);

        let delta = scheduler.submit(edges(&[(0, 1), (2, 3)]), vec![]).unwrap();
        assert_eq!(delta.round, 1);
        assert_eq!(delta.inserted, 2);
        let snap = cell.load();
        assert_eq!(snap.round, 1);
        assert_eq!(snap.state.num_edges(), 2);

        scheduler.shutdown();
        let final_engine = engine.join().unwrap();
        assert_eq!(final_engine.num_edges(), 2);
    }

    #[test]
    fn full_round_flushes_without_waiting_for_delay() {
        let scheduler = Arc::new(RoundScheduler::new(RoundConfig {
            max_batch_updates: 2,
            max_delay: Duration::from_secs(3600), // delay flush effectively off
        }));
        let cell = fresh_cell(10, 1);
        let engine = spawn_engine(&scheduler, &cell, 10, 1);
        let delta = scheduler.submit(edges(&[(0, 1), (1, 2)]), vec![]).unwrap();
        assert_eq!(delta.round, 1);
        scheduler.shutdown();
        engine.join().unwrap();
    }

    #[test]
    fn concurrent_writers_share_rounds_and_all_get_answers() {
        let scheduler = Arc::new(RoundScheduler::new(RoundConfig {
            max_batch_updates: 64,
            max_delay: Duration::from_millis(1),
        }));
        let cell = fresh_cell(1_000, 7);
        let engine = spawn_engine(&scheduler, &cell, 1_000, 7);
        let writers: Vec<_> = (0..8u32)
            .map(|w| {
                let scheduler = scheduler.clone();
                thread::spawn(move || {
                    let mut rounds = Vec::new();
                    for i in 0..20u32 {
                        let e = edges(&[(w * 100 + i, w * 100 + i + 50)]);
                        rounds.push(scheduler.submit(e, vec![]).unwrap().round);
                    }
                    rounds
                })
            })
            .collect();
        let mut all_rounds = Vec::new();
        for w in writers {
            let rounds = w.join().unwrap();
            assert!(
                rounds.windows(2).all(|p| p[0] < p[1]),
                "a writer's rounds must be strictly increasing"
            );
            all_rounds.extend(rounds);
        }
        scheduler.shutdown();
        let engine = engine.join().unwrap();
        // 160 distinct edges were inserted, in far fewer than 160 rounds.
        assert_eq!(engine.num_edges(), 160);
        let committed = scheduler.committed_round();
        assert!(
            committed < 160,
            "group commit collapsed writers into rounds"
        );
        assert!(all_rounds.iter().all(|&r| r >= 1 && r <= committed));
        assert_eq!(cell.load().round, committed);
    }

    #[test]
    fn empty_submission_answers_immediately() {
        let scheduler = RoundScheduler::new(RoundConfig::default());
        let delta = scheduler.submit(vec![], vec![]).unwrap();
        assert_eq!(delta.round, 0);
        assert_eq!(delta.inserted, 0);
    }

    #[test]
    fn shutdown_refuses_new_writers_but_drains_staged() {
        let scheduler = Arc::new(RoundScheduler::new(RoundConfig {
            max_batch_updates: 1_000_000,
            max_delay: Duration::from_secs(3600),
        }));
        let cell = fresh_cell(10, 2);
        // Stage an update that can only commit via the shutdown drain.
        let staged = {
            let scheduler = scheduler.clone();
            thread::spawn(move || scheduler.submit(edges(&[(4, 5)]), vec![]))
        };
        // Wait until the update is actually staged before shutting down.
        while scheduler.state.lock().unwrap().staged == 0 {
            thread::yield_now();
        }
        let engine = spawn_engine(&scheduler, &cell, 10, 2);
        scheduler.shutdown();
        let delta = staged.join().unwrap().expect("staged update must commit");
        assert_eq!((delta.round, delta.inserted), (1, 1));
        let engine = engine.join().unwrap();
        assert_eq!(engine.num_edges(), 1);
        assert_eq!(
            scheduler.submit(edges(&[(0, 1)]), vec![]),
            Err(ShuttingDown)
        );
    }
}
