//! The round scheduler: group-committing writers into engine batches.
//!
//! Writers do not call the engine; they stage edge updates into a mutex'd
//! staging buffer and block. A dedicated engine thread ([`RoundScheduler::
//! drive`]) drains the buffer into **one** [`Engine::apply_batch`] call per
//! round — the bulk-synchronous pseudo-streaming pattern: a round flushes as
//! soon as [`RoundConfig::max_batch_updates`] updates have accumulated
//! (throughput bound) or [`RoundConfig::max_delay`] after the first staged
//! update (latency bound), whichever comes first. After the batch is applied
//! the engine thread publishes the new snapshot and wakes every writer whose
//! updates rode in that round with the round's [`RoundDelta`].
//!
//! Batching is what turns per-update costs into per-round costs: the engine's
//! repair work is proportional to the *affected* state, and its parallel sort
//! and merge machinery amortizes over the whole batch, so k writers' updates
//! cost one repair, not k.
//!
//! Locking discipline: the staging mutex is held only to splice vectors and
//! bump counters — never across `apply_batch`, snapshot construction, or
//! publication. Writers therefore contend with each other only for
//! `Vec::extend`-length critical sections, and queries (which go through
//! [`crate::snapshot::SnapshotCell`], not this module) never touch this lock
//! at all.

use std::collections::HashMap;
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use greedy_engine::prelude::{CommitEngine, EdgeBatch};
use greedy_graph::edge_list::Edge;

use crate::feed::{DeltaFeed, FullDelta};
use crate::metrics::{RoundTrace, ServerMetrics};
use crate::protocol::RoundDelta;
use crate::snapshot::{PublishedSnapshot, SnapshotCell};
use crate::wal::Wal;

/// Locks a mutex, recovering from poison. The serving layer's shared state
/// is only ever mutated in small, atomic critical sections (splice a vector,
/// bump a counter, push a record), so a panic mid-section cannot leave it
/// half-updated in a way later readers would misread — recovering the guard
/// is strictly better than cascading the panic into every thread that shares
/// the lock (which is what turned one bad connection into a failed
/// `shutdown()` drain).
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Flush policy for the round scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundConfig {
    /// Flush as soon as this many updates are staged.
    pub max_batch_updates: usize,
    /// Flush this long after the first update of a round was staged, even if
    /// the round is not full — bounds a lone writer's commit latency.
    pub max_delay: Duration,
}

impl Default for RoundConfig {
    fn default() -> Self {
        Self {
            max_batch_updates: 4096,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// Error returned to writers that arrive after shutdown began.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuttingDown;

/// One committed round, as recorded when
/// [`crate::serve::ServerConfig::record_rounds`] is on: the exact batch the
/// engine applied plus the snapshot published for it. Tests replay these to
/// prove every published snapshot equals a recompute of the committed edge
/// set.
#[derive(Debug, Clone)]
pub struct CommittedRound {
    /// Round id (starts at 1; snapshot round 0 is the pre-traffic state).
    pub round: u64,
    /// Insertions the round applied, in staging order.
    pub insertions: Vec<Edge>,
    /// Deletions the round applied, in staging order.
    pub deletions: Vec<Edge>,
    /// The snapshot published for this round.
    pub snapshot: std::sync::Arc<PublishedSnapshot>,
    /// The round's exact, uncapped delta (the same `Arc` the feed's ring
    /// holds) — what the replay tests fold over round 0 to re-derive every
    /// published snapshot.
    pub delta: std::sync::Arc<FullDelta>,
}

/// Where the engine thread delivers each committed round. Bundled so
/// [`RoundScheduler::drive`] publishes all sinks at one point in the commit
/// sequence: snapshot first (queries see the round before its delta is
/// offered to subscribers), then the recorder, then the feed.
pub struct CommitSinks<'a> {
    /// The swap-published snapshot slot queries read.
    pub cell: &'a SnapshotCell,
    /// Coherence-audit recorder ([`crate::serve::ServerConfig::record_rounds`]).
    pub record: Option<&'a Mutex<Vec<CommittedRound>>>,
    /// Subscriber hub + replay ring; `None` in tests that only exercise the
    /// scheduler.
    pub feed: Option<&'a DeltaFeed>,
    /// Write-ahead log; when present, the round's record is appended (and
    /// made as durable as the fsync policy promises) **before** any other
    /// sink sees the round and before any writer is woken — the WAL's
    /// ordering guarantee. A WAL write failure is fail-stop: the engine
    /// thread exits without acking the round, so no writer ever holds an
    /// acknowledgment for a round that is not in the log.
    pub wal: Option<&'a Mutex<Wal>>,
    /// Observability sink: each committed round's timeline (stage wait,
    /// apply, repair, WAL, publish, feed) is folded into the histograms and
    /// the flight recorder. `None` (or an `obs-off` build) commits with zero
    /// timing overhead — not even the `Instant::now` reads happen.
    pub metrics: Option<&'a ServerMetrics>,
    /// High-water mark of per-shard staged updates, `fetch_max`ed after every
    /// round from the engine's [`CommitEngine::last_max_shard_staged`]. Stays
    /// 0 for the single-arena engine; `None` in tests that only exercise the
    /// scheduler.
    pub shard_staged_high: Option<&'a AtomicU64>,
}

/// Per-round rendezvous between the engine thread and the writers waiting on
/// that round. The delta sits behind an `Arc` so each waiter leaves the
/// scheduler lock with a pointer clone and deep-copies outside it.
struct Slot {
    result: Option<std::sync::Arc<RoundDelta>>,
    waiters: usize,
}

struct State {
    insertions: Vec<Edge>,
    deletions: Vec<Edge>,
    /// Updates staged for the open round (`insertions.len() +
    /// deletions.len()`).
    staged: usize,
    /// When the open round received its first update (starts the delay
    /// clock).
    opened_at: Option<Instant>,
    /// Id the currently staged updates will commit as.
    staging_round: u64,
    /// Highest committed round id.
    committed_round: u64,
    slots: HashMap<u64, Slot>,
    shutdown: bool,
    /// Set by the engine thread on exit; any writer still waiting then (none,
    /// in correct operation) errors out instead of hanging.
    engine_exited: bool,
}

/// The group-commit coordinator shared by all connection threads and the
/// engine thread.
pub struct RoundScheduler {
    state: Mutex<State>,
    /// Wakes the engine thread (staging filled, or shutdown requested).
    engine_wake: Condvar,
    /// Wakes writers (a round committed) — and, on engine exit, any
    /// stragglers.
    commit_wake: Condvar,
    config: RoundConfig,
}

impl RoundScheduler {
    /// A scheduler with the given flush policy, starting at round 1.
    pub fn new(config: RoundConfig) -> Self {
        Self::with_base_round(config, 0)
    }

    /// A scheduler whose first committed round will be `base_round + 1` —
    /// how a recovered server resumes its round numbering where the log left
    /// off instead of restarting at 1 (round ids are durable identifiers
    /// once a WAL exists: subscribers, checkpoints, and log records all key
    /// on them).
    pub fn with_base_round(config: RoundConfig, base_round: u64) -> Self {
        assert!(config.max_batch_updates >= 1, "rounds must hold an update");
        Self {
            state: Mutex::new(State {
                insertions: Vec::new(),
                deletions: Vec::new(),
                staged: 0,
                opened_at: None,
                staging_round: base_round + 1,
                committed_round: base_round,
                slots: HashMap::new(),
                shutdown: false,
                engine_exited: false,
            }),
            engine_wake: Condvar::new(),
            commit_wake: Condvar::new(),
            config,
        }
    }

    /// The flush policy.
    pub fn config(&self) -> RoundConfig {
        self.config
    }

    /// Highest committed round id.
    pub fn committed_round(&self) -> u64 {
        lock_unpoisoned(&self.state).committed_round
    }

    /// Stages a writer's updates and blocks until the round containing them
    /// commits; returns that round's delta. An empty submission stages
    /// nothing and reports the last committed round immediately.
    pub fn submit(
        &self,
        insertions: Vec<Edge>,
        deletions: Vec<Edge>,
    ) -> Result<RoundDelta, ShuttingDown> {
        let count = insertions.len() + deletions.len();
        let mut s = lock_unpoisoned(&self.state);
        if s.shutdown {
            return Err(ShuttingDown);
        }
        if count == 0 {
            return Ok(RoundDelta {
                round: s.committed_round,
                ..RoundDelta::default()
            });
        }
        s.insertions.extend(insertions);
        s.deletions.extend(deletions);
        s.staged += count;
        let first_of_round = s.opened_at.is_none();
        if first_of_round {
            s.opened_at = Some(Instant::now());
        }
        let ticket = s.staging_round;
        s.slots
            .entry(ticket)
            .or_insert(Slot {
                result: None,
                waiters: 0,
            })
            .waiters += 1;
        // Wake the engine thread when the round fills, and on the round's
        // first update so its delay clock is armed against a live engine
        // wait rather than an unbounded sleep.
        if first_of_round || s.staged >= self.config.max_batch_updates {
            self.engine_wake.notify_one();
        }
        loop {
            if let Some(slot) = s.slots.get_mut(&ticket) {
                if let Some(delta) = slot.result.clone() {
                    slot.waiters -= 1;
                    if slot.waiters == 0 {
                        s.slots.remove(&ticket);
                    }
                    // The deep copy of the (possibly large) delta happens
                    // outside the scheduler lock.
                    drop(s);
                    return Ok((*delta).clone());
                }
            }
            if s.engine_exited {
                return Err(ShuttingDown);
            }
            s = self
                .commit_wake
                .wait(s)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Begins shutdown: new submissions are refused, the engine thread
    /// commits whatever is staged in one final round and then exits.
    pub fn shutdown(&self) {
        let mut s = lock_unpoisoned(&self.state);
        s.shutdown = true;
        self.engine_wake.notify_all();
    }

    /// True once [`RoundScheduler::shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        lock_unpoisoned(&self.state).shutdown
    }

    /// The engine thread's body: waits for rounds to fill (or time out, or
    /// shutdown), applies each as one batch, logs it to the WAL (when
    /// configured) *before* any publication, publishes the round into every
    /// sink, and wakes the round's writers. Returns the engine once shutdown
    /// has drained the staging buffer (writing a final checkpoint when a WAL
    /// is attached), so the caller can inspect final state.
    ///
    /// However `drive` exits — clean drain, WAL fail-stop, or a panic inside
    /// `apply_batch` — a drop guard marks the scheduler shut down and wakes
    /// every blocked writer with [`ShuttingDown`]; nobody waits on a dead
    /// engine.
    pub fn drive<E: CommitEngine>(&self, mut engine: E, sinks: CommitSinks<'_>) -> E {
        // Armed for the whole drive: runs on normal return AND on unwind, so
        // a panicking engine thread cannot strand writers on the condvar.
        let _exit_guard = EngineExitGuard(self);
        // All commit-pipeline timing folds away unless a metrics sink is
        // attached AND the build records (obs-off strips it): `obs` is `None`
        // otherwise, and every `Instant::now` below hides behind it.
        let obs = if greedy_obs::ENABLED {
            sinks.metrics
        } else {
            None
        };
        let mut last_round = self.committed_round();
        loop {
            let (insertions, deletions, round, opened_at) = {
                let mut s = lock_unpoisoned(&self.state);
                loop {
                    if s.staged >= self.config.max_batch_updates {
                        break;
                    }
                    if s.staged > 0 {
                        let deadline =
                            s.opened_at.expect("open round has a start") + self.config.max_delay;
                        let now = Instant::now();
                        if s.shutdown || now >= deadline {
                            break;
                        }
                        let (guard, _) = self
                            .engine_wake
                            .wait_timeout(s, deadline - now)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        s = guard;
                    } else if s.shutdown {
                        // Nothing staged and shutdown requested: done (the
                        // exit guard wakes any straggler). The final
                        // checkpoint happens outside the staging lock.
                        drop(s);
                        if let Some(wal) = sinks.wal {
                            let mut wal = lock_unpoisoned(wal);
                            if let Err(e) = wal.checkpoint(last_round, &engine) {
                                eprintln!("wal: final checkpoint failed: {e}");
                            }
                        }
                        return engine;
                    } else {
                        s = self
                            .engine_wake
                            .wait(s)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                }
                let insertions = mem::take(&mut s.insertions);
                let deletions = mem::take(&mut s.deletions);
                s.staged = 0;
                let opened_at = s.opened_at.take();
                let round = s.staging_round;
                s.staging_round += 1;
                (insertions, deletions, round, opened_at)
            };
            let t_drain = obs.map(|_| Instant::now());

            // All engine work happens outside the staging lock: writers keep
            // staging the *next* round while this one is applied.
            let batch = EdgeBatch {
                insertions,
                deletions,
            };
            let staged_updates = (batch.insertions.len() + batch.deletions.len()) as u64;
            let report = engine.apply_batch(&batch);
            let t_apply = obs.map(|_| Instant::now());
            if let Some(high) = sinks.shard_staged_high {
                high.fetch_max(engine.last_max_shard_staged(), Ordering::Relaxed);
            }
            let full = std::sync::Arc::new(FullDelta::from_report(round, &report));

            // Durability first: the round's record must be on the log (and
            // as synced as the policy promises) before queries, subscribers,
            // or — crucially — the writers waiting for the ack can see it.
            // An unloggable round is fail-stop: exit without acking, so the
            // writers get `ShuttingDown` instead of a commit the disk never
            // saw.
            if let Some(wal) = sinks.wal {
                let mut wal = lock_unpoisoned(wal);
                if let Err(e) = wal.append_round(round, &batch.insertions, &batch.deletions, &full)
                {
                    eprintln!("wal: append for round {round} failed, stopping engine: {e}");
                    return engine;
                }
                let checkpointed = match wal.maybe_checkpoint(round, &engine) {
                    Ok(did) => did,
                    Err(e) => {
                        eprintln!(
                            "wal: periodic checkpoint at round {round} failed, stopping engine: {e}"
                        );
                        return engine;
                    }
                };
                if let Some(m) = obs {
                    m.record_wal_append(checkpointed);
                    // How far the disk trails the ack we are about to give:
                    // 0 under `PerRound`, sawtooths in `0..k` under
                    // `EveryRounds(k)`.
                    m.set_durable_lag(round.saturating_sub(wal.durable_round()));
                }
            }
            let t_wal = obs.map(|_| Instant::now());

            // `server_snapshot` is copy-on-write: its cost is the pages the
            // round touched, not O(n) — cheap enough to take every round.
            let snapshot = std::sync::Arc::new(PublishedSnapshot {
                round,
                state: engine.server_snapshot(),
                stats: *engine.stats(),
            });
            sinks.cell.publish_arc(snapshot.clone());
            if let Some(m) = obs {
                m.note_publish();
            }
            if let Some(rec) = sinks.record {
                lock_unpoisoned(rec).push(CommittedRound {
                    round,
                    insertions: batch.insertions,
                    deletions: batch.deletions,
                    snapshot,
                    delta: full.clone(),
                });
            }
            let t_publish = obs.map(|_| Instant::now());
            if let Some(feed) = sinks.feed {
                feed.publish(full);
            }
            if let Some(m) = obs {
                // Unwraps are safe: every t_* was taken on the same branch.
                let t_drain = t_drain.unwrap();
                let t_feed = Instant::now();
                let engine_t = engine.last_batch_timings();
                m.record_round(
                    &RoundTrace {
                        round,
                        updates: staged_updates,
                        stage_wait_us: opened_at
                            .map(|at| t_drain.duration_since(at).as_micros() as u64)
                            .unwrap_or(0),
                        apply_us: t_apply.unwrap().duration_since(t_drain).as_micros() as u64,
                        repair_us: engine_t.matching_repair_us + engine_t.mis_repair_us,
                        wal_us: t_wal.unwrap().duration_since(t_apply.unwrap()).as_micros() as u64,
                        publish_us: t_publish
                            .unwrap()
                            .duration_since(t_wal.unwrap())
                            .as_micros() as u64,
                        feed_us: t_feed.duration_since(t_publish.unwrap()).as_micros() as u64,
                        total_us: t_feed.duration_since(t_drain).as_micros() as u64,
                        mis_rounds: report.mis_repair.rounds,
                        matching_rounds: report.matching_repair.rounds,
                        max_frontier: report
                            .mis_repair
                            .max_frontier
                            .max(report.matching_repair.max_frontier),
                        decided: report.mis_repair.decided + report.matching_repair.decided,
                        flips: report.mis_repair.flips + report.matching_repair.flips,
                        pages: engine.last_publication_pages() as u64,
                        cross_shard_rounds: engine.last_cross_shard_rounds(),
                    },
                    (report.edges_inserted + report.edges_deleted) as u64,
                );
            }
            last_round = round;

            let truncated = report.matching_changed.len() > crate::protocol::MAX_DELTA_SLOTS;
            let delta = std::sync::Arc::new(RoundDelta {
                round,
                inserted: report.edges_inserted as u64,
                deleted: report.edges_deleted as u64,
                mis_changed: report.mis_changed.len() as u64,
                matching_changed: report.matching_changed.len() as u64,
                // Stable slot ids of the flipped edges — already sorted by
                // slot in the engine's report; truncated so the commit
                // acknowledgment always fits a protocol frame (the count
                // above stays exact, and `truncated` says so explicitly).
                matching_slots: report
                    .matching_changed
                    .iter()
                    .take(crate::protocol::MAX_DELTA_SLOTS)
                    .map(|d| d.slot)
                    .collect(),
                truncated,
            });
            let mut s = lock_unpoisoned(&self.state);
            s.committed_round = round;
            if let Some(slot) = s.slots.get_mut(&round) {
                slot.result = Some(delta);
            }
            self.commit_wake.notify_all();
        }
    }
}

/// Drop guard armed for the lifetime of [`RoundScheduler::drive`]: whether
/// the engine thread returns normally, fail-stops on a WAL error, or panics
/// inside `apply_batch`, the scheduler is marked shut down + exited and both
/// condvars are broadcast, so every writer blocked on a round (and every
/// submitter yet to arrive) gets [`ShuttingDown`] instead of hanging on a
/// condvar no one will ever signal again.
struct EngineExitGuard<'a>(&'a RoundScheduler);

impl Drop for EngineExitGuard<'_> {
    fn drop(&mut self) {
        let mut s = lock_unpoisoned(&self.0.state);
        s.shutdown = true;
        s.engine_exited = true;
        drop(s);
        self.0.engine_wake.notify_all();
        self.0.commit_wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greedy_engine::prelude::Engine;
    use std::sync::Arc;
    use std::thread;

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs.iter().map(|&(u, v)| Edge::new(u, v)).collect()
    }

    fn spawn_engine(
        scheduler: &Arc<RoundScheduler>,
        cell: &Arc<SnapshotCell>,
        n: usize,
        seed: u64,
    ) -> thread::JoinHandle<Engine> {
        let engine = Engine::new(n, seed);
        let scheduler = scheduler.clone();
        let cell = cell.clone();
        thread::spawn(move || {
            scheduler.drive(
                engine,
                CommitSinks {
                    cell: &cell,
                    record: None,
                    feed: None,
                    wal: None,
                    metrics: None,
                    shard_staged_high: None,
                },
            )
        })
    }

    fn fresh_cell(n: usize, seed: u64) -> Arc<SnapshotCell> {
        let engine = Engine::new(n, seed);
        Arc::new(SnapshotCell::new(PublishedSnapshot {
            round: 0,
            state: engine.server_snapshot(),
            stats: *engine.stats(),
        }))
    }

    #[test]
    fn single_writer_commits_and_reads_back() {
        let scheduler = Arc::new(RoundScheduler::new(RoundConfig {
            max_batch_updates: 100,
            max_delay: Duration::from_millis(1),
        }));
        let cell = fresh_cell(10, 3);
        let engine = spawn_engine(&scheduler, &cell, 10, 3);

        let delta = scheduler.submit(edges(&[(0, 1), (2, 3)]), vec![]).unwrap();
        assert_eq!(delta.round, 1);
        assert_eq!(delta.inserted, 2);
        let snap = cell.load();
        assert_eq!(snap.round, 1);
        assert_eq!(snap.state.num_edges(), 2);

        scheduler.shutdown();
        let final_engine = engine.join().unwrap();
        assert_eq!(final_engine.num_edges(), 2);
    }

    #[test]
    fn full_round_flushes_without_waiting_for_delay() {
        let scheduler = Arc::new(RoundScheduler::new(RoundConfig {
            max_batch_updates: 2,
            max_delay: Duration::from_secs(3600), // delay flush effectively off
        }));
        let cell = fresh_cell(10, 1);
        let engine = spawn_engine(&scheduler, &cell, 10, 1);
        let delta = scheduler.submit(edges(&[(0, 1), (1, 2)]), vec![]).unwrap();
        assert_eq!(delta.round, 1);
        scheduler.shutdown();
        engine.join().unwrap();
    }

    #[test]
    fn concurrent_writers_share_rounds_and_all_get_answers() {
        let scheduler = Arc::new(RoundScheduler::new(RoundConfig {
            max_batch_updates: 64,
            max_delay: Duration::from_millis(1),
        }));
        let cell = fresh_cell(1_000, 7);
        let engine = spawn_engine(&scheduler, &cell, 1_000, 7);
        let writers: Vec<_> = (0..8u32)
            .map(|w| {
                let scheduler = scheduler.clone();
                thread::spawn(move || {
                    let mut rounds = Vec::new();
                    for i in 0..20u32 {
                        let e = edges(&[(w * 100 + i, w * 100 + i + 50)]);
                        rounds.push(scheduler.submit(e, vec![]).unwrap().round);
                    }
                    rounds
                })
            })
            .collect();
        let mut all_rounds = Vec::new();
        for w in writers {
            let rounds = w.join().unwrap();
            assert!(
                rounds.windows(2).all(|p| p[0] < p[1]),
                "a writer's rounds must be strictly increasing"
            );
            all_rounds.extend(rounds);
        }
        scheduler.shutdown();
        let engine = engine.join().unwrap();
        // 160 distinct edges were inserted, in far fewer than 160 rounds.
        assert_eq!(engine.num_edges(), 160);
        let committed = scheduler.committed_round();
        assert!(
            committed < 160,
            "group commit collapsed writers into rounds"
        );
        assert!(all_rounds.iter().all(|&r| r >= 1 && r <= committed));
        assert_eq!(cell.load().round, committed);
    }

    #[test]
    fn empty_submission_answers_immediately() {
        let scheduler = RoundScheduler::new(RoundConfig::default());
        let delta = scheduler.submit(vec![], vec![]).unwrap();
        assert_eq!(delta.round, 0);
        assert_eq!(delta.inserted, 0);
    }

    #[test]
    fn shutdown_refuses_new_writers_but_drains_staged() {
        let scheduler = Arc::new(RoundScheduler::new(RoundConfig {
            max_batch_updates: 1_000_000,
            max_delay: Duration::from_secs(3600),
        }));
        let cell = fresh_cell(10, 2);
        // Stage an update that can only commit via the shutdown drain.
        let staged = {
            let scheduler = scheduler.clone();
            thread::spawn(move || scheduler.submit(edges(&[(4, 5)]), vec![]))
        };
        // Wait until the update is actually staged before shutting down.
        while scheduler.state.lock().unwrap().staged == 0 {
            thread::yield_now();
        }
        let engine = spawn_engine(&scheduler, &cell, 10, 2);
        scheduler.shutdown();
        let delta = staged.join().unwrap().expect("staged update must commit");
        assert_eq!((delta.round, delta.inserted), (1, 1));
        let engine = engine.join().unwrap();
        assert_eq!(engine.num_edges(), 1);
        assert_eq!(
            scheduler.submit(edges(&[(0, 1)]), vec![]),
            Err(ShuttingDown)
        );
    }

    #[test]
    fn engine_panic_wakes_blocked_writers_with_shutting_down() {
        let scheduler = Arc::new(RoundScheduler::new(RoundConfig {
            max_batch_updates: 100,
            max_delay: Duration::from_millis(1),
        }));
        let cell = fresh_cell(10, 5);
        let engine = spawn_engine(&scheduler, &cell, 10, 5);
        // An out-of-range edge: `serve.rs` validates vertex ids at the
        // connection layer, the raw scheduler does not, so this batch panics
        // `apply_batch` on the engine thread mid-`drive`. Before the exit
        // guard existed this writer hung forever on the commit condvar.
        let res = scheduler.submit(edges(&[(1_000, 1_001)]), vec![]);
        assert_eq!(res, Err(ShuttingDown));
        assert!(engine.join().is_err(), "engine thread must have panicked");
        // Later submitters are refused rather than staged into a dead queue.
        assert_eq!(
            scheduler.submit(edges(&[(0, 1)]), vec![]),
            Err(ShuttingDown)
        );
    }

    #[test]
    fn base_round_constructor_resumes_numbering() {
        let scheduler = Arc::new(RoundScheduler::with_base_round(
            RoundConfig {
                max_batch_updates: 100,
                max_delay: Duration::from_millis(1),
            },
            41,
        ));
        assert_eq!(scheduler.committed_round(), 41);
        let cell = fresh_cell(10, 3);
        let engine = spawn_engine(&scheduler, &cell, 10, 3);
        let delta = scheduler.submit(edges(&[(0, 1)]), vec![]).unwrap();
        assert_eq!(delta.round, 42);
        scheduler.shutdown();
        engine.join().unwrap();
        assert_eq!(scheduler.committed_round(), 42);
    }
}
