//! Server observability: the named instrument set over [`greedy_obs`], plus
//! the per-round flight recorder.
//!
//! One [`ServerMetrics`] lives behind the server's `Arc<Shared>`; every hot
//! path (the engine thread's commit sequence, query dispatch, the feed's
//! fan-out) holds `Arc`s to its instruments and records lock-free. The
//! registry itself is only locked to render
//! [`ServerMetrics::render_text`] — what `ServerHandle::metrics_text()` and
//! the `Request::Metrics` wire frame both return, byte-for-byte identically
//! on a quiesced server.
//!
//! ## Metric names
//!
//! Commit-pipeline histograms (one sample per committed round, µs unless
//! noted):
//!
//! | name | what |
//! |---|---|
//! | `server_commit_stage_wait_us` | first staged update → round drained |
//! | `server_commit_apply_us` | the whole `Engine::apply_batch` call |
//! | `server_commit_repair_us` | MIS + matching repair portion of apply |
//! | `server_commit_wal_us` | WAL append + periodic checkpoint |
//! | `server_commit_publish_us` | snapshot build + swap-publish + record |
//! | `server_commit_feed_us` | delta fan-out to subscribers |
//! | `server_commit_total_us` | drain → all sinks published |
//! | `server_commit_batch_updates` | updates the round carried (count) |
//! | `server_publish_pages` | copy-on-write pages the round repacked |
//! | `server_repair_rounds_mis` | MIS repair dependence rounds (count) |
//! | `server_repair_rounds_matching` | matching repair rounds (count) |
//! | `server_repair_max_frontier` | peak single-round ready set (count) |
//! | `server_cross_shard_rounds` | cross-shard exchange rounds (count; 0 unsharded) |
//!
//! Read path: `server_query_us`, `server_snapshot_age_us` (one sample per
//! membership query). Counters: `server_rounds_committed_total`,
//! `server_updates_effective_total`, `server_repair_decided_total`,
//! `server_repair_flips_total`, `server_queries_total`,
//! `server_connections_total`, `server_feed_lagged_total`,
//! `server_feed_pruned_total`, `server_feed_resyncs_total`,
//! `server_wal_appends_total`, `server_wal_checkpoints_total`. Gauge:
//! `server_feed_subscribers`.
//!
//! `server_repair_rounds_mis` is the paper's observable: Blelloch–Fineman–
//! Shun bound the greedy MIS dependence depth by O(log² n) w.h.p., so the
//! histogram's max over any run should sit well under `log2(n)²` —
//! `serve_load --metrics` prints exactly that comparison.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use greedy_engine::prelude::EngineMetrics;
use greedy_obs::{Counter, EventJournal, EventKind, FlightRecorder, Gauge, Histogram, Registry};

/// How many per-round timelines the flight recorder retains.
pub const FLIGHT_RECORDER_ROUNDS: usize = 128;

/// One committed round's timeline, as kept by the flight recorder and fed
/// into the commit histograms. All durations in whole microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundTrace {
    /// Round id.
    pub round: u64,
    /// Updates the round carried (insertions + deletions staged).
    pub updates: u64,
    /// First staged update → round drained by the engine thread.
    pub stage_wait_us: u64,
    /// Full `Engine::apply_batch` duration.
    pub apply_us: u64,
    /// MIS + matching repair portion of apply (subset of `apply_us`).
    pub repair_us: u64,
    /// WAL append + periodic checkpoint (0 when serving memory-only).
    pub wal_us: u64,
    /// Snapshot build + swap-publish + round recording.
    pub publish_us: u64,
    /// Delta fan-out to subscribers.
    pub feed_us: u64,
    /// Drain → all sinks published.
    pub total_us: u64,
    /// MIS repair dependence rounds.
    pub mis_rounds: u64,
    /// Matching repair dependence rounds.
    pub matching_rounds: u64,
    /// Peak single-round ready set across both repairs.
    pub max_frontier: u64,
    /// Item re-decisions across both repairs.
    pub decided: u64,
    /// Decision flips across both repairs.
    pub flips: u64,
    /// Copy-on-write pages the round's publication repacked.
    pub pages: u64,
    /// Cross-shard exchange rounds the commit needed to reach global
    /// quiescence (always 0 for a single-arena engine).
    pub cross_shard_rounds: u64,
}

/// The server's instrument set. Construction registers every metric, so a
/// rendered exposition always lists the full set (zeros included) — the CI
/// smoke check relies on nothing being silently absent.
pub struct ServerMetrics {
    registry: Registry,
    recorder: FlightRecorder<RoundTrace>,
    /// The structured event journal every rare-transition feeder (engine
    /// arena, WAL, feed) appends to; rendered as comment lines at the tail
    /// of the exposition.
    journal: Arc<EventJournal>,
    /// The engine-internals instrument set. The engine thread records into a
    /// clone attached via `Engine::attach_metrics`; this copy shares the
    /// same `Arc`'d instruments, so the exposition sees every sample.
    engine: EngineMetrics,
    /// Per-shard engine instrument sets, populated by
    /// [`ServerMetrics::engine_metrics_shards`] when the served engine runs
    /// more than one shard. Each shard records into its own registry; the
    /// exposition merges them all (counters sum, gauges take the max,
    /// histograms union), so `engine_*` rows aggregate every shard.
    engine_shards: Mutex<Vec<EngineMetrics>>,
    /// Micros since `epoch` of the latest snapshot publication; `u64::MAX`
    /// until the first (age reads as 0 before any publication).
    last_publish_us: AtomicU64,
    epoch: Instant,

    // Commit pipeline (engine thread only).
    commit_stage_wait_us: Arc<Histogram>,
    commit_apply_us: Arc<Histogram>,
    commit_repair_us: Arc<Histogram>,
    commit_wal_us: Arc<Histogram>,
    commit_publish_us: Arc<Histogram>,
    commit_feed_us: Arc<Histogram>,
    commit_total_us: Arc<Histogram>,
    commit_batch_updates: Arc<Histogram>,
    publish_pages: Arc<Histogram>,
    repair_rounds_mis: Arc<Histogram>,
    repair_rounds_matching: Arc<Histogram>,
    repair_max_frontier: Arc<Histogram>,
    cross_shard_rounds: Arc<Histogram>,
    rounds_committed: Arc<Counter>,
    updates_effective: Arc<Counter>,
    repair_decided: Arc<Counter>,
    repair_flips: Arc<Counter>,
    wal_appends: Arc<Counter>,
    wal_checkpoints: Arc<Counter>,
    /// `committed_round - durable_round`: how many acked rounds the disk is
    /// behind. Pinned at 0 under `FsyncPolicy::PerRound` (and without a
    /// WAL); oscillates in `0..k` under `EveryRounds(k)`.
    durable_lag: Arc<Gauge>,

    // Read path (connection workers).
    query_us: Arc<Histogram>,
    snapshot_age_us: Arc<Histogram>,
    queries: Arc<Counter>,
    connections: Arc<Counter>,

    // Feed fan-out.
    feed_lagged: Arc<Counter>,
    feed_pruned: Arc<Counter>,
    feed_resyncs: Arc<Counter>,
    feed_subscribers: Arc<Gauge>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// A fresh instrument set with every metric registered.
    pub fn new() -> Self {
        let registry = Registry::new();
        let journal = Arc::new(EventJournal::default());
        Self {
            engine: EngineMetrics::new(journal.clone()),
            engine_shards: Mutex::new(Vec::new()),
            journal,
            recorder: FlightRecorder::new(FLIGHT_RECORDER_ROUNDS),
            last_publish_us: AtomicU64::new(u64::MAX),
            epoch: Instant::now(),
            commit_stage_wait_us: registry.histogram("server_commit_stage_wait_us"),
            commit_apply_us: registry.histogram("server_commit_apply_us"),
            commit_repair_us: registry.histogram("server_commit_repair_us"),
            commit_wal_us: registry.histogram("server_commit_wal_us"),
            commit_publish_us: registry.histogram("server_commit_publish_us"),
            commit_feed_us: registry.histogram("server_commit_feed_us"),
            commit_total_us: registry.histogram("server_commit_total_us"),
            commit_batch_updates: registry.histogram("server_commit_batch_updates"),
            publish_pages: registry.histogram("server_publish_pages"),
            repair_rounds_mis: registry.histogram("server_repair_rounds_mis"),
            repair_rounds_matching: registry.histogram("server_repair_rounds_matching"),
            repair_max_frontier: registry.histogram("server_repair_max_frontier"),
            cross_shard_rounds: registry.histogram("server_cross_shard_rounds"),
            rounds_committed: registry.counter("server_rounds_committed_total"),
            updates_effective: registry.counter("server_updates_effective_total"),
            repair_decided: registry.counter("server_repair_decided_total"),
            repair_flips: registry.counter("server_repair_flips_total"),
            wal_appends: registry.counter("server_wal_appends_total"),
            wal_checkpoints: registry.counter("server_wal_checkpoints_total"),
            durable_lag: registry.gauge("server_durable_lag"),
            query_us: registry.histogram("server_query_us"),
            snapshot_age_us: registry.histogram("server_snapshot_age_us"),
            queries: registry.counter("server_queries_total"),
            connections: registry.counter("server_connections_total"),
            feed_lagged: registry.counter("server_feed_lagged_total"),
            feed_pruned: registry.counter("server_feed_pruned_total"),
            feed_resyncs: registry.counter("server_feed_resyncs_total"),
            feed_subscribers: registry.gauge("server_feed_subscribers"),
            registry,
        }
    }

    /// Folds one committed round into the histograms/counters and the flight
    /// recorder. Engine thread only.
    pub fn record_round(&self, t: &RoundTrace, effective_updates: u64) {
        if !greedy_obs::ENABLED {
            return;
        }
        self.commit_stage_wait_us.record(t.stage_wait_us);
        self.commit_apply_us.record(t.apply_us);
        self.commit_repair_us.record(t.repair_us);
        self.commit_wal_us.record(t.wal_us);
        self.commit_publish_us.record(t.publish_us);
        self.commit_feed_us.record(t.feed_us);
        self.commit_total_us.record(t.total_us);
        self.commit_batch_updates.record(t.updates);
        self.publish_pages.record(t.pages);
        self.repair_rounds_mis.record(t.mis_rounds);
        self.repair_rounds_matching.record(t.matching_rounds);
        self.repair_max_frontier.record(t.max_frontier);
        self.cross_shard_rounds.record(t.cross_shard_rounds);
        self.rounds_committed.inc();
        self.updates_effective.add(effective_updates);
        self.repair_decided.add(t.decided);
        self.repair_flips.add(t.flips);
        self.recorder.push(*t);
    }

    /// Stamps "a snapshot was just published" for the age metric.
    pub fn note_publish(&self) {
        self.last_publish_us
            .store(self.epoch.elapsed().as_micros() as u64, Ordering::Relaxed);
    }

    /// Age of the published snapshot right now, in µs (0 before the first
    /// publication).
    pub fn snapshot_age_us(&self) -> u64 {
        match self.last_publish_us.load(Ordering::Relaxed) {
            u64::MAX => 0,
            at => (self.epoch.elapsed().as_micros() as u64).saturating_sub(at),
        }
    }

    /// Folds one membership query: its service latency plus the age of the
    /// snapshot that answered it.
    pub fn record_query(&self, latency_us: u64) {
        self.queries.inc();
        self.query_us.record(latency_us);
        self.snapshot_age_us.record(self.snapshot_age_us());
    }

    /// One accepted connection.
    pub fn record_connection(&self) {
        self.connections.inc();
    }

    /// One full-snapshot resync served to a subscriber, to the snapshot at
    /// `round`.
    pub fn record_feed_resync(&self, round: u64) {
        self.feed_resyncs.inc();
        self.journal.record(EventKind::FeedResync { round });
    }

    /// WAL append done; `checkpointed` when the periodic checkpoint fired.
    pub fn record_wal_append(&self, checkpointed: bool) {
        self.wal_appends.inc();
        if checkpointed {
            self.wal_checkpoints.inc();
        }
    }

    /// Updates the durable-lag gauge (`committed_round - durable_round`)
    /// after a round's WAL append.
    pub fn set_durable_lag(&self, lag: u64) {
        self.durable_lag.set(lag.min(i64::MAX as u64) as i64);
    }

    /// Full-snapshot resyncs served so far (the stats path reads this
    /// without rendering the whole registry).
    pub fn feed_resyncs(&self) -> u64 {
        self.feed_resyncs.get()
    }

    /// The feed-instrumentation handles (subscriber gauge, lagged/pruned
    /// counters) for [`crate::feed::DeltaFeed::instrument`].
    pub fn feed_instruments(&self) -> (Arc<Gauge>, Arc<Counter>, Arc<Counter>) {
        (
            self.feed_subscribers.clone(),
            self.feed_lagged.clone(),
            self.feed_pruned.clone(),
        )
    }

    /// The underlying registry (for direct reads in tests and `serve_load`).
    /// Holds the `server_*` instruments only; the `engine_*` set lives on
    /// [`ServerMetrics::engine_metrics`] and both appear merged in
    /// [`ServerMetrics::render_text`].
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shared structured event journal (arena rebuilds, WAL checkpoints
    /// and recovery, fsync stalls, subscriber lag/resync/prune).
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.journal
    }

    /// The engine-internals instrument set; `serve_on` attaches a clone to
    /// the engine so `apply_batch` records arena and repair internals here.
    pub fn engine_metrics(&self) -> &EngineMetrics {
        &self.engine
    }

    /// One engine-internals instrument set per shard, all feeding the shared
    /// event journal. For `shards <= 1` this is just a clone of the base set
    /// (the single-engine path, unchanged); for more, each shard gets its
    /// own registry, kept here so [`ServerMetrics::render_text`] merges every
    /// shard's `engine_*` instruments into the exposition.
    pub fn engine_metrics_shards(&self, shards: usize) -> Vec<EngineMetrics> {
        if shards <= 1 {
            return vec![self.engine.clone()];
        }
        let sets: Vec<EngineMetrics> = (0..shards)
            .map(|_| EngineMetrics::new(self.journal.clone()))
            .collect();
        *crate::rounds::lock_unpoisoned(&self.engine_shards) = sets.clone();
        sets
    }

    /// Repair-rounds histogram of the MIS (the paper's depth observable).
    pub fn repair_rounds_mis(&self) -> &Histogram {
        &self.repair_rounds_mis
    }

    /// Commit-latency histogram over whole rounds.
    pub fn commit_total_us(&self) -> &Histogram {
        &self.commit_total_us
    }

    /// The last [`FLIGHT_RECORDER_ROUNDS`] round timelines, oldest first.
    pub fn recent_rounds(&self) -> Vec<RoundTrace> {
        self.recorder.recent()
    }

    /// The full text exposition: the `server_*` and `engine_*` instrument
    /// sets merged into one deterministically-ordered listing (via
    /// [`greedy_obs::Registry::merge`] — the same primitive a sharded
    /// aggregator would use), followed by the event journal as `#` comment
    /// lines. Deterministic on a quiesced server, like each part.
    pub fn render_text(&self) -> String {
        let merged = Registry::new();
        merged.merge(&self.registry);
        merged.merge(self.engine.registry());
        for shard in crate::rounds::lock_unpoisoned(&self.engine_shards).iter() {
            merged.merge(shard.registry());
        }
        let mut out = merged.render_text();
        out.push_str(&self.journal.render_text());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_metric_is_registered_up_front() {
        let m = ServerMetrics::new();
        let names = m.registry().names();
        for required in [
            "server_commit_stage_wait_us",
            "server_commit_apply_us",
            "server_commit_repair_us",
            "server_commit_wal_us",
            "server_commit_publish_us",
            "server_commit_feed_us",
            "server_commit_total_us",
            "server_commit_batch_updates",
            "server_publish_pages",
            "server_repair_rounds_mis",
            "server_repair_rounds_matching",
            "server_repair_max_frontier",
            "server_cross_shard_rounds",
            "server_rounds_committed_total",
            "server_updates_effective_total",
            "server_repair_decided_total",
            "server_repair_flips_total",
            "server_queries_total",
            "server_connections_total",
            "server_feed_lagged_total",
            "server_feed_pruned_total",
            "server_feed_resyncs_total",
            "server_wal_appends_total",
            "server_wal_checkpoints_total",
            "server_durable_lag",
            "server_feed_subscribers",
            "server_query_us",
            "server_snapshot_age_us",
        ] {
            assert!(
                names.iter().any(|n| n == required),
                "metric {required} missing from the registry"
            );
        }
        // A fresh registry renders every name too (zeros, not absences).
        let text = m.render_text();
        assert!(text.contains("server_rounds_committed_total 0"));
        assert!(text.contains("server_commit_total_us_count 0"));
        assert!(text.contains("server_durable_lag 0"));
        // The exposition also carries the merged engine set and the journal.
        assert!(text.contains("engine_rebuilds_total 0"));
        assert!(text.contains("engine_arena_capacity 0"));
        assert!(text.contains("# event_journal retained=0 total=0"));
    }

    #[test]
    fn round_traces_land_in_histograms_and_recorder() {
        let m = ServerMetrics::new();
        for round in 1..=3u64 {
            m.record_round(
                &RoundTrace {
                    round,
                    updates: 10 * round,
                    stage_wait_us: 5,
                    apply_us: 100,
                    repair_us: 60,
                    wal_us: 0,
                    publish_us: 7,
                    feed_us: 1,
                    total_us: 113,
                    mis_rounds: round,
                    matching_rounds: 1,
                    max_frontier: 4,
                    decided: 8,
                    flips: 2,
                    pages: 3,
                    cross_shard_rounds: round - 1,
                },
                10 * round,
            );
        }
        if !greedy_obs::ENABLED {
            assert!(m.recent_rounds().is_empty());
            return;
        }
        assert_eq!(m.recent_rounds().len(), 3);
        assert_eq!(m.recent_rounds()[2].round, 3);
        assert_eq!(m.repair_rounds_mis().snapshot().max, 3);
        assert_eq!(m.commit_total_us().count(), 3);
        let xs = m
            .registry()
            .histogram("server_cross_shard_rounds")
            .snapshot();
        assert_eq!((xs.count, xs.max), (3, 2));
        let text = m.render_text();
        assert!(text.contains("server_rounds_committed_total 3"));
        assert!(text.contains("server_updates_effective_total 60"));
        assert_eq!(text, m.render_text(), "exposition must be deterministic");
    }

    #[test]
    fn snapshot_age_is_zero_before_first_publish() {
        let m = ServerMetrics::new();
        assert_eq!(m.snapshot_age_us(), 0);
        m.note_publish();
        // Age is now measured from the publish stamp; just ensure it reads.
        let _ = m.snapshot_age_us();
    }
}
